//! Cross-crate correctness tests: every schedule the scheduler or the
//! baselines produce must (a) be structurally valid and (b) compute exactly
//! the same tensors as the original graph on the CPU reference backend,
//! including property-based random graphs.

use ios::backend::verify_schedule;
use ios::prelude::*;
use proptest::prelude::*;

fn cost() -> SimCostModel {
    SimCostModel::new(Simulator::new(DeviceKind::TeslaV100))
}

#[test]
fn ios_schedules_for_squeezenet_blocks_preserve_semantics() {
    let network = ios::models::squeezenet(1);
    let cost = cost();
    let config = SchedulerConfig::paper_default();
    // Verify the three structurally distinct fire blocks (first, pooled, last).
    for idx in [1usize, 3, 8] {
        let graph = &network.blocks[idx].graph;
        let result = schedule_graph(graph, &cost, &config);
        assert!(result.schedule.validate(graph).is_ok());
        let diff = verify_schedule(graph, &result.schedule, 0xF00D + idx as u64);
        assert!(diff < 1e-3, "block {idx}: difference {diff}");
    }
}

#[test]
fn merged_stages_preserve_semantics_on_figure2_block() {
    let network = ios::models::figure2_block(1);
    let graph = &network.blocks[0].graph;
    let cost = cost();
    let merge_only = schedule_graph(
        graph,
        &cost,
        &SchedulerConfig::for_variant(IosVariant::Merge),
    );
    assert!(merge_only
        .schedule
        .stages
        .iter()
        .any(|s| s.strategy == ParallelizationStrategy::OperatorMerge));
    let diff = verify_schedule(graph, &merge_only.schedule, 77);
    assert!(diff < 1e-3, "difference {diff}");
}

/// Random layered graph generator for property tests: every operator picks
/// one or two producers among the previous values, with a mix of operator
/// kinds, so scheduling has real dependency structure to respect.
fn arbitrary_graph(seed: u64, ops: usize) -> Graph {
    let mut builder = GraphBuilder::new(format!("prop_{seed}"), TensorShape::new(1, 16, 12, 12));
    let mut values = vec![builder.input(0)];
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..ops {
        let pick = values[(next() as usize) % values.len()];
        let choice = next() % 4;
        let v = match choice {
            0 => builder.conv2d(
                format!("conv{i}"),
                pick,
                Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)),
            ),
            1 => builder.conv2d(
                format!("proj{i}"),
                pick,
                Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)),
            ),
            2 => {
                let other = values[(next() as usize) % values.len()];
                let (a_shape, b_shape) = (builder.shape_of(pick), builder.shape_of(other));
                if a_shape == b_shape {
                    builder.add_op(format!("add{i}"), &[pick, other])
                } else {
                    builder.relu(format!("relu{i}"), pick)
                }
            }
            _ => builder.relu(format!("relu{i}"), pick),
        };
        values.push(v);
    }
    let out = *values.last().expect("non-empty");
    builder.build(vec![out])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random graphs: the IOS schedule is valid, never slower than the
    /// sequential baseline under the same cost model, and numerically
    /// equivalent to the reference execution.
    #[test]
    fn prop_ios_schedule_valid_fast_and_correct(seed in any::<u64>(), ops in 3usize..9) {
        let graph = arbitrary_graph(seed, ops);
        let cost = cost();
        let config = SchedulerConfig::paper_default();
        let result = schedule_graph(&graph, &cost, &config);
        prop_assert!(result.schedule.validate(&graph).is_ok());

        let sequential = sequential_schedule(&graph, &cost);
        prop_assert!(result.latency_us <= sequential.total_measured_latency_us() + 1e-6);

        let diff = verify_schedule(&graph, &result.schedule, seed);
        prop_assert!(diff < 1e-3, "difference {diff}");
    }

    /// The greedy baseline is always valid and also numerically equivalent.
    #[test]
    fn prop_greedy_schedule_valid_and_correct(seed in any::<u64>(), ops in 3usize..9) {
        let graph = arbitrary_graph(seed, ops);
        let cost = cost();
        let schedule = greedy_schedule(&graph, &cost);
        prop_assert!(schedule.validate(&graph).is_ok());
        let diff = verify_schedule(&graph, &schedule, seed ^ 0xABC);
        prop_assert!(diff < 1e-3, "difference {diff}");
    }
}
