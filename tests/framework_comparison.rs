//! Cross-crate integration tests for the simulated baseline frameworks
//! (Figure 7 / Figure 11 behaviour at the network level).

use ios::frameworks::{Framework, FrameworkKind, IosEngine};
use ios::prelude::*;

#[test]
fn ios_beats_cudnn_frameworks_on_squeezenet() {
    // SqueezeNet is the benchmark where inter-operator parallelism helps the
    // least (narrow fire modules, tiny kernels): IOS must still beat every
    // framework built on the same cuDNN kernels, and stay within a small
    // margin of TensorRT's tuned kernels (the paper's Appendix B likewise
    // reports parity with TASO/TensorRT on SqueezeNet for the RTX 2080 Ti).
    let network = ios::models::squeezenet(1);
    let device = DeviceKind::TeslaV100;
    let ios = IosEngine::new(device).optimize_and_measure(&network);
    for kind in [
        FrameworkKind::TensorFlow,
        FrameworkKind::TensorFlowXla,
        FrameworkKind::Taso,
        FrameworkKind::TvmCuDnn,
    ] {
        let result = Framework::new(kind, device).measure(&network);
        let speedup = result.latency_us / ios.latency_us;
        assert!(
            speedup > 1.0,
            "IOS should beat {kind} (speedup = {speedup:.3})"
        );
        assert!(
            speedup < 4.0,
            "speedup over {kind} is implausible ({speedup:.3})"
        );
    }
    let trt = Framework::new(FrameworkKind::TensorRt, device).measure(&network);
    let ratio = ios.latency_us / trt.latency_us;
    assert!(
        ratio < 1.15,
        "IOS should stay within 15% of TensorRT on SqueezeNet (ratio = {ratio:.3})"
    );
}

#[test]
fn throughput_grows_with_batch_size_and_ios_stays_on_top() {
    // Figure 11's shape on a single Inception block: throughput increases
    // with batch size for every method, and IOS never falls behind TensorRT.
    let device = DeviceKind::TeslaV100;
    let graph = ios::models::inception::inception_v3_last_block(1);
    let base = ios::ir::Network::new(
        "last_block",
        graph.input_shapes()[0],
        vec![ios::ir::Block::new(graph)],
    );
    let mut prev_ios_throughput = 0.0;
    for batch in [1usize, 8, 32] {
        let net = base.with_batch_size(batch);
        let ios = IosEngine::new(device).optimize_and_measure(&net);
        let ios_throughput = ios.throughput(batch);
        // Compare against the strongest baseline built on the same kernel
        // library (TVM-cuDNN); TensorRT's tuned kernels are a separate axis.
        let tvm = Framework::new(FrameworkKind::TvmCuDnn, device).measure(&net);
        assert!(
            ios_throughput >= tvm.throughput * 0.999,
            "batch {batch}: IOS {ios_throughput:.0} img/s vs TVM-cuDNN {:.0}",
            tvm.throughput
        );
        assert!(
            ios_throughput > prev_ios_throughput,
            "throughput should grow with batch size"
        );
        prev_ios_throughput = ios_throughput;
    }
}

#[test]
fn relative_gain_of_ios_shrinks_as_batch_grows() {
    // Larger batches provide more intra-operator parallelism, so the benefit
    // of inter-operator parallelism shrinks (Section 7.3).
    let device = DeviceKind::TeslaV100;
    let graph = ios::models::inception::inception_v3_last_block(1);
    let base = ios::ir::Network::new(
        "last_block",
        graph.input_shapes()[0],
        vec![ios::ir::Block::new(graph)],
    );
    let gain = |batch: usize| {
        let net = base.with_batch_size(batch);
        let cost = SimCostModel::new(Simulator::new(device));
        let seq = sequential_network_schedule(&net, &cost);
        let ios = optimize_network(&net, &cost, &SchedulerConfig::paper_default());
        seq.latency_us / ios.schedule.latency_us
    };
    let gain_b1 = gain(1);
    let gain_b64 = gain(64);
    assert!(
        gain_b1 > gain_b64,
        "batch-1 gain {gain_b1:.2} should exceed batch-64 gain {gain_b64:.2}"
    );
    assert!(
        gain_b1 > 1.3,
        "batch-1 gain should be substantial, got {gain_b1:.2}"
    );
    assert!(gain_b64 >= 1.0 - 1e-9);
}

#[test]
fn framework_rewrites_keep_graphs_valid_on_every_benchmark() {
    for network in ios::models::paper_benchmarks(1) {
        for kind in FrameworkKind::all() {
            let fw = Framework::new(*kind, DeviceKind::TeslaV100);
            for block in &network.blocks {
                let rewritten = fw.rewrite(&block.graph);
                assert!(
                    rewritten.validate().is_ok(),
                    "{kind} rewrite broke block {} of {}",
                    block.graph.name(),
                    network.name
                );
                assert!(rewritten.len() <= block.graph.len());
            }
        }
    }
}
