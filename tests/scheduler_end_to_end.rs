//! Cross-crate integration tests: models → simulator → scheduler.
//!
//! These check the paper's headline qualitative claims end to end on the
//! real benchmark networks (kept to the fast ones so debug-mode CI stays
//! responsive; the full sweeps live in the `ios-bench` binaries).

use ios::prelude::*;

fn cost_model(device: DeviceKind) -> SimCostModel {
    SimCostModel::new(Simulator::new(device))
}

#[test]
fn ios_beats_sequential_and_greedy_on_inception_v3() {
    let network = ios::models::inception_v3(1);
    let cost = cost_model(DeviceKind::TeslaV100);
    let config = SchedulerConfig::paper_default();

    let sequential = sequential_network_schedule(&network, &cost);
    let greedy = greedy_network_schedule(&network, &cost);
    let ios = optimize_network(&network, &cost, &config);

    assert!(ios.schedule.validate(&network).is_ok());
    let seq_speedup = sequential.latency_us / ios.schedule.latency_us;
    let greedy_speedup = greedy.latency_us / ios.schedule.latency_us;
    // Figure 6: IOS-Both clearly beats Sequential on Inception V3 (the paper
    // reports ~1.6x) and is at least as good as Greedy.
    assert!(
        seq_speedup > 1.25,
        "speedup over sequential = {seq_speedup:.3}"
    );
    assert!(
        greedy_speedup >= 1.0 - 1e-9,
        "speedup over greedy = {greedy_speedup:.3}"
    );
}

#[test]
fn greedy_hurts_squeezenet_but_ios_does_not() {
    // Figure 6's SqueezeNet column: greedy degrades performance because of
    // synchronization overhead, while IOS never does worse than sequential.
    let network = ios::models::squeezenet(1);
    let cost = cost_model(DeviceKind::TeslaV100);
    let sequential = sequential_network_schedule(&network, &cost);
    let greedy = greedy_network_schedule(&network, &cost);
    let ios = optimize_network(&network, &cost, &SchedulerConfig::paper_default());

    assert!(ios.schedule.latency_us <= sequential.latency_us + 1e-6);
    assert!(ios.schedule.latency_us <= greedy.latency_us + 1e-6);
    // IOS must beat greedy by a visible margin on SqueezeNet.
    assert!(
        greedy.latency_us / ios.schedule.latency_us > 1.02,
        "greedy {} vs IOS {}",
        greedy.latency_us,
        ios.schedule.latency_us
    );
}

#[test]
fn resnet_gains_are_marginal() {
    // Section 5: ResNet has almost no inter-operator parallelism, so IOS
    // only wins a few percent — which is why it is not a benchmark network.
    let network = ios::models::resnet34(1);
    let cost = cost_model(DeviceKind::TeslaV100);
    let sequential = sequential_network_schedule(&network, &cost);
    let ios = optimize_network(&network, &cost, &SchedulerConfig::paper_default());
    let speedup = sequential.latency_us / ios.schedule.latency_us;
    assert!(speedup >= 1.0 - 1e-9);
    assert!(
        speedup < 1.30,
        "ResNet speedup should be marginal, got {speedup:.3}"
    );
}

#[test]
fn ios_variants_are_ordered_on_inception() {
    // IOS-Both ≤ IOS-Parallel and IOS-Both ≤ IOS-Merge on every network.
    let network = ios::models::inception_v3(1);
    let cost = cost_model(DeviceKind::TeslaV100);
    let both = optimize_network(
        &network,
        &cost,
        &SchedulerConfig::for_variant(IosVariant::Both),
    );
    let parallel = optimize_network(
        &network,
        &cost,
        &SchedulerConfig::for_variant(IosVariant::Parallel),
    );
    let merge = optimize_network(
        &network,
        &cost,
        &SchedulerConfig::for_variant(IosVariant::Merge),
    );
    assert!(both.schedule.latency_us <= parallel.schedule.latency_us + 1e-6);
    assert!(both.schedule.latency_us <= merge.schedule.latency_us + 1e-6);
}

#[test]
fn merge_only_variant_equals_sequential_when_nothing_merges() {
    // Figure 6: IOS-Merge finds the same schedule as Sequential for networks
    // whose units are Relu-SepConv (nothing can merge). A single RandWire
    // stage demonstrates the same property quickly.
    let network = ios::models::randwire_small(1);
    let block = ios::ir::Network::new(
        "randwire_stage",
        network.blocks[2].graph.input_shapes()[0],
        vec![network.blocks[2].clone()],
    );
    let cost = cost_model(DeviceKind::TeslaV100);
    let merge_only = optimize_network(
        &block,
        &cost,
        &SchedulerConfig::for_variant(IosVariant::Merge),
    );
    let sequential = sequential_network_schedule(&block, &cost);
    // No stage may use operator merge, and the latency difference against
    // sequential comes only from packing consecutive ops into stages.
    assert!(merge_only
        .schedule
        .block_schedules
        .iter()
        .flat_map(|s| &s.stages)
        .all(|s| s.strategy == ParallelizationStrategy::ConcurrentExecution));
    assert!(merge_only.schedule.latency_us <= sequential.latency_us + 1e-6);
    assert!(merge_only.schedule.latency_us > 0.9 * sequential.latency_us);
}

#[test]
fn specialized_schedules_win_on_their_own_device() {
    // Table 3 (2), on the last Inception block for speed.
    let graph = ios::models::inception::inception_v3_last_block(1);
    let network = ios::ir::Network::new(
        "last_block",
        graph.input_shapes()[0],
        vec![ios::ir::Block::new(graph)],
    );
    let v100 = cost_model(DeviceKind::TeslaV100);
    let k80 = cost_model(DeviceKind::TeslaK80);
    let config = SchedulerConfig::paper_default();
    let for_v100 = optimize_network(&network, &v100, &config).schedule;
    let for_k80 = optimize_network(&network, &k80, &config).schedule;

    let v100_own = for_v100.latency_us;
    let v100_cross = evaluate_network(&network, &for_k80, &v100);
    let k80_own = for_k80.latency_us;
    let k80_cross = evaluate_network(&network, &for_v100, &k80);
    assert!(
        v100_own <= v100_cross + 1e-6,
        "V100 prefers its own schedule"
    );
    assert!(k80_own <= k80_cross + 1e-6, "K80 prefers its own schedule");
    // Different devices end up with genuinely different schedules.
    assert!(
        for_v100.block_schedules[0].stage_sets() != for_k80.block_schedules[0].stage_sets()
            || (v100_cross - v100_own).abs() < 1e-9,
        "the two devices should disagree on the best schedule (or agree exactly)"
    );
}
