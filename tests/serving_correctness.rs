//! Serving correctness: results returned through `ios-serve` must be
//! bit-identical to chaining [`ios::backend::execute_graph`] over the
//! network's blocks, across batch sizes {1, 4, 8} on SqueezeNet, and the
//! schedule cache must hand out batch-specialized schedules with the
//! documented hit/miss behaviour.

use ios::backend::TensorData;
use ios::prelude::*;
use ios::serve::{ScheduleSource, ServeConfig, ServeEngine};
use std::time::{Duration, Instant};

/// The reference: every block executed with `execute_graph`, block outputs
/// resolved and chained into the next block — no serving machinery at all.
fn reference_outputs(network: &Network, input: &TensorData) -> Vec<TensorData> {
    let mut current = vec![input.clone()];
    for block in &network.blocks {
        let op_outputs = ios::backend::execute_graph(&block.graph, &current);
        current = block
            .graph
            .outputs()
            .iter()
            .map(|value| match value {
                ios::ir::Value::Input(i) => current[*i].clone(),
                ios::ir::Value::Op(id) => op_outputs[id.index()].clone(),
            })
            .collect();
    }
    current
}

#[test]
fn served_squeezenet_outputs_are_bit_identical_across_batch_sizes() {
    let network = ios::models::squeezenet(1);

    // Two distinct samples; every batch mixes both, so batch position and
    // content both vary. References are computed once per sample.
    let samples = [
        TensorData::random(network.input_shape, 0xA11CE),
        TensorData::random(network.input_shape, 0xB0B),
    ];
    let references: Vec<Vec<TensorData>> = samples
        .iter()
        .map(|s| reference_outputs(&network, s))
        .collect();

    let config = ServeConfig::default()
        .with_max_batch(8)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(40))
        .with_prewarm_batches(vec![1, 4, 8]);
    let engine = ServeEngine::start(network.clone(), config);

    for batch in [1usize, 4, 8] {
        let sample_idx: Vec<usize> = (0..batch).map(|i| i % samples.len()).collect();
        let handles: Vec<_> = sample_idx
            .iter()
            .map(|&s| {
                engine
                    .submit(samples[s].clone())
                    .expect("engine accepts requests")
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();

        for (response, &s) in responses.iter().zip(&sample_idx) {
            // Batch sizes 1, 4 and 8 were pre-warmed: every request must be
            // served by its exactly specialized schedule.
            assert_eq!(
                response.schedule_source,
                ScheduleSource::Exact,
                "batch {batch} was pre-warmed"
            );
            assert_eq!(response.outputs.len(), references[s].len());
            for (out, reference) in response.outputs.iter().zip(&references[s]) {
                assert_eq!(
                    out, reference,
                    "serving outputs must be bit-identical to execute_graph \
                     (batch {batch}, sample {s})"
                );
            }
        }
    }

    let metrics = engine.metrics();
    assert_eq!(metrics.completed, 1 + 4 + 8);
    assert_eq!(
        metrics.cache.misses, 0,
        "all three batch sizes were pre-warmed"
    );
    assert!(metrics.cache.hits >= 3);
    engine.shutdown();
}

#[test]
fn schedule_cache_serves_specialized_schedules_with_nearest_fallback() {
    // The cache-policy test runs on the simulated device backend: no CPU
    // numerics, so it exercises scheduling and caching only.
    let network = ios::models::squeezenet(1);
    let config = ServeConfig::default()
        .with_max_batch(8)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(20))
        .with_prewarm_batches(vec![1, 8])
        .with_background_reoptimize(true);
    let engine = ServeEngine::start_simulated(network.clone(), config);
    let input = || TensorData::zeros(network.input_shape);

    // Depth 8 → exact batch-8 schedule.
    let handles: Vec<_> = (0..8).map(|_| engine.submit(input()).unwrap()).collect();
    for handle in handles {
        let response = handle.wait();
        assert_eq!(response.batch_size, 8);
        assert_eq!(response.schedule_source, ScheduleSource::Exact);
    }

    // Three requests → batch 3 has no exact schedule; the nearest cached
    // batch size (1, distance 2, rather than 8, distance 5) serves it.
    let handles: Vec<_> = (0..3).map(|_| engine.submit(input()).unwrap()).collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    assert!(responses.iter().all(|r| r.batch_size == 3));
    for response in &responses {
        assert_eq!(
            response.schedule_source,
            ScheduleSource::Nearest { optimized_for: 1 },
            "batch 3 must fall back to the nearest specialized schedule"
        );
    }

    // Background re-optimization eventually installs the exact batch-3
    // schedule; later batch-3 dispatches hit it.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.metrics().cache.background_inserts == 0 {
        assert!(
            Instant::now() < deadline,
            "background re-optimization never completed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let handles: Vec<_> = (0..3).map(|_| engine.submit(input()).unwrap()).collect();
    for handle in handles {
        assert_eq!(handle.wait().schedule_source, ScheduleSource::Exact);
    }

    let stats = engine.metrics().cache;
    assert!(
        stats.hits >= 2,
        "batch-8 and post-reoptimization batch-3 hits, got {stats:?}"
    );
    assert!(stats.misses >= 1, "the first batch-3 dispatch must miss");
    assert_eq!(stats.nearest_served, 1);
    assert_eq!(stats.background_inserts, 1);
    assert!(stats.entries >= 3, "schedules for batches 1, 8 and 3");
    assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    engine.shutdown();
}
