//! # ios — Inter-Operator Scheduler for CNN Acceleration (reproduction)
//!
//! Facade crate for the IOS reproduction (Ding et al., MLSys 2021). It
//! re-exports the individual crates of the workspace so applications can use
//! a single dependency:
//!
//! * [`ir`] — computation graph IR (tensors, operators, graphs, endings,
//!   width analysis).
//! * [`models`] — the benchmark CNNs of Table 2 plus ResNet and VGG.
//! * [`sim`] — the analytical GPU simulator that stands in for the paper's
//!   cuDNN/CUDA-stream execution engine.
//! * [`core`] — the IOS dynamic-programming scheduler, baselines and
//!   network-level optimization.
//! * [`frameworks`] — simulated baseline frameworks (TensorFlow, TASO,
//!   TensorRT, TVM, …).
//! * [`backend`] — CPU reference executor used to verify that schedules
//!   preserve the network's semantics.
//! * [`serve`] — the online batched inference-serving runtime: dynamic
//!   batching, batch/device-specialized schedule cache (Table 3 as a
//!   runtime policy), worker pool and serving metrics.
//! * [`telemetry`] — bounded-memory histograms and the span tracer the
//!   whole stack records into, with Chrome-trace and Prometheus exporters.
//!
//! # Quickstart
//!
//! ```
//! use ios::prelude::*;
//!
//! // Build a benchmark network and optimize it for a Tesla V100 at batch 1.
//! let network = ios::models::squeezenet(1);
//! let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
//! let report = optimize_network(&network, &cost, &SchedulerConfig::paper_default());
//!
//! // The IOS schedule is valid and at least as fast as running sequentially.
//! assert!(report.schedule.validate(&network).is_ok());
//! let sequential = sequential_network_schedule(&network, &cost);
//! assert!(report.schedule.latency_us <= sequential.latency_us);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ios_backend as backend;
pub use ios_core as core;
pub use ios_frameworks as frameworks;
pub use ios_ir as ir;
pub use ios_models as models;
pub use ios_serve as serve;
pub use ios_sim as sim;
pub use ios_telemetry as telemetry;

/// The most commonly used items, importable with `use ios::prelude::*`.
pub mod prelude {
    pub use ios_core::{
        evaluate_network, greedy_network_schedule, greedy_schedule, optimize_network,
        plan_pipeline, schedule_graph, sequential_network_schedule, sequential_schedule, CostModel,
        IosVariant, NetworkSchedule, ParallelizationStrategy, PipelinePlan, PruningLimits,
        Schedule, SchedulerConfig, SimCostModel, Stage,
    };
    pub use ios_ir::{
        Activation, Conv2dParams, Graph, GraphBuilder, Network, Op, OpId, OpKind, OpSet,
        SegmentPlan, TensorShape,
    };
    pub use ios_serve::{
        AdaptConfig, InferenceResponse, MetricsSnapshot, PipelineMode, Rejected, ScheduleSource,
        ServeConfig, ServeEngine,
    };
    pub use ios_sim::{DeviceKind, KernelLibrary, Simulator};
}
