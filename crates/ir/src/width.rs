//! DAG width and chain decomposition.
//!
//! The paper's complexity bound (Section 4.2) is expressed in terms of the
//! *width* `d` of the computation graph: the size of the largest antichain,
//! i.e. the largest set of operators such that no path connects any two of
//! them. By Dilworth's theorem this equals the size of the smallest chain
//! decomposition, which we compute as a minimum path cover of the transitive
//! closure via maximum bipartite matching.

use crate::graph::Graph;
use crate::op::OpId;
use crate::opset::OpSet;

/// Computes the width `d` of the graph's operator DAG.
///
/// The width of the empty graph is zero.
#[must_use]
pub fn dag_width(graph: &Graph) -> usize {
    if graph.is_empty() {
        return 0;
    }
    let n = graph.len();
    let reach = graph.reachability();
    let matching = maximum_bipartite_matching(n, &reach);
    n - matching
}

/// Decomposes the operators into `dag_width(graph)` chains (paths in the
/// transitive closure), per Dilworth's theorem / Corollary 1 of the paper.
///
/// Each returned chain is ordered topologically, and every operator appears
/// in exactly one chain.
#[must_use]
pub fn chain_decomposition(graph: &Graph) -> Vec<Vec<OpId>> {
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }
    let reach = graph.reachability();
    let match_to = bipartite_matching_assignment(n, &reach);
    // `match_to[u] = Some(v)` means the chain continues from u to v.
    // Find chain heads: nodes that are not matched as a right endpoint.
    let mut is_tail = vec![false; n];
    for matched in &match_to {
        if let Some(v) = *matched {
            is_tail[v] = true;
        }
    }
    let mut chains = Vec::new();
    for (head, &head_is_tail) in is_tail.iter().enumerate() {
        if head_is_tail {
            continue;
        }
        let mut chain = vec![OpId(head)];
        let mut cur = head;
        while let Some(next) = match_to[cur] {
            chain.push(OpId(next));
            cur = next;
        }
        chains.push(chain);
    }
    chains
}

/// Size of the maximum matching in the bipartite graph where left node `u`
/// connects to right node `v` iff `v` is reachable from `u`.
fn maximum_bipartite_matching(n: usize, reach: &[OpSet]) -> usize {
    bipartite_matching_assignment(n, reach)
        .iter()
        .filter(|m| m.is_some())
        .count()
}

/// Returns, for each left node, the right node it is matched to (if any),
/// using the classic Hungarian augmenting-path algorithm. Graphs here have at
/// most 128 nodes, so the O(V·E) bound is more than fast enough.
fn bipartite_matching_assignment(n: usize, reach: &[OpSet]) -> Vec<Option<usize>> {
    let mut match_left: Vec<Option<usize>> = vec![None; n]; // left -> right
    let mut match_right: Vec<Option<usize>> = vec![None; n]; // right -> left

    fn try_augment(
        u: usize,
        reach: &[OpSet],
        visited: &mut [bool],
        match_left: &mut [Option<usize>],
        match_right: &mut [Option<usize>],
    ) -> bool {
        for v in reach[u].iter().map(OpId::index) {
            if visited[v] {
                continue;
            }
            visited[v] = true;
            let free = match match_right[v] {
                None => true,
                Some(w) => try_augment(w, reach, visited, match_left, match_right),
            };
            if free {
                match_left[u] = Some(v);
                match_right[v] = Some(u);
                return true;
            }
        }
        false
    }

    for u in 0..n {
        let mut visited = vec![false; n];
        try_augment(u, reach, &mut visited, &mut match_left, &mut match_right);
    }
    match_left
}

/// Upper bound on the number of `(S, S′)` transitions of the IOS dynamic
/// program, `∏ᵢ C(cᵢ + 2, 2)` over the chain sizes `cᵢ` (Theorem in
/// Section 4.2 / Appendix A). The relaxed form `((n/d) + 1)^(2d)` is also
/// available via [`relaxed_transition_bound`].
#[must_use]
pub fn transition_upper_bound(graph: &Graph) -> f64 {
    chain_decomposition(graph)
        .iter()
        .map(|chain| {
            let c = chain.len() as f64;
            (c + 2.0) * (c + 1.0) / 2.0
        })
        .product()
}

/// The relaxed transition bound `((n/d) + 1)^(2d)` from the theorem statement.
#[must_use]
pub fn relaxed_transition_bound(graph: &Graph) -> f64 {
    let n = graph.len() as f64;
    let d = dag_width(graph) as f64;
    if d == 0.0 {
        return 1.0;
    }
    (n / d + 1.0).powf(2.0 * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::op::Conv2dParams;
    use crate::tensor::TensorShape;
    use proptest::prelude::*;

    fn conv() -> Conv2dParams {
        Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0))
    }

    /// A pure chain has width 1.
    #[test]
    fn chain_has_width_one() {
        let mut b = GraphBuilder::new("chain", TensorShape::new(1, 8, 8, 8));
        let mut v = b.input(0);
        for i in 0..6 {
            v = b.conv2d(format!("c{i}"), v, conv());
        }
        let g = b.build(vec![v]);
        assert_eq!(dag_width(&g), 1);
        let chains = chain_decomposition(&g);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 6);
    }

    /// `k` independent branches have width `k`.
    #[test]
    fn independent_branches_width_equals_branch_count() {
        let mut b = GraphBuilder::new("branches", TensorShape::new(1, 8, 8, 8));
        let input = b.input(0);
        let mut outs = Vec::new();
        for i in 0..5 {
            let v = b.conv2d(format!("c{i}"), input, conv());
            outs.push(v);
        }
        let g = b.build(outs);
        assert_eq!(dag_width(&g), 5);
        assert_eq!(chain_decomposition(&g).len(), 5);
    }

    /// The worst-case family of Figure 13: `d` chains of `c` operators each.
    #[test]
    fn figure13_chains_by_length() {
        let (c, d) = (4, 3);
        let mut b = GraphBuilder::new("fig13", TensorShape::new(1, 8, 8, 8));
        let input = b.input(0);
        let mut outs = Vec::new();
        for chain in 0..d {
            let mut v = input;
            for i in 0..c {
                v = b.conv2d(format!("p{chain}_{i}"), v, conv());
            }
            outs.push(v);
        }
        let g = b.build(outs);
        assert_eq!(dag_width(&g), d);
        let chains = chain_decomposition(&g);
        assert_eq!(chains.len(), d);
        assert!(chains.iter().all(|ch| ch.len() == c));
        // Bound: C(c+2, 2)^d = 15^3.
        let bound = transition_upper_bound(&g);
        assert!((bound - 15f64.powi(3)).abs() < 1e-6);
    }

    /// A diamond (a → b,c → d) has width 2.
    #[test]
    fn diamond_width_two() {
        let mut b = GraphBuilder::new("diamond", TensorShape::new(1, 8, 8, 8));
        let input = b.input(0);
        let a = b.conv2d("a", input, conv());
        let x = b.conv2d("x", a, conv());
        let y = b.conv2d("y", a, conv());
        let d = b.concat("d", &[x, y]);
        let g = b.build(vec![d]);
        assert_eq!(dag_width(&g), 2);
    }

    #[test]
    fn chain_decomposition_covers_all_ops_once() {
        let mut b = GraphBuilder::new("mixed", TensorShape::new(1, 8, 8, 8));
        let input = b.input(0);
        let a = b.conv2d("a", input, conv());
        let x = b.conv2d("x", a, conv());
        let y = b.conv2d("y", a, conv());
        let z = b.conv2d("z", input, conv());
        let d = b.concat("d", &[x, y, z]);
        let g = b.build(vec![d]);
        let chains = chain_decomposition(&g);
        let mut seen = OpSet::empty();
        for chain in &chains {
            for op in chain {
                assert!(!seen.contains(*op), "operator {op} appears in two chains");
                seen.insert(*op);
            }
        }
        assert_eq!(seen.len(), g.len());
        assert_eq!(chains.len(), dag_width(&g));
        // Every chain must indeed be a chain: consecutive ops connected by a path.
        let reach = g.reachability();
        for chain in &chains {
            for w in chain.windows(2) {
                assert!(reach[w[0].index()].contains(w[1]));
            }
        }
    }

    #[test]
    fn relaxed_bound_dominates_tight_bound() {
        let mut b = GraphBuilder::new("g", TensorShape::new(1, 8, 8, 8));
        let input = b.input(0);
        let a = b.conv2d("a", input, conv());
        let x = b.conv2d("x", a, conv());
        let y = b.conv2d("y", a, conv());
        let d = b.concat("d", &[x, y]);
        let g = b.build(vec![d]);
        assert!(relaxed_transition_bound(&g) >= transition_upper_bound(&g) * 0.999);
    }

    #[test]
    fn empty_graph_width_zero() {
        let b = GraphBuilder::new("empty", TensorShape::new(1, 8, 8, 8));
        let g = b.build(vec![]);
        assert_eq!(dag_width(&g), 0);
        assert!(chain_decomposition(&g).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Width is between 1 and n, and the chain decomposition always has
        /// exactly `width` chains covering every operator.
        #[test]
        fn prop_width_consistent(seed in any::<u64>(), n in 2usize..12) {
            let mut b = GraphBuilder::new("rand", TensorShape::new(1, 8, 8, 8));
            let input = b.input(0);
            let mut values = vec![input];
            let mut rng = seed;
            for i in 0..n {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pred = values[(rng >> 33) as usize % values.len()];
                let v = b.conv2d(format!("c{i}"), pred, conv());
                values.push(v);
            }
            let g = b.build(vec![*values.last().unwrap()]);
            let w = dag_width(&g);
            prop_assert!(w >= 1 && w <= n);
            let chains = chain_decomposition(&g);
            prop_assert_eq!(chains.len(), w);
            let covered: usize = chains.iter().map(Vec::len).sum();
            prop_assert_eq!(covered, n);
        }
    }
}
