//! Tensor shapes and data types.
//!
//! The IOS reproduction only needs 4-dimensional NCHW activation tensors and
//! FP32 weights, so the shape type is deliberately concrete rather than a
//! generic rank-N shape.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element data type of a tensor.
///
/// The paper evaluates single-precision inference exclusively; `F16` is kept
/// so the cost model can express half-precision what-if experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// 32-bit IEEE-754 floating point (the default used throughout the paper).
    #[default]
    F32,
    /// 16-bit IEEE-754 floating point.
    F16,
}

impl DType {
    /// Size of one element in bytes.
    #[must_use]
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F32 => write!(f, "f32"),
            DType::F16 => write!(f, "f16"),
        }
    }
}

/// Shape of an activation tensor in NCHW layout.
///
/// `batch` is the inference batch size (`N`), `channels` the number of
/// feature maps (`C`) and `height`/`width` the spatial extent (`H`/`W`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Batch dimension (N).
    pub batch: usize,
    /// Channel dimension (C).
    pub channels: usize,
    /// Spatial height (H).
    pub height: usize,
    /// Spatial width (W).
    pub width: usize,
}

impl TensorShape {
    /// Creates a new NCHW shape.
    #[must_use]
    pub fn new(batch: usize, channels: usize, height: usize, width: usize) -> Self {
        TensorShape {
            batch,
            channels,
            height,
            width,
        }
    }

    /// A 1x1 spatial shape, useful for fully-connected layers expressed as
    /// matrix multiplications.
    #[must_use]
    pub fn vector(batch: usize, features: usize) -> Self {
        TensorShape::new(batch, features, 1, 1)
    }

    /// Number of elements in the tensor.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.batch * self.channels * self.height * self.width
    }

    /// Number of elements per batch item.
    #[must_use]
    pub fn elements_per_item(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Size in bytes when stored with data type `dtype`.
    #[must_use]
    pub fn size_bytes(&self, dtype: DType) -> usize {
        self.num_elements() * dtype.size_bytes()
    }

    /// Returns a copy of this shape with a different batch size.
    ///
    /// Used by the specialization experiments (Table 3) that re-evaluate the
    /// same network at batch sizes 1, 32 and 128.
    #[must_use]
    pub fn with_batch(&self, batch: usize) -> Self {
        TensorShape { batch, ..*self }
    }

    /// Returns a copy of this shape with a different channel count.
    #[must_use]
    pub fn with_channels(&self, channels: usize) -> Self {
        TensorShape { channels, ..*self }
    }

    /// Spatial extent after a convolution/pooling window is applied.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (after padding) does not fit inside the input,
    /// which indicates a malformed model definition.
    #[must_use]
    pub fn conv_output_hw(
        &self,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> (usize, usize) {
        let h_in = self.height + 2 * padding.0;
        let w_in = self.width + 2 * padding.1;
        assert!(
            h_in >= kernel.0 && w_in >= kernel.1,
            "kernel {kernel:?} does not fit input {self} with padding {padding:?}"
        );
        let h = (h_in - kernel.0) / stride.0 + 1;
        let w = (w_in - kernel.1) / stride.1 + 1;
        (h, w)
    }

    /// True if two shapes agree on every dimension except channels.
    ///
    /// This is the compatibility requirement for channel-wise concatenation.
    #[must_use]
    pub fn same_spatial(&self, other: &TensorShape) -> bool {
        self.batch == other.batch && self.height == other.height && self.width == other.width
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}",
            self.batch, self.channels, self.height, self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_count_and_bytes() {
        let s = TensorShape::new(2, 3, 4, 5);
        assert_eq!(s.num_elements(), 120);
        assert_eq!(s.elements_per_item(), 60);
        assert_eq!(s.size_bytes(DType::F32), 480);
        assert_eq!(s.size_bytes(DType::F16), 240);
    }

    #[test]
    fn conv_output_same_padding() {
        let s = TensorShape::new(1, 64, 28, 28);
        assert_eq!(s.conv_output_hw((3, 3), (1, 1), (1, 1)), (28, 28));
        assert_eq!(s.conv_output_hw((1, 1), (1, 1), (0, 0)), (28, 28));
    }

    #[test]
    fn conv_output_stride_two() {
        let s = TensorShape::new(1, 64, 28, 28);
        assert_eq!(s.conv_output_hw((3, 3), (2, 2), (1, 1)), (14, 14));
        let odd = TensorShape::new(1, 64, 29, 29);
        assert_eq!(odd.conv_output_hw((3, 3), (2, 2), (0, 0)), (14, 14));
    }

    #[test]
    fn asymmetric_kernels() {
        // The Inception V3 tail uses 1x3 and 3x1 convolutions (Figure 10).
        let s = TensorShape::new(1, 384, 8, 8);
        assert_eq!(s.conv_output_hw((1, 3), (1, 1), (0, 1)), (8, 8));
        assert_eq!(s.conv_output_hw((3, 1), (1, 1), (1, 0)), (8, 8));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn kernel_too_large_panics() {
        let _ = TensorShape::new(1, 3, 2, 2).conv_output_hw((5, 5), (1, 1), (0, 0));
    }

    #[test]
    fn with_batch_keeps_other_dims() {
        let s = TensorShape::new(1, 192, 17, 17).with_batch(32);
        assert_eq!(s.batch, 32);
        assert_eq!(s.channels, 192);
        assert_eq!(s.height, 17);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TensorShape::new(1, 3, 299, 299).to_string(), "1x3x299x299");
        assert_eq!(DType::F32.to_string(), "f32");
    }

    #[test]
    fn same_spatial_checks() {
        let a = TensorShape::new(1, 64, 28, 28);
        let b = TensorShape::new(1, 96, 28, 28);
        let c = TensorShape::new(1, 64, 14, 14);
        assert!(a.same_spatial(&b));
        assert!(!a.same_spatial(&c));
    }
}
