//! # ios-ir — computation graph IR for the IOS inter-operator scheduler
//!
//! This crate provides the intermediate representation that the rest of the
//! IOS reproduction is built on:
//!
//! * [`TensorShape`] / [`DType`] — NCHW tensor descriptors ([`tensor`]).
//! * [`Op`], [`OpKind`], [`Conv2dParams`] — operators with output-shape
//!   inference, FLOP and memory-traffic accounting ([`op`]).
//! * [`Graph`] / [`GraphBuilder`] — directed acyclic computation graphs with
//!   topological utilities, reachability and transitive closure ([`graph`]).
//! * [`OpSet`] — a 128-bit bitset over operator ids used as the dynamic
//!   programming state of the scheduler ([`opset`]).
//! * [`endings`] — enumeration of *endings* (successor-closed subsets), the
//!   candidate last stages of the IOS dynamic program.
//! * [`width`] — DAG width via Dilworth's theorem (minimum path cover).
//! * [`Network`] — a CNN as a sequence of blocks, the unit the paper
//!   optimizes independently ([`network`]).
//! * [`SegmentPlan`] — contiguous segment boundaries over a network's
//!   block list, the structural unit of cross-block pipelined execution
//!   ([`segment`]).
//!
//! # Example
//!
//! ```
//! use ios_ir::{GraphBuilder, TensorShape, Conv2dParams};
//!
//! let mut b = GraphBuilder::new("tiny", TensorShape::new(1, 64, 28, 28));
//! let input = b.input(0);
//! let a = b.conv2d("a", input, Conv2dParams::relu(96, (3, 3), (1, 1), (1, 1)));
//! let c = b.conv2d("c", input, Conv2dParams::relu(64, (1, 1), (1, 1), (0, 0)));
//! let out = b.concat("cat", &[a, c]);
//! let graph = b.build(vec![out]);
//! assert_eq!(graph.len(), 3);
//! assert_eq!(graph.output_shapes()[0].channels, 160);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod endings;
pub mod error;
pub mod graph;
pub mod graphviz;
pub mod network;
pub mod op;
pub mod opset;
pub mod segment;
pub mod tensor;
pub mod width;

pub use endings::{endings_of, EndingEnumerator, PruningLimits};
pub use error::IrError;
pub use graph::{Graph, GraphBuilder, Value};
pub use network::{Block, Network};
pub use op::{Activation, Conv2dParams, MatMulParams, Op, OpId, OpKind, PoolKind, PoolParams};
pub use opset::OpSet;
pub use segment::SegmentPlan;
pub use tensor::{DType, TensorShape};
pub use width::{chain_decomposition, dag_width, relaxed_transition_bound, transition_upper_bound};
