//! Computation graphs and their builder.
//!
//! A [`Graph`] is a directed acyclic graph of [`Op`]s. Edges are implied by
//! each operator's `inputs` list, matching the paper's definition of the
//! computation graph `G = (V, E)` where each edge `(u, v)` is a tensor
//! produced by `u` and consumed by `v`.

use crate::error::IrError;
use crate::op::{Activation, Conv2dParams, MatMulParams, Op, OpId, OpKind, PoolParams};
use crate::opset::{OpSet, MAX_OPS};
use crate::tensor::{DType, TensorShape};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A value flowing along an edge of the graph: either one of the graph's
/// external inputs or the output of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The `i`-th external input of the graph.
    Input(usize),
    /// The output of operator `OpId`.
    Op(OpId),
}

impl Value {
    /// The operator id if this value is an operator output.
    #[must_use]
    pub fn as_op(self) -> Option<OpId> {
        match self {
            Value::Op(id) => Some(id),
            Value::Input(_) => None,
        }
    }
}

/// An immutable computation graph.
///
/// Graphs are constructed through [`GraphBuilder`], which performs shape
/// inference and validation eagerly so that a successfully built graph is
/// always well formed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    inputs: Vec<TensorShape>,
    ops: Vec<Op>,
    outputs: Vec<Value>,
}

impl Graph {
    /// Name of the graph (e.g. `"inception_v3/block_5"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shapes of the external inputs.
    #[must_use]
    pub fn input_shapes(&self) -> &[TensorShape] {
        &self.inputs
    }

    /// The graph's operators, indexed by `OpId`.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the graph has no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operator with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this graph.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// The graph's output values.
    #[must_use]
    pub fn outputs(&self) -> &[Value] {
        &self.outputs
    }

    /// Shapes of the graph outputs.
    #[must_use]
    pub fn output_shapes(&self) -> Vec<TensorShape> {
        self.outputs.iter().map(|v| self.value_shape(*v)).collect()
    }

    /// Shape of an arbitrary value.
    #[must_use]
    pub fn value_shape(&self, value: Value) -> TensorShape {
        match value {
            Value::Input(i) => self.inputs[i],
            Value::Op(id) => self.op(id).output_shape,
        }
    }

    /// Shapes of the inputs of an operator.
    #[must_use]
    pub fn op_input_shapes(&self, id: OpId) -> Vec<TensorShape> {
        self.op(id)
            .inputs
            .iter()
            .map(|v| self.value_shape(*v))
            .collect()
    }

    /// Floating point operations of a single operator.
    #[must_use]
    pub fn op_flops(&self, id: OpId) -> u64 {
        self.op(id).flops(&self.op_input_shapes(id))
    }

    /// Memory traffic of a single operator in bytes (FP32).
    #[must_use]
    pub fn op_memory_bytes(&self, id: OpId) -> u64 {
        self.op(id)
            .memory_bytes(&self.op_input_shapes(id), DType::F32)
    }

    /// Total floating point operations of the whole graph.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|op| self.op_flops(op.id)).sum()
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn total_parameters(&self) -> usize {
        self.ops
            .iter()
            .map(|op| op.num_parameters(&self.op_input_shapes(op.id)))
            .sum()
    }

    /// The full operator set of the graph, `V`.
    #[must_use]
    pub fn all_ops(&self) -> OpSet {
        OpSet::full(self.ops.len())
    }

    /// Direct predecessors of `id` (operators only; external inputs do not
    /// create scheduling dependencies).
    #[must_use]
    pub fn predecessors(&self, id: OpId) -> Vec<OpId> {
        let mut preds: Vec<OpId> = self
            .op(id)
            .inputs
            .iter()
            .filter_map(|v| v.as_op())
            .collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Direct successors of `id`.
    #[must_use]
    pub fn successors(&self, id: OpId) -> Vec<OpId> {
        let mut succs = Vec::new();
        for op in &self.ops {
            if op.inputs.iter().any(|v| v.as_op() == Some(id)) {
                succs.push(op.id);
            }
        }
        succs
    }

    /// Adjacency as predecessor bitsets: `preds[i]` contains the direct
    /// predecessors of operator `i`.
    #[must_use]
    pub fn predecessor_sets(&self) -> Vec<OpSet> {
        self.ops
            .iter()
            .map(|op| op.inputs.iter().filter_map(|v| v.as_op()).collect())
            .collect()
    }

    /// Adjacency as successor bitsets: `succs[i]` contains the direct
    /// successors of operator `i`.
    #[must_use]
    pub fn successor_sets(&self) -> Vec<OpSet> {
        let mut succs = vec![OpSet::empty(); self.ops.len()];
        for op in &self.ops {
            for v in &op.inputs {
                if let Some(p) = v.as_op() {
                    succs[p.index()].insert(op.id);
                }
            }
        }
        succs
    }

    /// Number of edges (dependencies between operators).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.predecessor_sets().iter().map(|s| s.len()).sum()
    }

    /// A topological ordering of the operators.
    ///
    /// Because the builder assigns ids in insertion order and only allows
    /// operators to consume already-defined values, the identity ordering is
    /// always topological; this method nevertheless recomputes one by Kahn's
    /// algorithm so it stays valid for graphs deserialized from external
    /// sources.
    #[must_use]
    pub fn topological_order(&self) -> Vec<OpId> {
        let preds = self.predecessor_sets();
        let succs = self.successor_sets();
        let mut indegree: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        let mut queue: VecDeque<OpId> = (0..self.ops.len())
            .filter(|&i| indegree[i] == 0)
            .map(OpId)
            .collect();
        let mut order = Vec::with_capacity(self.ops.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for s in succs[id.index()].iter() {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Transitive closure: `reach[i]` is the set of operators reachable from
    /// `i` (excluding `i` itself).
    #[must_use]
    pub fn reachability(&self) -> Vec<OpSet> {
        let succs = self.successor_sets();
        let order = self.topological_order();
        let mut reach = vec![OpSet::empty(); self.ops.len()];
        for &id in order.iter().rev() {
            let mut r = succs[id.index()];
            for s in succs[id.index()].iter() {
                r = r.union(reach[s.index()]);
            }
            reach[id.index()] = r;
        }
        reach
    }

    /// Partitions the operators of `set` into groups: connected components of
    /// the *undirected* dependency graph restricted to `set`.
    ///
    /// This is exactly how the paper forms the groups of a "concurrent
    /// execution" stage: operators connected by an edge inside the stage end
    /// up in the same group and are executed sequentially, while different
    /// groups run concurrently.
    #[must_use]
    pub fn groups_of(&self, set: OpSet) -> Vec<OpSet> {
        let preds = self.predecessor_sets();
        let succs = self.successor_sets();
        let mut remaining = set;
        let mut groups = Vec::new();
        while let Some(seed) = remaining.first() {
            let mut group = OpSet::empty();
            let mut stack = vec![seed];
            while let Some(cur) = stack.pop() {
                if group.contains(cur) {
                    continue;
                }
                group.insert(cur);
                let neighbors = preds[cur.index()]
                    .union(succs[cur.index()])
                    .intersection(set);
                for n in neighbors.iter() {
                    if !group.contains(n) {
                        stack.push(n);
                    }
                }
            }
            remaining = remaining.difference(group);
            groups.push(group);
        }
        groups.sort_by_key(|g| g.first().map_or(usize::MAX, OpId::index));
        groups
    }

    /// Orders the operators of a group in a topologically valid sequence
    /// (operators in a group execute sequentially).
    #[must_use]
    pub fn sequential_order_of(&self, group: OpSet) -> Vec<OpId> {
        self.topological_order()
            .into_iter()
            .filter(|id| group.contains(*id))
            .collect()
    }

    /// Validates the structural invariants of the graph (acyclicity, input
    /// references, operator count).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.ops.len() > MAX_OPS {
            return Err(IrError::TooManyOperators {
                count: self.ops.len(),
                max: MAX_OPS,
            });
        }
        for op in &self.ops {
            for v in &op.inputs {
                match v {
                    Value::Input(i) if *i >= self.inputs.len() => {
                        return Err(IrError::UnknownValue {
                            op: op.name.clone(),
                        })
                    }
                    Value::Op(id) if id.index() >= self.ops.len() => {
                        return Err(IrError::UnknownValue {
                            op: op.name.clone(),
                        })
                    }
                    _ => {}
                }
            }
        }
        if self.topological_order().len() != self.ops.len() {
            return Err(IrError::CyclicGraph {
                graph: self.name.clone(),
            });
        }
        Ok(())
    }
}

/// Builder for [`Graph`]s with eager shape inference.
///
/// Every `add_*` method returns the [`Value`] produced by the new operator so
/// that model definitions read like straight-line tensor programs.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    inputs: Vec<TensorShape>,
    ops: Vec<Op>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with a single external input.
    #[must_use]
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        GraphBuilder {
            name: name.into(),
            inputs: vec![input],
            ops: Vec::new(),
        }
    }

    /// Creates a builder for a graph with several external inputs (used by
    /// NasNet cells, which consume the two previous cell outputs).
    #[must_use]
    pub fn with_inputs(name: impl Into<String>, inputs: Vec<TensorShape>) -> Self {
        GraphBuilder {
            name: name.into(),
            inputs,
            ops: Vec::new(),
        }
    }

    /// The value of the `i`-th external input.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn input(&self, i: usize) -> Value {
        assert!(i < self.inputs.len(), "input {i} out of range");
        Value::Input(i)
    }

    /// Number of operators added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operators have been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Shape of an already-defined value.
    #[must_use]
    pub fn shape_of(&self, value: Value) -> TensorShape {
        match value {
            Value::Input(i) => self.inputs[i],
            Value::Op(id) => self.ops[id.index()].output_shape,
        }
    }

    /// Adds an operator with explicit kind and inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if shape inference fails.
    pub fn try_add(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: &[Value],
    ) -> Result<Value, IrError> {
        let name = name.into();
        let input_shapes: Vec<TensorShape> = inputs.iter().map(|v| self.shape_of(*v)).collect();
        let output_shape = Op::infer_output_shape(&name, &kind, &input_shapes)?;
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            id,
            name,
            kind,
            inputs: inputs.to_vec(),
            output_shape,
        });
        Ok(Value::Op(id))
    }

    /// Adds an operator, panicking on shape errors.
    ///
    /// Model definitions use this convenience wrapper; a shape error in a
    /// model builder is a programming bug, not a runtime condition.
    ///
    /// # Panics
    ///
    /// Panics if shape inference fails.
    pub fn add(&mut self, name: impl Into<String>, kind: OpKind, inputs: &[Value]) -> Value {
        let name = name.into();
        match self.try_add(name.clone(), kind, inputs) {
            Ok(v) => v,
            Err(e) => panic!("failed to add operator `{name}`: {e}"),
        }
    }

    /// Adds a 2-D convolution.
    pub fn conv2d(&mut self, name: impl Into<String>, input: Value, params: Conv2dParams) -> Value {
        self.add(name, OpKind::Conv2d(params), &[input])
    }

    /// Adds a depthwise-separable convolution (the "Relu-SepConv" unit).
    pub fn sep_conv2d(
        &mut self,
        name: impl Into<String>,
        input: Value,
        params: Conv2dParams,
    ) -> Value {
        self.add(name, OpKind::SepConv2d(params), &[input])
    }

    /// Adds a pooling operator.
    pub fn pool(&mut self, name: impl Into<String>, input: Value, params: PoolParams) -> Value {
        self.add(name, OpKind::Pool(params), &[input])
    }

    /// Adds a matrix multiplication (fully connected layer).
    pub fn matmul(&mut self, name: impl Into<String>, input: Value, out_features: usize) -> Value {
        self.add(
            name,
            OpKind::MatMul(MatMulParams {
                out_features,
                activation: Activation::None,
            }),
            &[input],
        )
    }

    /// Adds a channel concatenation.
    pub fn concat(&mut self, name: impl Into<String>, inputs: &[Value]) -> Value {
        self.add(name, OpKind::Concat, inputs)
    }

    /// Adds an element-wise addition.
    pub fn add_op(&mut self, name: impl Into<String>, inputs: &[Value]) -> Value {
        self.add(name, OpKind::Add, inputs)
    }

    /// Adds a standalone ReLU.
    pub fn relu(&mut self, name: impl Into<String>, input: Value) -> Value {
        self.add(name, OpKind::Relu, &[input])
    }

    /// Adds an identity operator.
    pub fn identity(&mut self, name: impl Into<String>, input: Value) -> Value {
        self.add(name, OpKind::Identity, &[input])
    }

    /// Finishes the graph with the given output values.
    ///
    /// # Panics
    ///
    /// Panics if the resulting graph fails validation (which indicates a bug
    /// in the calling model definition, since the builder validates each
    /// operator as it is added).
    #[must_use]
    pub fn build(self, outputs: Vec<Value>) -> Graph {
        let graph = Graph {
            name: self.name,
            inputs: self.inputs,
            ops: self.ops,
            outputs,
        };
        graph.validate().expect("builder produced an invalid graph");
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three-operator example of Figure 5: `a → b`, `c` independent.
    pub(crate) fn figure5_graph() -> Graph {
        let mut b = GraphBuilder::new("fig5", TensorShape::new(1, 64, 28, 28));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)));
        let _bv = b.conv2d("b", a, Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)));
        let _c = b.conv2d("c", input, Conv2dParams::relu(64, (1, 1), (1, 1), (0, 0)));
        b.build(vec![Value::Op(OpId(1)), Value::Op(OpId(2))])
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let g = figure5_graph();
        assert_eq!(g.len(), 3);
        assert_eq!(g.op(OpId(0)).name, "a");
        assert_eq!(g.op(OpId(1)).name, "b");
        assert_eq!(g.op(OpId(2)).name, "c");
    }

    #[test]
    fn predecessors_and_successors() {
        let g = figure5_graph();
        assert_eq!(g.predecessors(OpId(1)), vec![OpId(0)]);
        assert_eq!(g.successors(OpId(0)), vec![OpId(1)]);
        assert!(g.predecessors(OpId(2)).is_empty());
        assert!(g.successors(OpId(2)).is_empty());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn topological_order_is_valid() {
        let g = figure5_graph();
        let order = g.topological_order();
        assert_eq!(order.len(), 3);
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(OpId(0)) < pos(OpId(1)));
    }

    #[test]
    fn reachability_transitive() {
        let mut b = GraphBuilder::new("chain", TensorShape::new(1, 8, 8, 8));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::plain(8, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("b", a, Conv2dParams::plain(8, (3, 3), (1, 1), (1, 1)));
        let d = b.conv2d("c", c, Conv2dParams::plain(8, (3, 3), (1, 1), (1, 1)));
        let g = b.build(vec![d]);
        let reach = g.reachability();
        assert!(reach[0].contains(OpId(2)));
        assert!(reach[0].contains(OpId(1)));
        assert!(!reach[2].contains(OpId(0)));
    }

    #[test]
    fn groups_are_connected_components() {
        let g = figure5_graph();
        // {a, b, c}: a-b connected, c separate → two groups.
        let groups = g.groups_of(g.all_ops());
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|s| s.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
        // {b, c}: not connected → two singleton groups.
        let bc: OpSet = [OpId(1), OpId(2)].into_iter().collect();
        assert_eq!(g.groups_of(bc).len(), 2);
    }

    #[test]
    fn sequential_order_respects_dependencies() {
        let g = figure5_graph();
        let ab: OpSet = [OpId(0), OpId(1)].into_iter().collect();
        assert_eq!(g.sequential_order_of(ab), vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn total_flops_is_sum_of_ops() {
        let g = figure5_graph();
        let total = g.total_flops();
        let by_hand: u64 = (0..3).map(|i| g.op_flops(OpId(i))).sum();
        assert_eq!(total, by_hand);
        assert!(total > 0);
        assert!(g.total_parameters() > 0);
    }

    #[test]
    fn output_shapes_reported() {
        let g = figure5_graph();
        let shapes = g.output_shapes();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0], TensorShape::new(1, 64, 28, 28));
    }

    #[test]
    fn multi_input_graphs() {
        let shapes = vec![
            TensorShape::new(1, 32, 14, 14),
            TensorShape::new(1, 32, 14, 14),
        ];
        let mut b = GraphBuilder::with_inputs("two_in", shapes);
        let x = b.input(0);
        let y = b.input(1);
        let sum = b.add_op("sum", &[x, y]);
        let g = b.build(vec![sum]);
        assert_eq!(g.input_shapes().len(), 2);
        assert_eq!(g.output_shapes()[0].channels, 32);
    }

    #[test]
    fn validate_catches_bad_input_reference() {
        let g = figure5_graph();
        // Forge a reference to a non-existent input by rebuilding the struct
        // through serde (fields are private, so round-trip through JSON).
        let mut json: serde_json::Value = serde_json::to_value(&g).unwrap();
        json["ops"][0]["inputs"][0] = serde_json::json!({ "Input": 7 });
        let bad: Graph = serde_json::from_value(json).unwrap();
        assert!(matches!(bad.validate(), Err(IrError::UnknownValue { .. })));
    }

    #[test]
    fn serde_roundtrip() {
        let g = figure5_graph();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "failed to add operator")]
    fn add_panics_on_shape_error() {
        let mut b = GraphBuilder::new("bad", TensorShape::new(1, 64, 28, 28));
        let input = b.input(0);
        let small = b.pool("pool", input, PoolParams::max((2, 2), (2, 2), (0, 0)));
        let _ = b.concat("cat", &[input, small]);
    }
}
