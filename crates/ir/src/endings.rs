//! Enumeration of *endings*.
//!
//! Given the remaining operator set `S` of a graph `G`, an ending `S′ ⊆ S`
//! is a subset such that every edge between `S − S′` and `S′` starts in
//! `S − S′` and ends in `S′` (Section 4.1, Figure 4 of the paper).
//! Equivalently, `S′` is closed under successors *within `S`*: if `u ∈ S′`
//! and `(u, v) ∈ E` with `v ∈ S`, then `v ∈ S′`.
//!
//! The IOS dynamic program enumerates the endings of every reachable state,
//! optionally restricted by the pruning strategy `P(r, s)` which bounds the
//! number of operators per group (`r`) and the number of groups per stage
//! (`s`).

use crate::graph::Graph;
use crate::op::OpId;
use crate::opset::OpSet;

/// The pruning strategy `P(r, s)` of Section 4.3.
///
/// An ending is admitted only if, when partitioned into groups (connected
/// components within the stage), it has at most `max_groups` groups and each
/// group has at most `max_group_size` operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PruningLimits {
    /// Maximum number of operators per group (`r` in the paper).
    pub max_group_size: usize,
    /// Maximum number of groups per stage (`s` in the paper).
    pub max_groups: usize,
}

impl PruningLimits {
    /// The default pruning strategy used throughout the paper's evaluation:
    /// `r = 3`, `s = 8`.
    #[must_use]
    pub fn paper_default() -> Self {
        PruningLimits {
            max_group_size: 3,
            max_groups: 8,
        }
    }

    /// No pruning: every ending is admitted (used for the Table 1 counts).
    #[must_use]
    pub fn unpruned() -> Self {
        PruningLimits {
            max_group_size: usize::MAX,
            max_groups: usize::MAX,
        }
    }

    /// Creates a pruning strategy with explicit `r` and `s`.
    #[must_use]
    pub fn new(max_group_size: usize, max_groups: usize) -> Self {
        PruningLimits {
            max_group_size,
            max_groups,
        }
    }

    /// Upper bound on the number of operators an admissible ending may have.
    #[must_use]
    pub fn max_stage_ops(&self) -> usize {
        self.max_group_size.saturating_mul(self.max_groups)
    }

    /// Checks whether a candidate stage satisfies `P`: groups are the
    /// connected components of `stage` inside `graph`.
    #[must_use]
    pub fn admits(&self, graph: &Graph, stage: OpSet) -> bool {
        if stage.len() > self.max_stage_ops() {
            return false;
        }
        let groups = graph.groups_of(stage);
        groups.len() <= self.max_groups && groups.iter().all(|g| g.len() <= self.max_group_size)
    }
}

impl Default for PruningLimits {
    fn default() -> Self {
        PruningLimits::paper_default()
    }
}

/// Pre-computed per-graph data for ending enumeration.
///
/// Construct once per graph and reuse across all dynamic-programming states;
/// enumeration itself allocates only the output vector.
#[derive(Debug, Clone)]
pub struct EndingEnumerator {
    /// Successor sets per operator.
    succs: Vec<OpSet>,
    /// Reverse topological order of the whole graph.
    reverse_topo: Vec<OpId>,
}

impl EndingEnumerator {
    /// Builds the enumerator for a graph.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        let succs = graph.successor_sets();
        let mut reverse_topo = graph.topological_order();
        reverse_topo.reverse();
        EndingEnumerator {
            succs,
            reverse_topo,
        }
    }

    /// Enumerates every non-empty ending of `state`, bounded in size by
    /// `max_ops` (use `usize::MAX` for no bound).
    ///
    /// The enumeration processes operators in reverse topological order and
    /// decides include/exclude for each; an operator may be included only if
    /// all of its successors inside `state` have already been included, which
    /// yields each successor-closed subset exactly once.
    #[must_use]
    pub fn endings(&self, state: OpSet, max_ops: usize) -> Vec<OpSet> {
        let members: Vec<OpId> = self
            .reverse_topo
            .iter()
            .copied()
            .filter(|id| state.contains(*id))
            .collect();
        let mut out = Vec::new();
        let mut current = OpSet::empty();
        self.recurse(&members, 0, state, &mut current, max_ops, &mut out);
        out
    }

    fn recurse(
        &self,
        members: &[OpId],
        idx: usize,
        state: OpSet,
        current: &mut OpSet,
        max_ops: usize,
        out: &mut Vec<OpSet>,
    ) {
        if idx == members.len() {
            if !current.is_empty() {
                out.push(*current);
            }
            return;
        }
        let op = members[idx];
        // Branch 1: exclude `op`.
        self.recurse(members, idx + 1, state, current, max_ops, out);
        // Branch 2: include `op`, allowed only if every successor of `op`
        // inside `state` is already included and the size bound holds.
        if current.len() < max_ops {
            let succs_in_state = self.succs[op.index()].intersection(state);
            if succs_in_state.is_subset(*current) {
                current.insert(op);
                self.recurse(members, idx + 1, state, current, max_ops, out);
                current.remove(op);
            }
        }
    }

    /// Counts the endings of `state` without materializing them (used by the
    /// Table 1 transition counts, where RandWire has ~1.2 × 10⁶ transitions).
    #[must_use]
    pub fn count_endings(&self, state: OpSet, max_ops: usize) -> u64 {
        let members: Vec<OpId> = self
            .reverse_topo
            .iter()
            .copied()
            .filter(|id| state.contains(*id))
            .collect();
        let mut current = OpSet::empty();
        let mut count = 0u64;
        self.count_recurse(&members, 0, state, &mut current, max_ops, &mut count);
        count
    }

    fn count_recurse(
        &self,
        members: &[OpId],
        idx: usize,
        state: OpSet,
        current: &mut OpSet,
        max_ops: usize,
        count: &mut u64,
    ) {
        if idx == members.len() {
            if !current.is_empty() {
                *count += 1;
            }
            return;
        }
        let op = members[idx];
        self.count_recurse(members, idx + 1, state, current, max_ops, count);
        if current.len() < max_ops {
            let succs_in_state = self.succs[op.index()].intersection(state);
            if succs_in_state.is_subset(*current) {
                current.insert(op);
                self.count_recurse(members, idx + 1, state, current, max_ops, count);
                current.remove(op);
            }
        }
    }

    /// Verifies that `candidate` is a valid ending of `state`.
    #[must_use]
    pub fn is_ending(&self, state: OpSet, candidate: OpSet) -> bool {
        if candidate.is_empty() || !candidate.is_subset(state) {
            return false;
        }
        candidate.iter().all(|op| {
            self.succs[op.index()]
                .intersection(state)
                .is_subset(candidate)
        })
    }
}

/// Convenience wrapper: enumerates the endings of `state` in `graph` that
/// satisfy the pruning strategy `limits`.
#[must_use]
pub fn endings_of(graph: &Graph, state: OpSet, limits: PruningLimits) -> Vec<OpSet> {
    let enumerator = EndingEnumerator::new(graph);
    enumerator
        .endings(state, limits.max_stage_ops())
        .into_iter()
        .filter(|s| limits.admits(graph, *s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::op::Conv2dParams;
    use crate::tensor::TensorShape;
    use proptest::prelude::*;

    /// Figure 5 graph: a → b, c independent.
    fn fig5() -> Graph {
        let mut b = GraphBuilder::new("fig5", TensorShape::new(1, 16, 8, 8));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)));
        let bb = b.conv2d("b", a, Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", input, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        b.build(vec![bb, c])
    }

    /// A diamond: a → {b, c} → d.
    fn diamond() -> Graph {
        let mut g = GraphBuilder::new("diamond", TensorShape::new(1, 16, 8, 8));
        let input = g.input(0);
        let a = g.conv2d("a", input, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        let b = g.conv2d("b", a, Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)));
        let c = g.conv2d("c", a, Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)));
        let d = g.concat("d", &[b, c]);
        g.build(vec![d])
    }

    #[test]
    fn figure5_endings_of_full_state() {
        let g = fig5();
        let e = EndingEnumerator::new(&g);
        let endings = e.endings(g.all_ops(), usize::MAX);
        // Figure 5 (2) enumerates the endings of {a,b,c}: {b}, {c}, {b,c},
        // {a,b}, {a,b,c}, {a,c}... wait — {a,c} is not shown; check:
        // an ending containing a must contain its successor b.
        // Valid endings: {b}, {c}, {b,c}, {a,b}, {a,b,c} → 5.
        assert_eq!(endings.len(), 5);
        for s in &endings {
            assert!(e.is_ending(g.all_ops(), *s));
        }
        assert_eq!(e.count_endings(g.all_ops(), usize::MAX), 5);
    }

    #[test]
    fn endings_respect_successor_closure() {
        let g = diamond();
        let e = EndingEnumerator::new(&g);
        let all = g.all_ops();
        let endings = e.endings(all, usize::MAX);
        // `a` may only appear in the full set; `d` alone is an ending.
        for s in &endings {
            if s.contains(OpId(0)) {
                assert_eq!(
                    s.len(),
                    4,
                    "ending containing the source must be the full set: {s:?}"
                );
            }
        }
        assert!(endings.contains(&OpSet::singleton(OpId(3))));
        // d, {b,d}, {c,d}, {b,c,d}, {a,b,c,d} = 5 endings.
        assert_eq!(endings.len(), 5);
    }

    #[test]
    fn endings_of_substate() {
        let g = fig5();
        let e = EndingEnumerator::new(&g);
        // State {a, c} (b already scheduled — not reachable in the real DP,
        // but enumeration must still be correct for arbitrary states).
        let state: OpSet = [OpId(0), OpId(2)].into_iter().collect();
        let endings = e.endings(state, usize::MAX);
        // a and c are unrelated inside the state → {a}, {c}, {a,c}.
        assert_eq!(endings.len(), 3);
    }

    #[test]
    fn max_ops_bound_respected() {
        let g = diamond();
        let e = EndingEnumerator::new(&g);
        let endings = e.endings(g.all_ops(), 1);
        assert!(endings.iter().all(|s| s.len() == 1));
        assert_eq!(endings.len(), 1); // only {d}
    }

    #[test]
    fn pruning_limits_admit() {
        let g = fig5();
        let limits = PruningLimits::new(1, 2);
        // {a, b} has a group of size 2 → rejected by r=1.
        let ab: OpSet = [OpId(0), OpId(1)].into_iter().collect();
        assert!(!limits.admits(&g, ab));
        // {b, c} are two singleton groups → admitted.
        let bc: OpSet = [OpId(1), OpId(2)].into_iter().collect();
        assert!(limits.admits(&g, bc));
        assert_eq!(PruningLimits::paper_default().max_group_size, 3);
        assert_eq!(PruningLimits::paper_default().max_groups, 8);
    }

    #[test]
    fn endings_of_helper_applies_pruning() {
        let g = fig5();
        let pruned = endings_of(&g, g.all_ops(), PruningLimits::new(1, 8));
        // Endings with the a-b pair grouped together are removed.
        assert!(pruned
            .iter()
            .all(|s| g.groups_of(*s).iter().all(|grp| grp.len() <= 1)));
        let unpruned = endings_of(&g, g.all_ops(), PruningLimits::unpruned());
        assert_eq!(unpruned.len(), 5);
    }

    #[test]
    fn is_ending_rejects_non_subsets_and_empty() {
        let g = fig5();
        let e = EndingEnumerator::new(&g);
        let state: OpSet = [OpId(1), OpId(2)].into_iter().collect();
        assert!(!e.is_ending(state, OpSet::empty()));
        assert!(!e.is_ending(state, OpSet::singleton(OpId(0))));
    }

    /// Builds a random layered DAG for property testing.
    fn random_layered_graph(layer_sizes: &[usize], edge_bits: u64) -> Graph {
        let mut b = GraphBuilder::new("rand", TensorShape::new(1, 8, 8, 8));
        let input = b.input(0);
        let mut prev: Vec<crate::graph::Value> = vec![input];
        let mut bit = 0;
        for (li, &n) in layer_sizes.iter().enumerate() {
            let mut layer = Vec::new();
            for i in 0..n {
                // Each node takes one or two predecessors from the previous layer.
                let p0 = prev[(edge_bits >> (bit % 60)) as usize % prev.len()];
                bit += 3;
                let v = b.conv2d(
                    format!("l{li}_{i}"),
                    p0,
                    Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)),
                );
                layer.push(v);
            }
            prev = layer;
        }
        b.build(prev)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every enumerated ending satisfies the closure property, and the
        /// count matches the enumeration length.
        #[test]
        fn prop_endings_are_valid(bits in any::<u64>(),
                                  l1 in 1usize..4, l2 in 1usize..4, l3 in 1usize..3) {
            let g = random_layered_graph(&[l1, l2, l3], bits);
            let e = EndingEnumerator::new(&g);
            let all = g.all_ops();
            let endings = e.endings(all, usize::MAX);
            for s in &endings {
                prop_assert!(e.is_ending(all, *s));
            }
            prop_assert_eq!(endings.len() as u64, e.count_endings(all, usize::MAX));
            // Endings are unique.
            let mut sorted = endings.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), endings.len());
            // The full set is always an ending.
            prop_assert!(endings.contains(&all));
        }

        /// Removing an ending from a state yields a state whose complement is
        /// still an ending of the full set (Lemma 1/2 of the paper).
        #[test]
        fn prop_ending_composition(bits in any::<u64>(), l1 in 1usize..4, l2 in 1usize..4) {
            let g = random_layered_graph(&[l1, l2], bits);
            let e = EndingEnumerator::new(&g);
            let all = g.all_ops();
            for s1 in e.endings(all, usize::MAX) {
                let rest = all.difference(s1);
                if rest.is_empty() { continue; }
                for s2 in e.endings(rest, usize::MAX) {
                    // S1 ∪ S2 must also be an ending of V (Lemma 1).
                    prop_assert!(e.is_ending(all, s1.union(s2)));
                }
            }
        }
    }
}
