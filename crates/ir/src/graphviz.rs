//! Graphviz (DOT) export for computation graphs.
//!
//! Used by the Figure 10 reproduction to render the schedules IOS finds for
//! the last Inception V3 block at different batch sizes, and generally useful
//! when inspecting model definitions.

use crate::graph::{Graph, Value};
use crate::op::OpKind;
use crate::opset::OpSet;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT format.
///
/// Operators are labelled with their name, kind and output shape. External
/// inputs are drawn as plain ellipses.
#[must_use]
pub fn graph_to_dot(graph: &Graph) -> String {
    graph_to_dot_with_stages(graph, &[])
}

/// Renders the graph in DOT format with operators clustered by stage.
///
/// `stages` is an ordered list of operator sets; each becomes a
/// `subgraph cluster_i` so that the stage structure of a schedule is visible,
/// mirroring the dotted stage separators of Figure 2 and Figure 10.
#[must_use]
pub fn graph_to_dot_with_stages(graph: &Graph, stages: &[OpSet]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(graph.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");

    for (i, shape) in graph.input_shapes().iter().enumerate() {
        let _ = writeln!(
            out,
            "  input{i} [shape=ellipse, label=\"input {i}\\n{shape}\"];"
        );
    }

    let in_stage = |idx: usize| stages.iter().position(|s| s.contains(crate::OpId(idx)));

    // Nodes, grouped into clusters when a stage assignment is given.
    if stages.is_empty() {
        for op in graph.ops() {
            let _ = writeln!(out, "  {};", node_decl(graph, op.id.index()));
        }
    } else {
        for (si, stage) in stages.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{si} {{");
            let _ = writeln!(out, "    label=\"stage {}\";", si + 1);
            let _ = writeln!(out, "    style=dashed;");
            for op in stage.iter() {
                let _ = writeln!(out, "    {};", node_decl(graph, op.index()));
            }
            let _ = writeln!(out, "  }}");
        }
        // Operators not covered by any stage still need declarations.
        for op in graph.ops() {
            if in_stage(op.id.index()).is_none() {
                let _ = writeln!(out, "  {};", node_decl(graph, op.id.index()));
            }
        }
    }

    // Edges.
    for op in graph.ops() {
        for value in &op.inputs {
            match value {
                Value::Input(i) => {
                    let _ = writeln!(out, "  input{i} -> n{};", op.id.index());
                }
                Value::Op(p) => {
                    let _ = writeln!(out, "  n{} -> n{};", p.index(), op.id.index());
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn node_decl(graph: &Graph, idx: usize) -> String {
    let op = &graph.ops()[idx];
    let extra = match &op.kind {
        OpKind::Conv2d(p) | OpKind::SepConv2d(p) => {
            format!(
                "\\n{}x{} k{}x{}",
                p.out_channels,
                graph.op_input_shapes(op.id)[0].channels,
                p.kernel.0,
                p.kernel.1
            )
        }
        _ => String::new(),
    };
    format!(
        "n{} [label=\"{}\\n{}{}\\n{}\"]",
        idx,
        sanitize(&op.name),
        op.kind.type_name(),
        extra,
        op.output_shape
    )
}

fn sanitize(s: &str) -> String {
    s.replace('"', "'").replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::op::{Conv2dParams, OpId};
    use crate::tensor::TensorShape;

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new("dot_test", TensorShape::new(1, 16, 8, 8));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", input, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        b.build(vec![cat])
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = small_graph();
        let dot = graph_to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0"));
        assert!(dot.contains("n1"));
        assert!(dot.contains("n2"));
        assert!(dot.contains("input0 -> n0"));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("Concat"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_with_stages_emits_clusters() {
        let g = small_graph();
        let stage1: OpSet = [OpId(0), OpId(1)].into_iter().collect();
        let stage2: OpSet = [OpId(2)].into_iter().collect();
        let dot = graph_to_dot_with_stages(&g, &[stage1, stage2]);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("stage 1"));
        assert!(dot.contains("stage 2"));
    }

    #[test]
    fn sanitize_escapes_quotes() {
        assert_eq!(sanitize("a\"b\\c"), "a'b/c");
    }
}
