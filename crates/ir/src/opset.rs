//! Bitset over operator ids, used as the dynamic-programming state of IOS.
//!
//! The scheduler memoizes on subsets of a block's operators (Algorithm 1 of
//! the paper keys `cost[S]` and `choice[S]` by the operator set `S`).
//! A 128-bit bitset covers every block in the benchmark networks — the
//! largest block the paper schedules has 33 operators (RandWire, Table 1).

use crate::op::OpId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of operators a single scheduled graph may contain.
pub const MAX_OPS: usize = 128;

/// A set of operators represented as a 128-bit bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct OpSet(u128);

impl OpSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        OpSet(0)
    }

    /// The set containing the first `n` operator ids `{0, 1, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(
            n <= MAX_OPS,
            "OpSet supports at most {MAX_OPS} operators, got {n}"
        );
        if n == MAX_OPS {
            OpSet(u128::MAX)
        } else {
            OpSet((1u128 << n) - 1)
        }
    }

    /// The set containing a single operator.
    #[must_use]
    pub fn singleton(op: OpId) -> Self {
        let mut s = OpSet::empty();
        s.insert(op);
        s
    }

    /// Raw bit representation (useful for hashing or debugging).
    #[must_use]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// True if the set contains no operators.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of operators in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if `op` is a member.
    #[must_use]
    pub fn contains(self, op: OpId) -> bool {
        debug_assert!(op.index() < MAX_OPS);
        self.0 & (1u128 << op.index()) != 0
    }

    /// Inserts an operator.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the operator index exceeds [`MAX_OPS`].
    pub fn insert(&mut self, op: OpId) {
        debug_assert!(
            op.index() < MAX_OPS,
            "operator index {} out of range",
            op.index()
        );
        self.0 |= 1u128 << op.index();
    }

    /// Removes an operator (no-op if absent).
    pub fn remove(&mut self, op: OpId) {
        self.0 &= !(1u128 << op.index());
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: OpSet) -> OpSet {
        OpSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: OpSet) -> OpSet {
        OpSet(self.0 & other.0)
    }

    /// Set difference `self − other`.
    #[must_use]
    pub fn difference(self, other: OpSet) -> OpSet {
        OpSet(self.0 & !other.0)
    }

    /// True if every member of `self` is a member of `other`.
    #[must_use]
    pub fn is_subset(self, other: OpSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the two sets share no members.
    #[must_use]
    pub fn is_disjoint(self, other: OpSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the members in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = OpId> {
        OpSetIter(self.0)
    }

    /// The member with the smallest id, if any.
    #[must_use]
    pub fn first(self) -> Option<OpId> {
        if self.0 == 0 {
            None
        } else {
            Some(OpId(self.0.trailing_zeros() as usize))
        }
    }
}

impl FromIterator<OpId> for OpSet {
    fn from_iter<T: IntoIterator<Item = OpId>>(iter: T) -> Self {
        let mut s = OpSet::empty();
        for op in iter {
            s.insert(op);
        }
        s
    }
}

impl Extend<OpId> for OpSet {
    fn extend<T: IntoIterator<Item = OpId>>(&mut self, iter: T) {
        for op in iter {
            self.insert(op);
        }
    }
}

impl fmt::Debug for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpSet{{")?;
        let mut first = true;
        for op in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}", op.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the members of an [`OpSet`].
struct OpSetIter(u128);

impl Iterator for OpSetIter {
    type Item = OpId;

    fn next(&mut self) -> Option<OpId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(OpId(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        assert!(OpSet::empty().is_empty());
        assert_eq!(OpSet::full(0), OpSet::empty());
        assert_eq!(OpSet::full(5).len(), 5);
        assert_eq!(OpSet::full(128).len(), 128);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn full_beyond_capacity_panics() {
        let _ = OpSet::full(129);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = OpSet::empty();
        s.insert(OpId(3));
        s.insert(OpId(127));
        assert!(s.contains(OpId(3)));
        assert!(s.contains(OpId(127)));
        assert!(!s.contains(OpId(4)));
        s.remove(OpId(3));
        assert!(!s.contains(OpId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a: OpSet = [OpId(0), OpId(1), OpId(2)].into_iter().collect();
        let b: OpSet = [OpId(2), OpId(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), OpSet::singleton(OpId(2)));
        assert_eq!(a.difference(b).len(), 2);
        assert!(OpSet::singleton(OpId(2)).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.difference(b).is_disjoint(b));
    }

    #[test]
    fn iteration_in_order() {
        let s: OpSet = [OpId(5), OpId(1), OpId(64)].into_iter().collect();
        let got: Vec<usize> = s.iter().map(OpId::index).collect();
        assert_eq!(got, vec![1, 5, 64]);
        assert_eq!(s.first(), Some(OpId(1)));
        assert_eq!(OpSet::empty().first(), None);
    }

    #[test]
    fn debug_format_lists_members() {
        let s: OpSet = [OpId(2), OpId(7)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "OpSet{2, 7}");
    }

    proptest! {
        #[test]
        fn prop_union_len_bounds(xs in proptest::collection::vec(0usize..128, 0..40),
                                 ys in proptest::collection::vec(0usize..128, 0..40)) {
            let a: OpSet = xs.iter().map(|&i| OpId(i)).collect();
            let b: OpSet = ys.iter().map(|&i| OpId(i)).collect();
            let u = a.union(b);
            prop_assert!(u.len() <= a.len() + b.len());
            prop_assert!(u.len() >= a.len().max(b.len()));
            prop_assert!(a.is_subset(u) && b.is_subset(u));
        }

        #[test]
        fn prop_difference_partition(xs in proptest::collection::vec(0usize..128, 0..40),
                                     ys in proptest::collection::vec(0usize..128, 0..40)) {
            let a: OpSet = xs.iter().map(|&i| OpId(i)).collect();
            let b: OpSet = ys.iter().map(|&i| OpId(i)).collect();
            let diff = a.difference(b);
            let inter = a.intersection(b);
            prop_assert_eq!(diff.union(inter), a);
            prop_assert!(diff.is_disjoint(b));
            prop_assert_eq!(diff.len() + inter.len(), a.len());
        }

        #[test]
        fn prop_iter_roundtrip(xs in proptest::collection::vec(0usize..128, 0..60)) {
            let a: OpSet = xs.iter().map(|&i| OpId(i)).collect();
            let rebuilt: OpSet = a.iter().collect();
            prop_assert_eq!(a, rebuilt);
            prop_assert_eq!(a.iter().count(), a.len());
        }
    }
}
