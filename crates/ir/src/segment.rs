//! Segment boundaries over a network's block list.
//!
//! A network executes its blocks strictly in order, so any partition of the
//! block sequence into *contiguous* runs — segments — preserves the data
//! flow: segment `k + 1` consumes exactly the tensors segment `k` produces.
//! This is the structural foundation of cross-block pipelined execution: a
//! pipeline assigns each segment to one stage worker and streams batch
//! instances through them, so block `k` of sample `i + 1` overlaps block
//! `k + 1` of sample `i`.
//!
//! [`SegmentPlan`] is the IR-level object: just the boundaries, validated
//! to cover the block list contiguously. *Choosing* the boundaries (from
//! per-block cost measurements) is the scheduler's job (`ios-core`);
//! *executing* them is the backend's.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A partition of a network's `num_blocks` blocks into contiguous
/// segments, stored as the start index of every segment (the first entry
/// is always 0).
///
/// The degenerate plans are both valid: a single segment reproduces flat
/// (non-pipelined) execution, and one segment per block is the
/// finest-grained pipeline the block structure admits.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentPlan {
    /// Start block index of each segment, strictly increasing, first 0.
    starts: Vec<usize>,
    /// Total number of blocks covered.
    num_blocks: usize,
}

impl SegmentPlan {
    /// Builds a plan from the start index of every segment.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation if `starts` is empty, does
    /// not begin at block 0, is not strictly increasing, or reaches past
    /// `num_blocks`, or if `num_blocks` is 0.
    pub fn from_starts(num_blocks: usize, starts: Vec<usize>) -> Result<Self, String> {
        if num_blocks == 0 {
            return Err("a segment plan needs at least one block".to_string());
        }
        if starts.first() != Some(&0) {
            return Err(format!(
                "the first segment must start at block 0, got {:?}",
                starts.first()
            ));
        }
        for pair in starts.windows(2) {
            if pair[1] <= pair[0] {
                return Err(format!(
                    "segment starts must be strictly increasing, got {} then {}",
                    pair[0], pair[1]
                ));
            }
        }
        if let Some(&last) = starts.last() {
            if last >= num_blocks {
                return Err(format!(
                    "segment start {last} is out of range for {num_blocks} blocks"
                ));
            }
        }
        Ok(SegmentPlan { starts, num_blocks })
    }

    /// The single-segment plan: all blocks in one run (flat execution).
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is 0.
    #[must_use]
    pub fn single(num_blocks: usize) -> Self {
        Self::from_starts(num_blocks, vec![0]).expect("single-segment plan is always valid")
    }

    /// The finest plan: one segment per block.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is 0.
    #[must_use]
    pub fn per_block(num_blocks: usize) -> Self {
        Self::from_starts(num_blocks, (0..num_blocks).collect())
            .expect("per-block plan is always valid")
    }

    /// An even split into `num_segments` segments (the last segments are
    /// one block shorter when the division is not exact). `num_segments`
    /// is clamped to `[1, num_blocks]`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is 0.
    #[must_use]
    pub fn even(num_blocks: usize, num_segments: usize) -> Self {
        let segments = num_segments.clamp(1, num_blocks);
        let base = num_blocks / segments;
        let extra = num_blocks % segments;
        let mut starts = Vec::with_capacity(segments);
        let mut at = 0;
        for s in 0..segments {
            starts.push(at);
            at += base + usize::from(s < extra);
        }
        Self::from_starts(num_blocks, starts).expect("even split is always valid")
    }

    /// Number of segments.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.starts.len()
    }

    /// Number of blocks covered by the plan.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The block range of segment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn segment(&self, index: usize) -> Range<usize> {
        let start = self.starts[index];
        let end = self
            .starts
            .get(index + 1)
            .copied()
            .unwrap_or(self.num_blocks);
        start..end
    }

    /// Iterates over the block range of every segment, in order.
    pub fn segments(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_segments()).map(|i| self.segment(i))
    }

    /// The segment containing block `block`, if in range.
    #[must_use]
    pub fn segment_of(&self, block: usize) -> Option<usize> {
        if block >= self.num_blocks {
            return None;
        }
        Some(self.starts.partition_point(|&s| s <= block) - 1)
    }

    /// True when the plan is the single-segment (flat execution) plan.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        self.num_segments() == 1
    }
}

impl std::fmt::Display for SegmentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ranges: Vec<String> = self
            .segments()
            .map(|r| format!("{}..{}", r.start, r.end))
            .collect();
        write!(f, "[{}]", ranges.join(" | "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_plans_cover_everything() {
        let flat = SegmentPlan::single(5);
        assert!(flat.is_flat());
        assert_eq!(flat.segments().collect::<Vec<_>>(), vec![0..5]);

        let fine = SegmentPlan::per_block(3);
        assert_eq!(fine.num_segments(), 3);
        assert_eq!(fine.segments().collect::<Vec<_>>(), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn even_split_distributes_remainders_first() {
        let plan = SegmentPlan::even(7, 3);
        assert_eq!(plan.segments().collect::<Vec<_>>(), vec![0..3, 3..5, 5..7]);
        // Clamped: more segments than blocks degenerates to per-block.
        assert_eq!(SegmentPlan::even(2, 8), SegmentPlan::per_block(2));
        assert_eq!(SegmentPlan::even(4, 0), SegmentPlan::single(4));
    }

    #[test]
    fn segment_of_maps_blocks_to_their_segment() {
        let plan = SegmentPlan::from_starts(6, vec![0, 2, 5]).unwrap();
        assert_eq!(plan.segment_of(0), Some(0));
        assert_eq!(plan.segment_of(1), Some(0));
        assert_eq!(plan.segment_of(2), Some(1));
        assert_eq!(plan.segment_of(4), Some(1));
        assert_eq!(plan.segment_of(5), Some(2));
        assert_eq!(plan.segment_of(6), None);
    }

    #[test]
    fn invalid_boundaries_are_rejected() {
        assert!(SegmentPlan::from_starts(0, vec![0]).is_err());
        assert!(SegmentPlan::from_starts(4, vec![]).is_err());
        assert!(SegmentPlan::from_starts(4, vec![1]).is_err());
        assert!(SegmentPlan::from_starts(4, vec![0, 2, 2]).is_err());
        assert!(SegmentPlan::from_starts(4, vec![0, 4]).is_err());
    }

    #[test]
    fn display_and_serde_round_trip() {
        let plan = SegmentPlan::from_starts(6, vec![0, 2, 5]).unwrap();
        assert_eq!(plan.to_string(), "[0..2 | 2..5 | 5..6]");
        let json = serde_json::to_string(&plan).unwrap();
        let back: SegmentPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
