//! Operators of a CNN computation graph.
//!
//! The operator set is the one used by the paper's benchmark networks:
//! convolution (optionally with a fused ReLU, the "Conv-Relu" scheduling
//! unit), separable convolution (the "Relu-SepConv" unit of RandWire and
//! NasNet), pooling, matrix multiplication, concatenation, element-wise
//! addition, ReLU and identity.
//!
//! Each operator knows how to infer its output shape and how to account for
//! its floating point work and memory traffic, which is all the analytical
//! GPU simulator needs.

use crate::error::IrError;
use crate::tensor::{DType, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operator inside a [`crate::Graph`].
///
/// Operator ids are dense indices assigned in insertion order, which lets the
/// scheduler use them directly as bit positions in an [`crate::OpSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

impl OpId {
    /// Index of this operator inside its graph.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Activation fused into an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// No fused activation.
    #[default]
    None,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// True if an activation is fused.
    #[must_use]
    pub fn is_some(self) -> bool {
        self != Activation::None
    }
}

/// Hyper-parameters of a (possibly grouped) 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel spatial size (height, width).
    pub kernel: (usize, usize),
    /// Stride (height, width).
    pub stride: (usize, usize),
    /// Zero padding (height, width).
    pub padding: (usize, usize),
    /// Number of groups (1 = dense convolution, `in_channels` = depthwise).
    pub groups: usize,
    /// Activation fused after the convolution ("Conv-Relu" unit).
    pub activation: Activation,
}

impl Conv2dParams {
    /// Convolution without a fused activation.
    #[must_use]
    pub fn plain(
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        Conv2dParams {
            out_channels,
            kernel,
            stride,
            padding,
            groups: 1,
            activation: Activation::None,
        }
    }

    /// Convolution with a fused ReLU — the paper's "Conv-Relu" schedule unit.
    #[must_use]
    pub fn relu(
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        Conv2dParams {
            activation: Activation::Relu,
            ..Conv2dParams::plain(out_channels, kernel, stride, padding)
        }
    }

    /// "Same" padding for odd kernel sizes (output spatial size equals input
    /// at stride one).
    #[must_use]
    pub fn same_padding(kernel: (usize, usize)) -> (usize, usize) {
        (kernel.0 / 2, kernel.1 / 2)
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidParameter`] if any dimension is zero.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.out_channels == 0
            || self.kernel.0 == 0
            || self.kernel.1 == 0
            || self.stride.0 == 0
            || self.stride.1 == 0
            || self.groups == 0
        {
            return Err(IrError::InvalidParameter {
                message: format!("conv2d parameters contain a zero dimension: {self:?}"),
            });
        }
        Ok(())
    }
}

/// Kind of pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling.
    Avg,
    /// Global average pooling (pools the whole spatial extent).
    GlobalAvg,
}

/// Hyper-parameters of a pooling operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolParams {
    /// Kind of pooling.
    pub kind: PoolKind,
    /// Pooling window (ignored for [`PoolKind::GlobalAvg`]).
    pub kernel: (usize, usize),
    /// Stride.
    pub stride: (usize, usize),
    /// Zero padding.
    pub padding: (usize, usize),
}

impl PoolParams {
    /// Max pooling with the given window and stride.
    #[must_use]
    pub fn max(kernel: (usize, usize), stride: (usize, usize), padding: (usize, usize)) -> Self {
        PoolParams {
            kind: PoolKind::Max,
            kernel,
            stride,
            padding,
        }
    }

    /// Average pooling with the given window and stride.
    #[must_use]
    pub fn avg(kernel: (usize, usize), stride: (usize, usize), padding: (usize, usize)) -> Self {
        PoolParams {
            kind: PoolKind::Avg,
            kernel,
            stride,
            padding,
        }
    }

    /// Global average pooling.
    #[must_use]
    pub fn global_avg() -> Self {
        PoolParams {
            kind: PoolKind::GlobalAvg,
            kernel: (1, 1),
            stride: (1, 1),
            padding: (0, 0),
        }
    }
}

/// Hyper-parameters of a matrix multiplication (fully connected layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatMulParams {
    /// Number of output features.
    pub out_features: usize,
    /// Activation fused after the matrix multiplication.
    pub activation: Activation,
}

/// The kind of an operator together with its hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense or grouped 2-D convolution (optionally with fused ReLU).
    Conv2d(Conv2dParams),
    /// Depthwise-separable convolution: a depthwise k×k convolution followed
    /// by a pointwise 1×1 convolution, preceded by a ReLU — the
    /// "Relu-SepConv" schedule unit used by RandWire and NasNet.
    SepConv2d(Conv2dParams),
    /// Pooling.
    Pool(PoolParams),
    /// Matrix multiplication / fully connected layer.
    MatMul(MatMulParams),
    /// Channel-wise concatenation of all inputs.
    Concat,
    /// Element-wise addition of all inputs (shapes must match).
    Add,
    /// Rectified linear unit as a standalone operator.
    Relu,
    /// Identity / no-op (used to model tensor views and residual taps).
    Identity,
}

impl OpKind {
    /// Short human-readable name of the operator kind, used in schedules and
    /// Graphviz dumps.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            OpKind::Conv2d(_) => "Conv2d",
            OpKind::SepConv2d(_) => "SepConv2d",
            OpKind::Pool(_) => "Pool",
            OpKind::MatMul(_) => "MatMul",
            OpKind::Concat => "Concat",
            OpKind::Add => "Add",
            OpKind::Relu => "Relu",
            OpKind::Identity => "Identity",
        }
    }

    /// True if this operator performs substantial floating point work and is
    /// therefore a *schedule unit* in the sense of Section 5 of the paper
    /// (convolutions, separable convolutions and matrix multiplications).
    ///
    /// Lightweight "glue" operators (concat, add, relu, identity, pooling)
    /// are still part of the graph and of stages, but the paper's operator
    /// counts in Table 2 refer to the heavy units.
    #[must_use]
    pub fn is_compute_unit(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d(_) | OpKind::SepConv2d(_) | OpKind::MatMul(_)
        )
    }
}

/// An operator instance inside a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Dense identifier of the operator inside its graph.
    pub id: OpId,
    /// Human readable name (unique within the graph by construction).
    pub name: String,
    /// Operator kind and hyper-parameters.
    pub kind: OpKind,
    /// Input values (graph inputs or outputs of other operators).
    pub inputs: Vec<crate::graph::Value>,
    /// Inferred output shape.
    pub output_shape: TensorShape,
}

impl Op {
    /// Number of trainable parameters (weights + biases) of the operator.
    #[must_use]
    pub fn num_parameters(&self, input_shapes: &[TensorShape]) -> usize {
        match &self.kind {
            OpKind::Conv2d(p) => {
                let in_c = input_shapes[0].channels;
                p.out_channels * (in_c / p.groups) * p.kernel.0 * p.kernel.1 + p.out_channels
            }
            OpKind::SepConv2d(p) => {
                let in_c = input_shapes[0].channels;
                // depthwise kxk + pointwise 1x1
                in_c * p.kernel.0 * p.kernel.1 + p.out_channels * in_c + p.out_channels
            }
            OpKind::MatMul(p) => {
                let in_f = input_shapes[0].elements_per_item();
                in_f * p.out_features + p.out_features
            }
            _ => 0,
        }
    }

    /// Floating point operations performed by this operator (multiply and add
    /// counted separately, matching the paper's FLOP convention).
    #[must_use]
    pub fn flops(&self, input_shapes: &[TensorShape]) -> u64 {
        let out = &self.output_shape;
        let out_elems = out.num_elements() as u64;
        match &self.kind {
            OpKind::Conv2d(p) => {
                let in_c = input_shapes[0].channels as u64;
                let per_output = 2 * (in_c / p.groups as u64) * (p.kernel.0 * p.kernel.1) as u64;
                let act = if p.activation.is_some() { out_elems } else { 0 };
                out_elems * per_output + act
            }
            OpKind::SepConv2d(p) => {
                let in_c = input_shapes[0].channels as u64;
                let spatial = (out.batch * out.height * out.width) as u64;
                let depthwise = 2 * spatial * in_c * (p.kernel.0 * p.kernel.1) as u64;
                let pointwise = 2 * spatial * in_c * p.out_channels as u64;
                let pre_relu = input_shapes[0].num_elements() as u64;
                depthwise + pointwise + pre_relu
            }
            OpKind::Pool(p) => match p.kind {
                PoolKind::GlobalAvg => input_shapes[0].num_elements() as u64,
                _ => out_elems * (p.kernel.0 * p.kernel.1) as u64,
            },
            OpKind::MatMul(p) => {
                let in_f = input_shapes[0].elements_per_item() as u64;
                let batch = input_shapes[0].batch as u64;
                2 * batch * in_f * p.out_features as u64
                    + if p.activation.is_some() { out_elems } else { 0 }
            }
            OpKind::Concat | OpKind::Identity => 0,
            OpKind::Add => out_elems * (input_shapes.len().saturating_sub(1)) as u64,
            OpKind::Relu => out_elems,
        }
    }

    /// Bytes of memory traffic: activations read, weights read and outputs
    /// written. This drives the memory-bound side of the roofline cost model
    /// and the operator-merge benefit analysis of Figure 10 (merging removes
    /// a duplicated read of the shared input).
    #[must_use]
    pub fn memory_bytes(&self, input_shapes: &[TensorShape], dtype: DType) -> u64 {
        let reads: u64 = input_shapes
            .iter()
            .map(|s| s.size_bytes(dtype) as u64)
            .sum();
        let weights = self.num_parameters(input_shapes) as u64 * dtype.size_bytes() as u64;
        let writes = self.output_shape.size_bytes(dtype) as u64;
        reads + weights + writes
    }

    /// Infers the output shape of an operator from its input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ShapeMismatch`] when the inputs are incompatible and
    /// [`IrError::InvalidParameter`] when the hyper-parameters are malformed.
    pub fn infer_output_shape(
        name: &str,
        kind: &OpKind,
        input_shapes: &[TensorShape],
    ) -> Result<TensorShape, IrError> {
        let require_inputs = |n: usize| -> Result<(), IrError> {
            if input_shapes.len() < n {
                return Err(IrError::ShapeMismatch {
                    context: name.to_string(),
                    details: format!("expected at least {n} inputs, got {}", input_shapes.len()),
                });
            }
            Ok(())
        };
        match kind {
            OpKind::Conv2d(p) | OpKind::SepConv2d(p) => {
                require_inputs(1)?;
                p.validate()?;
                let input = input_shapes[0];
                if !input.channels.is_multiple_of(p.groups) {
                    return Err(IrError::InvalidParameter {
                        message: format!(
                            "operator `{name}`: input channels {} not divisible by groups {}",
                            input.channels, p.groups
                        ),
                    });
                }
                let (h, w) = input.conv_output_hw(p.kernel, p.stride, p.padding);
                Ok(TensorShape::new(input.batch, p.out_channels, h, w))
            }
            OpKind::Pool(p) => {
                require_inputs(1)?;
                let input = input_shapes[0];
                match p.kind {
                    PoolKind::GlobalAvg => Ok(TensorShape::new(input.batch, input.channels, 1, 1)),
                    _ => {
                        let (h, w) = input.conv_output_hw(p.kernel, p.stride, p.padding);
                        Ok(TensorShape::new(input.batch, input.channels, h, w))
                    }
                }
            }
            OpKind::MatMul(p) => {
                require_inputs(1)?;
                let input = input_shapes[0];
                Ok(TensorShape::vector(input.batch, p.out_features))
            }
            OpKind::Concat => {
                require_inputs(1)?;
                let first = input_shapes[0];
                let mut channels = 0;
                for s in input_shapes {
                    if !s.same_spatial(&first) {
                        return Err(IrError::ShapeMismatch {
                            context: format!("concat `{name}`"),
                            details: format!("{s} vs {first}"),
                        });
                    }
                    channels += s.channels;
                }
                Ok(TensorShape::new(
                    first.batch,
                    channels,
                    first.height,
                    first.width,
                ))
            }
            OpKind::Add => {
                require_inputs(1)?;
                let first = input_shapes[0];
                for s in input_shapes {
                    if s != &first {
                        return Err(IrError::ShapeMismatch {
                            context: format!("add `{name}`"),
                            details: format!("{s} vs {first}"),
                        });
                    }
                }
                Ok(first)
            }
            OpKind::Relu | OpKind::Identity => {
                require_inputs(1)?;
                Ok(input_shapes[0])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Value;

    fn make_op(kind: OpKind, inputs: &[TensorShape]) -> Op {
        let shape = Op::infer_output_shape("t", &kind, inputs).unwrap();
        Op {
            id: OpId(0),
            name: "t".to_string(),
            kind,
            inputs: vec![Value::Input(0); inputs.len()],
            output_shape: shape,
        }
    }

    #[test]
    fn conv_shape_and_flops() {
        let input = TensorShape::new(1, 384, 8, 8);
        let op = make_op(
            OpKind::Conv2d(Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1))),
            &[input],
        );
        assert_eq!(op.output_shape, TensorShape::new(1, 384, 8, 8));
        // 2 * 8*8*384 * 384*3*3 = ~169.8 MFLOPs + relu
        let flops = op.flops(&[input]);
        assert!(
            flops > 169_000_000 && flops < 171_000_000,
            "flops = {flops}"
        );
    }

    #[test]
    fn conv_flops_match_figure2_magnitudes() {
        // Figure 2: Conv 3x3x384 on a 1920-channel... the figure reports
        // 0.6 GFLOPs for the 384-channel branch and 1.2 GFLOPs for the
        // 768-channel branch on the same input; the ratio must be exactly 2.
        let input = TensorShape::new(1, 384, 15, 15);
        let a = make_op(
            OpKind::Conv2d(Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1))),
            &[input],
        );
        let b = make_op(
            OpKind::Conv2d(Conv2dParams::relu(768, (3, 3), (1, 1), (1, 1))),
            &[input],
        );
        let fa = a.flops(&[input]) as f64;
        let fb = b.flops(&[input]) as f64;
        assert!((fb / fa - 2.0).abs() < 0.01);
    }

    #[test]
    fn grouped_conv_divides_flops() {
        let input = TensorShape::new(1, 64, 28, 28);
        let dense = make_op(
            OpKind::Conv2d(Conv2dParams::plain(64, (3, 3), (1, 1), (1, 1))),
            &[input],
        );
        let mut grouped_params = Conv2dParams::plain(64, (3, 3), (1, 1), (1, 1));
        grouped_params.groups = 4;
        let grouped = make_op(OpKind::Conv2d(grouped_params), &[input]);
        assert_eq!(dense.flops(&[input]) / grouped.flops(&[input]), 4);
    }

    #[test]
    fn sepconv_cheaper_than_dense() {
        let input = TensorShape::new(1, 128, 28, 28);
        let dense = make_op(
            OpKind::Conv2d(Conv2dParams::plain(128, (3, 3), (1, 1), (1, 1))),
            &[input],
        );
        let sep = make_op(
            OpKind::SepConv2d(Conv2dParams::plain(128, (3, 3), (1, 1), (1, 1))),
            &[input],
        );
        assert!(sep.flops(&[input]) < dense.flops(&[input]) / 4);
    }

    #[test]
    fn concat_sums_channels() {
        let a = TensorShape::new(1, 64, 28, 28);
        let b = TensorShape::new(1, 96, 28, 28);
        let op = make_op(OpKind::Concat, &[a, b]);
        assert_eq!(op.output_shape.channels, 160);
        assert_eq!(op.flops(&[a, b]), 0);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let a = TensorShape::new(1, 64, 28, 28);
        let b = TensorShape::new(1, 96, 14, 14);
        let err = Op::infer_output_shape("c", &OpKind::Concat, &[a, b]).unwrap_err();
        assert!(matches!(err, IrError::ShapeMismatch { .. }));
    }

    #[test]
    fn add_requires_identical_shapes() {
        let a = TensorShape::new(1, 64, 28, 28);
        let b = TensorShape::new(1, 64, 28, 28);
        assert!(Op::infer_output_shape("a", &OpKind::Add, &[a, b]).is_ok());
        let c = TensorShape::new(1, 65, 28, 28);
        assert!(Op::infer_output_shape("a", &OpKind::Add, &[a, c]).is_err());
    }

    #[test]
    fn global_avg_pool_collapses_spatial() {
        let input = TensorShape::new(4, 2048, 8, 8);
        let op = make_op(OpKind::Pool(PoolParams::global_avg()), &[input]);
        assert_eq!(op.output_shape, TensorShape::new(4, 2048, 1, 1));
    }

    #[test]
    fn matmul_shape_and_params() {
        let input = TensorShape::vector(8, 2048);
        let op = make_op(
            OpKind::MatMul(MatMulParams {
                out_features: 1000,
                activation: Activation::None,
            }),
            &[input],
        );
        assert_eq!(op.output_shape, TensorShape::vector(8, 1000));
        assert_eq!(op.num_parameters(&[input]), 2048 * 1000 + 1000);
        assert_eq!(op.flops(&[input]), 2 * 8 * 2048 * 1000);
    }

    #[test]
    fn memory_bytes_counts_reads_weights_writes() {
        let input = TensorShape::new(1, 64, 8, 8);
        let op = make_op(
            OpKind::Conv2d(Conv2dParams::plain(32, (1, 1), (1, 1), (0, 0))),
            &[input],
        );
        let expect_reads = input.size_bytes(DType::F32) as u64;
        let expect_weights = (32 * 64 + 32) as u64 * 4;
        let expect_writes = op.output_shape.size_bytes(DType::F32) as u64;
        assert_eq!(
            op.memory_bytes(&[input], DType::F32),
            expect_reads + expect_weights + expect_writes
        );
    }

    #[test]
    fn zero_parameter_conv_is_rejected() {
        let p = Conv2dParams::plain(0, (3, 3), (1, 1), (1, 1));
        assert!(p.validate().is_err());
        let p = Conv2dParams {
            stride: (0, 1),
            ..Conv2dParams::plain(8, (3, 3), (1, 1), (1, 1))
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn groups_must_divide_channels() {
        let input = TensorShape::new(1, 30, 8, 8);
        let mut p = Conv2dParams::plain(30, (3, 3), (1, 1), (1, 1));
        p.groups = 4;
        assert!(Op::infer_output_shape("g", &OpKind::Conv2d(p), &[input]).is_err());
    }

    #[test]
    fn type_names_and_compute_units() {
        assert_eq!(OpKind::Concat.type_name(), "Concat");
        assert!(OpKind::Conv2d(Conv2dParams::plain(8, (1, 1), (1, 1), (0, 0))).is_compute_unit());
        assert!(!OpKind::Relu.is_compute_unit());
        assert!(!OpKind::Pool(PoolParams::global_avg()).is_compute_unit());
    }
}
