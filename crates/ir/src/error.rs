//! Error type for IR construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating a computation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Two tensors that must agree on a dimension do not.
    ShapeMismatch {
        /// Human readable description of the operation being checked.
        context: String,
        /// The offending shapes rendered as strings.
        details: String,
    },
    /// An operator referenced an input value that does not exist in the graph.
    UnknownValue {
        /// The operator name.
        op: String,
    },
    /// The graph contains a cycle and therefore is not a DAG.
    CyclicGraph {
        /// Name of the graph.
        graph: String,
    },
    /// The graph has more operators than the scheduler state can represent.
    TooManyOperators {
        /// Number of operators in the graph.
        count: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A parameter had an invalid value (e.g. zero-sized kernel).
    InvalidParameter {
        /// Description of the invalid parameter.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ShapeMismatch { context, details } => {
                write!(f, "shape mismatch in {context}: {details}")
            }
            IrError::UnknownValue { op } => {
                write!(f, "operator `{op}` references an unknown input value")
            }
            IrError::CyclicGraph { graph } => {
                write!(f, "graph `{graph}` contains a cycle")
            }
            IrError::TooManyOperators { count, max } => {
                write!(
                    f,
                    "graph has {count} operators, more than the supported maximum of {max}"
                )
            }
            IrError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = IrError::ShapeMismatch {
            context: "concat".to_string(),
            details: "28x28 vs 14x14".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("concat"));
        assert!(s.contains("28x28"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(IrError::CyclicGraph { graph: "g".into() });
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn too_many_operators_message() {
        let e = IrError::TooManyOperators {
            count: 200,
            max: 128,
        };
        assert!(e.to_string().contains("200"));
        assert!(e.to_string().contains("128"));
    }
}
