//! Networks as sequences of blocks.
//!
//! Modern CNNs are built by stacking blocks (Inception blocks, NasNet cells,
//! Fire modules, RandWire stages). Section 4.2 of the paper exploits this:
//! IOS optimizes each block independently and concatenates the per-block
//! schedules, which keeps the dynamic-programming state space tractable
//! (`n` and `d` refer to the largest block, not the whole network).

use crate::graph::Graph;
use crate::tensor::TensorShape;
use serde::{Deserialize, Serialize};

/// A block: one independently scheduled sub-graph of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The block's computation graph. Its external inputs are the outputs of
    /// the previous block (or the network input for the first block).
    pub graph: Graph,
}

impl Block {
    /// Wraps a graph as a block.
    #[must_use]
    pub fn new(graph: Graph) -> Self {
        Block { graph }
    }

    /// Number of operators in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True if the block is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}

/// A CNN expressed as a sequence of blocks executed one after another.
///
/// The outputs of block `i` feed the external inputs of block `i + 1`; the
/// network's overall latency under any schedule is the sum of the per-block
/// latencies, because blocks are sequentially dependent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Name of the network (e.g. `"inception_v3"`).
    pub name: String,
    /// Shape of the network input (batch size included).
    pub input_shape: TensorShape,
    /// The blocks in execution order.
    pub blocks: Vec<Block>,
}

impl Network {
    /// Creates a network from its blocks.
    #[must_use]
    pub fn new(name: impl Into<String>, input_shape: TensorShape, blocks: Vec<Block>) -> Self {
        Network {
            name: name.into(),
            input_shape,
            blocks,
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of operators across all blocks.
    #[must_use]
    pub fn num_operators(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Number of *compute units* (convolutions, separable convolutions and
    /// matrix multiplications) across all blocks — the quantity reported in
    /// Table 2 of the paper.
    #[must_use]
    pub fn num_compute_units(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.graph
                    .ops()
                    .iter()
                    .filter(|op| op.kind.is_compute_unit())
                    .count()
            })
            .sum()
    }

    /// Total floating point operations of one forward pass.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.blocks.iter().map(|b| b.graph.total_flops()).sum()
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn total_parameters(&self) -> usize {
        self.blocks.iter().map(|b| b.graph.total_parameters()).sum()
    }

    /// Average floating point operations per convolution in MFLOPs — the
    /// metric plotted in Figure 1 of the paper.
    #[must_use]
    pub fn avg_mflops_per_conv(&self) -> f64 {
        let mut conv_flops = 0u64;
        let mut conv_count = 0usize;
        for block in &self.blocks {
            for op in block.graph.ops() {
                if op.kind.is_compute_unit() {
                    conv_flops += block.graph.op_flops(op.id);
                    conv_count += 1;
                }
            }
        }
        if conv_count == 0 {
            0.0
        } else {
            conv_flops as f64 / conv_count as f64 / 1e6
        }
    }

    /// The index and operator count of the largest block (used by Table 1).
    #[must_use]
    pub fn largest_block(&self) -> Option<(usize, usize)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.len()))
            .max_by_key(|&(_, len)| len)
    }

    /// Returns a copy of the network with every block's tensors re-shaped for
    /// a different batch size.
    ///
    /// Blocks are rebuilt by re-running shape inference, so the operator
    /// structure (ids, names, dependencies) is preserved exactly.
    #[must_use]
    pub fn with_batch_size(&self, batch: usize) -> Network {
        let blocks = self
            .blocks
            .iter()
            .map(|b| Block::new(rebuild_with_batch(&b.graph, batch)))
            .collect();
        Network {
            name: self.name.clone(),
            input_shape: self.input_shape.with_batch(batch),
            blocks,
        }
    }

    /// Validates every block.
    ///
    /// # Errors
    ///
    /// Returns the first block validation error.
    pub fn validate(&self) -> Result<(), crate::IrError> {
        for block in &self.blocks {
            block.graph.validate()?;
        }
        Ok(())
    }
}

/// Rebuilds a graph with its external input batch dimension changed,
/// re-running shape inference for every operator.
fn rebuild_with_batch(graph: &Graph, batch: usize) -> Graph {
    use crate::graph::GraphBuilder;
    let inputs: Vec<TensorShape> = graph
        .input_shapes()
        .iter()
        .map(|s| s.with_batch(batch))
        .collect();
    let mut builder = GraphBuilder::with_inputs(graph.name(), inputs);
    for op in graph.ops() {
        let produced = builder.add(op.name.clone(), op.kind.clone(), &op.inputs);
        debug_assert_eq!(produced.as_op(), Some(op.id));
    }
    builder.build(graph.outputs().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::op::Conv2dParams;

    fn simple_block(name: &str, input: TensorShape, branches: usize) -> Block {
        let mut b = GraphBuilder::new(name, input);
        let x = b.input(0);
        let mut outs = Vec::new();
        for i in 0..branches {
            let v = b.conv2d(
                format!("{name}_conv{i}"),
                x,
                Conv2dParams::relu(32, (3, 3), (1, 1), (1, 1)),
            );
            outs.push(v);
        }
        let cat = b.concat(format!("{name}_cat"), &outs);
        Block::new(b.build(vec![cat]))
    }

    fn two_block_network() -> Network {
        let input = TensorShape::new(1, 64, 28, 28);
        let b1 = simple_block("b1", input, 3);
        let b1_out = b1.graph.output_shapes()[0];
        let b2 = simple_block("b2", b1_out, 2);
        Network::new("tiny_net", input, vec![b1, b2])
    }

    #[test]
    fn operator_and_block_counts() {
        let net = two_block_network();
        assert_eq!(net.num_blocks(), 2);
        assert_eq!(net.num_operators(), 4 + 3);
        assert_eq!(net.num_compute_units(), 5);
        assert_eq!(net.largest_block(), Some((0, 4)));
    }

    #[test]
    fn flops_and_params_positive() {
        let net = two_block_network();
        assert!(net.total_flops() > 0);
        assert!(net.total_parameters() > 0);
        assert!(net.avg_mflops_per_conv() > 0.0);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn with_batch_size_rescales_every_block() {
        let net = two_block_network();
        let net32 = net.with_batch_size(32);
        assert_eq!(net32.input_shape.batch, 32);
        for block in &net32.blocks {
            for shape in block.graph.input_shapes() {
                assert_eq!(shape.batch, 32);
            }
            for op in block.graph.ops() {
                assert_eq!(op.output_shape.batch, 32);
            }
        }
        // FLOPs scale linearly with batch size.
        assert_eq!(net32.total_flops(), 32 * net.total_flops());
        // Structure is preserved.
        assert_eq!(net32.num_operators(), net.num_operators());
        assert_eq!(
            net32.blocks[0].graph.op(crate::OpId(0)).name,
            net.blocks[0].graph.op(crate::OpId(0)).name
        );
    }

    #[test]
    fn empty_network_statistics() {
        let net = Network::new("empty", TensorShape::new(1, 3, 4, 4), vec![]);
        assert_eq!(net.num_operators(), 0);
        assert_eq!(net.largest_block(), None);
        assert_eq!(net.avg_mflops_per_conv(), 0.0);
    }
}
