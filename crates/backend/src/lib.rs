//! # ios-backend — CPU execution engine and numerical reference
//!
//! The paper's execution engine runs on cuDNN, so the numerical correctness
//! of its schedule transformations (operator merge + split, concurrent group
//! execution) comes for free. This crate provides the equivalent assurance
//! for the reproduction — plus a CPU hot path fast enough to serve real
//! traffic through `ios-serve`:
//!
//! * [`ops_cpu`] — every IR operator, with the naive 7-deep convolution
//!   loop kept as the oracle ([`ops_cpu::conv2d_naive`]) and an im2col +
//!   register-blocked GEMM engine ([`gemm`]) as the default path,
//!   **bit-identical** to the oracle because it preserves the reference's
//!   `(ic, ky, kx)` accumulation order per output element;
//! * [`gemm::PackedFilter`] — conv filters pre-packed into the
//!   microkernel's tile-major layout at weight-precompute time; the packed
//!   kernel streams the weights contiguously with the patch-matrix block
//!   cache-hot, still bit-identical (packing is a pure permutation);
//! * [`simd`] — the runtime SIMD dispatch shared by every microkernel:
//!   the f32 register tiles and the int8 `pmaddwd` tiles both select
//!   their widest usable ISA (explicit AVX2 kernels, SSE2/scalar floors)
//!   through one cached table, overridable via `IOS_FORCE_ISA` for
//!   deterministic fallback testing — every ISA computes bit-identical
//!   outputs;
//! * [`arena`] — a scratch-buffer pool so steady-state execution performs
//!   zero heap allocation, from the op loop out to the stacked batch
//!   outputs at the serving boundary;
//! * [`executor`] — runs a plain graph or an IOS [`ios_core::Schedule`]
//!   (stage by stage, groups on worker threads), precomputing weights once
//!   per call and serving operator-merge stages from the per-stage
//!   merged-weight cache ([`BlockWeights::merged_stage`]);
//! * [`batch`] — network-level execution, weight precomputation (packed
//!   filters included), batch stacking/splitting, and
//!   [`execute_network_batched`] which fans a stacked batch out across
//!   worker threads, one deterministic sample per task;
//! * [`profile`] — the backend as an on-device stage profiler:
//!   [`CpuStageProfiler`] executes candidate schedule stages through the
//!   production `execute_stage` path so `ios_core::ProfiledCostModel` can
//!   optimize against latencies measured on this very substrate — under a
//!   configurable background load ([`BackgroundLoad`]) so serving-time
//!   schedules are optimized for a busy machine, not an idle one;
//! * [`pipeline`] — cross-block pipelined execution:
//!   [`PipelinedNetworkExecutor`] streams batch instances through
//!   long-lived per-segment stage workers so block `k` of sample `i + 1`
//!   overlaps block `k + 1` of sample `i` (and batch `n + 1` overlaps the
//!   drain of batch `n`), bit-identical per sample to the flat paths.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod batch;
pub mod executor;
pub mod gemm;
pub mod ops_cpu;
pub mod pipeline;
pub mod profile;
pub mod simd;
pub mod tensor_data;

pub use arena::{Arena, ScratchPool, ScratchScope};
pub use batch::{
    execute_network, execute_network_batched, execute_network_batched_capped,
    execute_network_scheduled, execute_network_with_weights, split_batch, stack_batch,
    stack_batch_pooled, BlockWeights, MergedWeights, NetworkWeights, OpWeights, WeightFootprint,
    WeightPrecision,
};
pub use executor::{
    execute_graph, execute_graph_pooled, execute_graph_uncached, execute_graph_with,
    execute_schedule, execute_schedule_pooled, execute_schedule_pooled_serial,
    execute_schedule_with, max_abs_difference, relu_fold_plan, verify_schedule, FoldedRelu,
};
pub use gemm::{
    quantization_scale, quantize_value, requantize, sample_scale, ConvEpilogue, Epilogue,
    PackedFilter, QuantizedFilter,
};
pub use pipeline::{execute_network_pipelined, PipelinedNetworkExecutor};
pub use profile::{BackgroundLoad, CpuStageProfiler, GroupMode};
pub use simd::Isa;
pub use tensor_data::TensorData;
