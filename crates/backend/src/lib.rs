//! # ios-backend — CPU numerical reference executor
//!
//! The paper's execution engine runs on cuDNN, so the numerical correctness
//! of its schedule transformations (operator merge + split, concurrent group
//! execution) comes for free. This crate provides the equivalent assurance
//! for the reproduction: small, obviously-correct CPU implementations of
//! every operator, an executor that can run either a plain graph or an IOS
//! [`ios_core::Schedule`] (stage by stage, groups on worker threads), and
//! helpers asserting that both produce the same tensors.
//!
//! Performance is a non-goal; correctness and clarity are.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod executor;
pub mod ops_cpu;
pub mod tensor_data;

pub use batch::{
    execute_network, execute_network_scheduled, execute_network_with_weights, split_batch,
    stack_batch, BlockWeights, NetworkWeights, OpWeights,
};
pub use executor::{
    execute_graph, execute_graph_with, execute_schedule, execute_schedule_with, max_abs_difference,
    verify_schedule,
};
pub use tensor_data::TensorData;
