//! Dense FP32 tensors in NCHW layout.

use ios_ir::TensorShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense FP32 tensor with NCHW layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorData {
    /// Shape of the tensor.
    pub shape: TensorShape,
    /// Row-major (N, C, H, W) data.
    pub data: Vec<f32>,
}

impl TensorData {
    /// A tensor filled with zeros.
    #[must_use]
    pub fn zeros(shape: TensorShape) -> Self {
        TensorData {
            shape,
            data: vec![0.0; shape.num_elements()],
        }
    }

    /// A tensor filled with deterministic pseudo-random values in [-1, 1).
    #[must_use]
    pub fn random(shape: TensorShape, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.num_elements())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        TensorData { shape, data }
    }

    /// Linear index of `(n, c, h, w)`.
    #[must_use]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.shape.channels + c) * self.shape.height + h) * self.shape.width + w
    }

    /// Value at `(n, c, h, w)`.
    #[must_use]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(n, c, h, w)]
    }

    /// Mutable value at `(n, c, h, w)`.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let idx = self.index(n, c, h, w);
        self.data[idx] = value;
    }

    /// Largest absolute element.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut t = TensorData::zeros(TensorShape::new(2, 3, 4, 5));
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.at(1, 2, 3, 4), 7.5);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
        assert_eq!(t.data.len(), 120);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let shape = TensorShape::new(1, 2, 3, 3);
        let a = TensorData::random(shape, 7);
        let b = TensorData::random(shape, 7);
        let c = TensorData::random(shape, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.max_abs() <= 1.0);
    }
}
