//! Graph and schedule execution on the CPU reference backend.
//!
//! [`execute_graph`] runs a graph sequentially in topological order;
//! [`execute_schedule`] runs an IOS schedule stage by stage, executing the
//! groups of a concurrent stage on separate worker threads and executing
//! merged stages through an actual merged weight tensor plus a split — so a
//! passing [`verify_schedule`] demonstrates that the schedule transformation
//! preserves the network's semantics, the guarantee cuDNN gives the paper's
//! engine for free.
//!
//! Both entry points precompute each weighted operator's parameters once
//! per call ([`BlockWeights::precompute`]) instead of regenerating them per
//! operator execution; [`execute_graph_uncached`] keeps the regenerating
//! path for tests that pin down the equivalence. The `*_pooled` variants
//! draw all scratch and output storage from a caller-owned
//! [`ScratchPool`]; the others use the process-global pool.

use crate::arena::{global_pool, Arena, ScratchPool, ScratchScope};
use crate::batch::BlockWeights;
use crate::ops_cpu::{
    conv2d_packed_pooled, conv2d_pooled, conv_weights, execute_op_pooled,
    execute_op_with_weights_pooled,
};
use crate::tensor_data::TensorData;
use ios_core::{try_merge, ParallelizationStrategy, Schedule};
use ios_ir::{Activation, Conv2dParams, Graph, Op, OpId, OpKind, Value};
use std::borrow::Cow;

/// How the executor treats one operator under the standalone-ReLU peephole
/// ([`relu_fold_plan`]): a standalone [`OpKind::Relu`] whose input is a
/// convolution with no other consumer is folded into that convolution's
/// epilogue — the activation applies while the output tile is register-hot
/// — and the ReLU op itself degenerates to a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldedRelu {
    /// Execute the operator as written.
    None,
    /// A convolution that absorbs the standalone ReLU consuming it:
    /// executed with [`Activation::Relu`] fused into its epilogue.
    FuseRelu,
    /// The standalone ReLU whose work moved into the named convolution:
    /// its input already carries the activation, so it copies.
    CopyOf(OpId),
}

/// Plans the standalone-ReLU peephole for `graph`: one entry per operator.
/// An [`OpKind::Relu`] folds into the convolution producing its input when
/// that convolution has no other consumer and is not itself a graph output
/// (folding changes the producer's stored tensor, which must stay
/// observable otherwise). The fold is bit-identical: the fused epilogue
/// applies the same `max(0,·)` the standalone pass would, and re-applying
/// ReLU to an already-rectified tensor is the identity.
#[must_use]
pub fn relu_fold_plan(graph: &Graph) -> Vec<FoldedRelu> {
    let mut plan = vec![FoldedRelu::None; graph.len()];
    let mut consumers = vec![0usize; graph.len()];
    for op in graph.ops() {
        for v in &op.inputs {
            if let Value::Op(id) = v {
                consumers[id.index()] += 1;
            }
        }
    }
    let mut is_output = vec![false; graph.len()];
    for v in graph.outputs() {
        if let Value::Op(id) = v {
            is_output[id.index()] = true;
        }
    }
    for op in graph.ops() {
        if op.kind != OpKind::Relu {
            continue;
        }
        let src = match op.inputs.as_slice() {
            [Value::Op(src)] => *src,
            _ => continue,
        };
        if consumers[src.index()] != 1 || is_output[src.index()] {
            continue;
        }
        if !matches!(graph.op(src).kind, OpKind::Conv2d(_)) {
            continue;
        }
        plan[src.index()] = FoldedRelu::FuseRelu;
        plan[op.id.index()] = FoldedRelu::CopyOf(src);
    }
    plan
}

/// The fold plan to execute under: the one cached in the precomputed
/// weights when available, recomputed from the graph otherwise. Both paths
/// produce the identical plan ([`relu_fold_plan`] is deterministic), so
/// cached and uncached execution stay bit-identical.
fn fold_plan_for<'a>(graph: &Graph, weights: Option<&'a BlockWeights>) -> Cow<'a, [FoldedRelu]> {
    match weights.and_then(BlockWeights::fold_plan) {
        Some(plan) => Cow::Borrowed(plan),
        None => Cow::Owned(relu_fold_plan(graph)),
    }
}

/// Per-operator weight seed: stable across execution strategies.
pub(crate) fn weight_seed(graph: &Graph, op: OpId) -> u64 {
    // Combine the graph name hash and the operator index so different blocks
    // get different weights but the same block always gets the same ones.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in graph.name().bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h ^ (op.index() as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

fn resolve<'a>(
    value: Value,
    inputs: &'a [TensorData],
    outputs: &'a [Option<TensorData>],
) -> &'a TensorData {
    match value {
        Value::Input(i) => &inputs[i],
        Value::Op(id) => outputs[id.index()]
            .as_ref()
            .expect("producer already executed"),
    }
}

/// Executes one operator, taking its weights from `weights` when
/// precomputed and regenerating them from the deterministic seed otherwise.
/// Both paths produce bit-identical tensors.
fn run_op(
    graph: &Graph,
    op: &Op,
    op_inputs: &[&TensorData],
    weights: Option<&BlockWeights>,
    fold: FoldedRelu,
    arena: &impl Arena,
) -> TensorData {
    let fused;
    let op = match fold {
        FoldedRelu::CopyOf(_) => {
            // The producing convolution already applied this ReLU in its
            // epilogue; the input is rectified, so the op is a copy.
            let mut out = arena.take_tensor(op.output_shape);
            out.data.copy_from_slice(&op_inputs[0].data);
            return out;
        }
        FoldedRelu::FuseRelu => {
            let OpKind::Conv2d(params) = &op.kind else {
                unreachable!("FuseRelu is only planned for convolutions")
            };
            // Weights depend only on channel/kernel geometry, so the
            // precomputed entry for the original op still applies.
            fused = Op {
                kind: OpKind::Conv2d(Conv2dParams {
                    activation: Activation::Relu,
                    ..*params
                }),
                ..op.clone()
            };
            &fused
        }
        FoldedRelu::None => op,
    };
    match weights.and_then(|w| w.get(op.id)) {
        Some(w) => execute_op_with_weights_pooled(op, op_inputs, w, arena),
        None => execute_op_pooled(op, op_inputs, weight_seed(graph, op.id), arena),
    }
}

/// Executes the graph sequentially and returns every operator's output.
/// Weights are precomputed once for the call; results are bit-identical to
/// [`execute_graph_uncached`].
///
/// # Panics
///
/// Panics if `inputs` does not match the graph's declared input shapes.
#[must_use]
pub fn execute_graph(graph: &Graph, inputs: &[TensorData]) -> Vec<TensorData> {
    let weights = BlockWeights::precompute(graph);
    execute_graph_with(graph, inputs, Some(&weights))
}

/// [`execute_graph`] regenerating every operator's weights on the fly —
/// the original reference path, kept to pin down that weight precomputation
/// changes nothing.
///
/// # Panics
///
/// Panics if `inputs` does not match the graph's declared input shapes.
#[must_use]
pub fn execute_graph_uncached(graph: &Graph, inputs: &[TensorData]) -> Vec<TensorData> {
    execute_graph_with(graph, inputs, None)
}

/// [`execute_graph`] with optionally precomputed weights
/// ([`BlockWeights`]); results are bit-identical either way.
///
/// # Panics
///
/// Panics if `inputs` does not match the graph's declared input shapes.
#[must_use]
pub fn execute_graph_with(
    graph: &Graph,
    inputs: &[TensorData],
    weights: Option<&BlockWeights>,
) -> Vec<TensorData> {
    execute_graph_pooled(graph, inputs, weights, global_pool())
}

/// [`execute_graph_with`] drawing scratch and output storage from `arena`.
/// The returned tensors are owned by the caller; recycle them back into
/// `arena` to keep steady-state execution allocation-free.
///
/// # Panics
///
/// Panics if `inputs` does not match the graph's declared input shapes.
#[must_use]
pub fn execute_graph_pooled(
    graph: &Graph,
    inputs: &[TensorData],
    weights: Option<&BlockWeights>,
    arena: &ScratchPool,
) -> Vec<TensorData> {
    check_inputs(graph, inputs);
    let plan = fold_plan_for(graph, weights);
    let mut outputs: Vec<Option<TensorData>> = vec![None; graph.len()];
    for id in graph.topological_order() {
        let op = graph.op(id);
        let op_inputs: Vec<&TensorData> = op
            .inputs
            .iter()
            .map(|v| resolve(*v, inputs, &outputs))
            .collect();
        let out = run_op(graph, op, &op_inputs, weights, plan[id.index()], arena);
        assert_eq!(
            out.shape, op.output_shape,
            "shape inference mismatch for {}",
            op.name
        );
        outputs[id.index()] = Some(out);
    }
    outputs
        .into_iter()
        .map(|o| o.expect("all ops executed"))
        .collect()
}

/// Executes an IOS schedule stage by stage and returns every operator's
/// output. Concurrent-execution stages run their groups on scoped worker
/// threads; operator-merge stages run one merged convolution built from the
/// stacked (and zero-padded) per-operator weights, followed by a split.
/// Weights are precomputed once for the call.
///
/// # Panics
///
/// Panics if the schedule is not valid for `graph` or the inputs mismatch.
#[must_use]
pub fn execute_schedule(
    graph: &Graph,
    schedule: &Schedule,
    inputs: &[TensorData],
) -> Vec<TensorData> {
    let weights = BlockWeights::precompute(graph);
    execute_schedule_with(graph, schedule, inputs, Some(&weights))
}

/// [`execute_schedule`] with optionally precomputed weights
/// ([`BlockWeights`]); results are bit-identical either way.
///
/// # Panics
///
/// Panics if the schedule is not valid for `graph` or the inputs mismatch.
#[must_use]
pub fn execute_schedule_with(
    graph: &Graph,
    schedule: &Schedule,
    inputs: &[TensorData],
    weights: Option<&BlockWeights>,
) -> Vec<TensorData> {
    execute_schedule_pooled(graph, schedule, inputs, weights, global_pool())
}

/// [`execute_schedule_with`] drawing scratch and output storage from
/// `arena`. Group worker threads share the pool; the returned tensors are
/// owned by the caller.
///
/// # Panics
///
/// Panics if the schedule is not valid for `graph` or the inputs mismatch.
#[must_use]
pub fn execute_schedule_pooled(
    graph: &Graph,
    schedule: &Schedule,
    inputs: &[TensorData],
    weights: Option<&BlockWeights>,
    arena: &ScratchPool,
) -> Vec<TensorData> {
    execute_schedule_impl(graph, schedule, inputs, weights, arena, true)
}

/// [`execute_schedule_pooled`] with concurrent-stage groups run serially on
/// the calling thread. Group outputs do not depend on each other, so the
/// result is bit-identical to the threaded path; the batched executor uses
/// this inside its per-sample workers, where the cores are already busy and
/// nested spawning would only oversubscribe them.
///
/// # Panics
///
/// Panics if the schedule is not valid for `graph` or the inputs mismatch.
#[must_use]
pub fn execute_schedule_pooled_serial(
    graph: &Graph,
    schedule: &Schedule,
    inputs: &[TensorData],
    weights: Option<&BlockWeights>,
    arena: &ScratchPool,
) -> Vec<TensorData> {
    execute_schedule_impl(graph, schedule, inputs, weights, arena, false)
}

fn execute_schedule_impl(
    graph: &Graph,
    schedule: &Schedule,
    inputs: &[TensorData],
    weights: Option<&BlockWeights>,
    arena: &ScratchPool,
    parallel_groups: bool,
) -> Vec<TensorData> {
    check_inputs(graph, inputs);
    schedule
        .validate(graph)
        .expect("schedule must be valid for the graph");
    let mut outputs: Vec<Option<TensorData>> = vec![None; graph.len()];
    for stage in &schedule.stages {
        execute_stage(
            graph,
            stage,
            inputs,
            weights,
            &mut outputs,
            arena,
            parallel_groups,
        );
    }
    outputs
        .into_iter()
        .map(|o| o.expect("all ops executed"))
        .collect()
}

/// The completed operator outputs of one stage group, drop-drained: if the
/// stage unwinds — this group's worker panicked mid-op, or a *sibling*
/// group's did and the collected results are dropped at the join — every
/// tensor still held here is recycled back into the pool instead of
/// leaking to the heap. Together with [`ScratchScope`]'s own drop-drain
/// this keeps the pool's steady-state accounting exact across panics: a
/// serving runtime that catches a batch panic keeps executing with its
/// pool intact.
struct GroupOutputs<'a> {
    arena: &'a ScratchPool,
    ops: Vec<(OpId, TensorData)>,
}

impl Drop for GroupOutputs<'_> {
    fn drop(&mut self) {
        for (_, tensor) in self.ops.drain(..) {
            self.arena.recycle_tensor(tensor);
        }
    }
}

/// Executes one schedule stage against a partial per-operator output state:
/// stage operators read graph `inputs` and already-filled `outputs` slots
/// and write their own slots. This is the single definition both the
/// threaded and the serial schedule paths run (the group execution and
/// output stitching used to risk drifting apart), and the unit the
/// stage-profiling harness ([`crate::profile::CpuStageProfiler`]) times —
/// so the scheduler optimizes against exactly the code that serves.
///
/// Concurrent-execution groups run on scoped worker threads when
/// `parallel_groups` (serially otherwise — bit-identical, since groups are
/// mutually independent); every group routes its scratch through a
/// [`ScratchScope`], an uncontended local free list that drains back into
/// `arena` when the group finishes, so both paths recycle intermediates
/// identically without taking the shared pool mutex per buffer. Both the
/// scope and the group's completed outputs drain back on **panic** too
/// ([`GroupOutputs`]), so a panicking stage worker cannot leak pooled
/// buffers.
pub(crate) fn execute_stage(
    graph: &Graph,
    stage: &ios_core::Stage,
    inputs: &[TensorData],
    weights: Option<&BlockWeights>,
    outputs: &mut [Option<TensorData>],
    arena: &ScratchPool,
    parallel_groups: bool,
) {
    let mut stage_span = ios_telemetry::tracer().span(
        match stage.strategy {
            ParallelizationStrategy::ConcurrentExecution => "stage.concurrent",
            ParallelizationStrategy::OperatorMerge => "stage.merge",
        },
        "exec",
    );
    stage_span.set_id(stage.groups.len() as u64);
    stage_span.set_arg(u64::from(parallel_groups));
    let plan = fold_plan_for(graph, weights);
    let plan: &[FoldedRelu] = &plan;
    match stage.strategy {
        ParallelizationStrategy::ConcurrentExecution => {
            // Each group runs independently (on its own thread when
            // `parallel_groups`); groups only read outputs of earlier
            // stages or earlier ops of their own group, so a snapshot of
            // `outputs` is sufficient input state and the serial order
            // of groups cannot change any result.
            let snapshot: &[Option<TensorData>] = outputs;
            let run_group = |group: &Vec<OpId>| {
                let scope = ScratchScope::new(arena);
                let mut local = GroupOutputs {
                    arena,
                    ops: Vec::new(),
                };
                for &op_id in group {
                    let op = graph.op(op_id);
                    let op_inputs: Vec<&TensorData> = op
                        .inputs
                        .iter()
                        .map(|v| match v {
                            Value::Input(i) => &inputs[*i],
                            Value::Op(id) => {
                                if let Some(t) = snapshot[id.index()].as_ref() {
                                    t
                                } else {
                                    local
                                        .ops
                                        .iter()
                                        .find(|(lid, _)| lid == id)
                                        .map(|(_, t)| t)
                                        .expect("intra-group dependency")
                                }
                            }
                        })
                        .collect();
                    let out = run_op(graph, op, &op_inputs, weights, plan[op_id.index()], &scope);
                    local.ops.push((op_id, out));
                }
                // `scope` drops here: its retained scratch drains back into
                // the shared arena before the group's results are stitched.
                local
            };
            let group_results: Vec<GroupOutputs<'_>> = if parallel_groups && stage.groups.len() > 1
            {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = stage
                        .groups
                        .iter()
                        .map(|group| scope.spawn(|| run_group(group)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("group thread"))
                        .collect()
                })
            } else {
                stage.groups.iter().map(run_group).collect()
            };
            for mut group in group_results {
                for (op_id, tensor) in group.ops.drain(..) {
                    outputs[op_id.index()] = Some(tensor);
                }
            }
        }
        ParallelizationStrategy::OperatorMerge => {
            let merged = try_merge(graph, stage.ops)
                .expect("merged stage must satisfy the merge eligibility rule");
            let merged_out = match weights {
                // The merged tensor is built once per distinct stage and
                // cached (pre-packed) inside the BlockWeights; repeat
                // batches execute it directly.
                Some(w) => {
                    let stage_weights = w.merged_stage(graph, &merged);
                    let input = resolve(merged.input, inputs, outputs);
                    conv2d_packed_pooled(input, &merged.params, &stage_weights.packed, arena)
                }
                // The regenerating path stacks the per-part weights on
                // the fly (same stacking as the cached path, via
                // `stack_merged_filter`).
                None => {
                    let in_c = merged.input_shape.channels;
                    let (mkh, mkw) = merged.params.kernel;
                    let mut merged_weights =
                        arena.take_zeroed(merged.params.out_channels * in_c * mkh * mkw);
                    crate::batch::stack_merged_filter(
                        graph,
                        &merged,
                        &mut merged_weights,
                        |part, p| {
                            std::borrow::Cow::Owned(conv_weights(
                                weight_seed(graph, part),
                                p.out_channels,
                                in_c,
                                p.kernel,
                            ))
                        },
                    );
                    let input = resolve(merged.input, inputs, outputs);
                    let out = conv2d_pooled(input, &merged.params, &merged_weights, arena);
                    arena.recycle(merged_weights);
                    out
                }
            };
            // Split the merged output back into the per-part outputs:
            // each part's channels are one contiguous block per sample.
            let plane = merged_out.shape.height * merged_out.shape.width;
            let merged_item = merged.params.out_channels * plane;
            let mut oc_offset = 0usize;
            for (&part, &section) in merged.parts.iter().zip(&merged.split_sections) {
                let op = graph.op(part);
                let mut part_out = arena.take_tensor(op.output_shape);
                let section_len = section * plane;
                for n in 0..part_out.shape.batch {
                    let src = n * merged_item + oc_offset * plane;
                    part_out.data[n * section_len..(n + 1) * section_len]
                        .copy_from_slice(&merged_out.data[src..src + section_len]);
                }
                // A part that absorbed a standalone ReLU still owes that
                // activation when the merged kernel did not apply one.
                if plan[part.index()] == FoldedRelu::FuseRelu
                    && merged.params.activation != Activation::Relu
                {
                    for v in &mut part_out.data {
                        *v = v.max(0.0);
                    }
                }
                outputs[part.index()] = Some(part_out);
                oc_offset += section;
            }
            arena.recycle_tensor(merged_out);
        }
    }
}

/// Largest absolute element-wise difference between two executions.
#[must_use]
pub fn max_abs_difference(a: &[TensorData], b: &[TensorData]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "executions cover different operator counts"
    );
    let mut max = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.shape, y.shape);
        for (u, v) in x.data.iter().zip(&y.data) {
            max = max.max((u - v).abs());
        }
    }
    max
}

/// Executes the graph both sequentially and under `schedule` with the same
/// random inputs and returns the largest absolute difference across all
/// operator outputs. A value within floating point tolerance (≤ 1e-3 for the
/// padded-kernel merges) demonstrates the schedule preserves semantics.
#[must_use]
pub fn verify_schedule(graph: &Graph, schedule: &Schedule, seed: u64) -> f32 {
    let inputs: Vec<TensorData> = graph
        .input_shapes()
        .iter()
        .enumerate()
        .map(|(i, s)| TensorData::random(*s, seed.wrapping_add(i as u64)))
        .collect();
    let reference = execute_graph(graph, &inputs);
    let scheduled = execute_schedule(graph, schedule, &inputs);
    max_abs_difference(&reference, &scheduled)
}

fn check_inputs(graph: &Graph, inputs: &[TensorData]) {
    assert_eq!(
        graph.input_shapes().len(),
        inputs.len(),
        "wrong number of graph inputs"
    );
    for (shape, tensor) in graph.input_shapes().iter().zip(inputs) {
        assert_eq!(*shape, tensor.shape, "graph input shape mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_core::{greedy_schedule, schedule_graph, SchedulerConfig, SimCostModel};
    use ios_ir::Conv2dParams;
    use ios_ir::{GraphBuilder, TensorShape};
    use ios_sim::{DeviceKind, Simulator};

    /// A small multi-branch block with mergeable convolutions.
    fn branchy() -> Graph {
        let mut b = GraphBuilder::new("verify_block", TensorShape::new(1, 8, 10, 10));
        let x = b.input(0);
        let a = b.conv2d(
            "a",
            x,
            ios_ir::Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)),
        );
        let c = b.conv2d("c", x, Conv2dParams::relu(12, (1, 1), (1, 1), (0, 0)));
        let d = b.conv2d("d", a, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let p = b.pool("p", x, ios_ir::PoolParams::max((3, 3), (2, 2), (0, 0)));
        let pc = b.conv2d("pc", p, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[c, d]);
        b.build(vec![cat, pc])
    }

    #[test]
    fn sequential_execution_produces_expected_shapes() {
        let g = branchy();
        let inputs = vec![TensorData::random(TensorShape::new(1, 8, 10, 10), 1)];
        let outs = execute_graph(&g, &inputs);
        assert_eq!(outs.len(), g.len());
        for (op, out) in g.ops().iter().zip(&outs) {
            assert_eq!(op.output_shape, out.shape);
        }
    }

    #[test]
    fn cached_weights_match_the_uncached_reference_bitwise() {
        let g = branchy();
        let inputs = vec![TensorData::random(TensorShape::new(1, 8, 10, 10), 21)];
        let cached = execute_graph(&g, &inputs);
        let uncached = execute_graph_uncached(&g, &inputs);
        assert_eq!(cached, uncached);
    }

    #[test]
    fn greedy_schedule_execution_matches_sequential() {
        let g = branchy();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let schedule = greedy_schedule(&g, &cost);
        let diff = verify_schedule(&g, &schedule, 3);
        assert!(diff < 1e-5, "difference = {diff}");
    }

    #[test]
    fn ios_schedule_execution_matches_sequential_including_merge() {
        let g = branchy();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let result = schedule_graph(&g, &cost, &SchedulerConfig::paper_default());
        let diff = verify_schedule(&g, &result.schedule, 7);
        assert!(diff < 1e-3, "difference = {diff}");
    }

    #[test]
    fn forced_merge_stage_matches_sequential() {
        // A hand-built schedule that merges the two shared-input convs
        // (a 3×3 and c 1×1 — the padding path) to pin down merge semantics.
        let g = branchy();
        let schedule = forced_merge_schedule(&g);
        let diff = verify_schedule(&g, &schedule, 11);
        assert!(diff < 1e-3, "difference = {diff}");
    }

    /// The hand-built schedule of `forced_merge_stage_matches_sequential`,
    /// reused by the merged-weight cache test.
    fn forced_merge_schedule(g: &Graph) -> Schedule {
        let merged_ops: ios_ir::OpSet = [OpId(0), OpId(1)].into_iter().collect();
        assert!(try_merge(g, merged_ops).is_some());
        Schedule::new(
            g.name(),
            vec![
                ios_core::Stage {
                    ops: merged_ops,
                    strategy: ParallelizationStrategy::OperatorMerge,
                    groups: vec![vec![OpId(0), OpId(1)]],
                    measured_latency_us: 1.0,
                },
                ios_core::Stage {
                    ops: [OpId(2), OpId(3)].into_iter().collect(),
                    strategy: ParallelizationStrategy::ConcurrentExecution,
                    groups: vec![vec![OpId(2)], vec![OpId(3)]],
                    measured_latency_us: 1.0,
                },
                ios_core::Stage {
                    ops: [OpId(4), OpId(5)].into_iter().collect(),
                    strategy: ParallelizationStrategy::ConcurrentExecution,
                    groups: vec![vec![OpId(4)], vec![OpId(5)]],
                    measured_latency_us: 1.0,
                },
            ],
        )
    }

    #[test]
    fn merged_stage_weights_are_built_once_and_cached() {
        let g = branchy();
        let schedule = forced_merge_schedule(&g);
        let weights = BlockWeights::precompute(&g);
        let inputs = vec![TensorData::random(TensorShape::new(1, 8, 10, 10), 55)];

        let first = execute_schedule_with(&g, &schedule, &inputs, Some(&weights));
        assert_eq!(weights.merged_builds(), 1, "first batch builds the stage");
        assert_eq!(weights.merged_hits(), 0);
        let second = execute_schedule_with(&g, &schedule, &inputs, Some(&weights));
        assert_eq!(
            weights.merged_builds(),
            1,
            "repeat batches must not rebuild the merged tensor"
        );
        assert_eq!(weights.merged_hits(), 1);
        assert_eq!(first, second);

        // The cached (packed) merged path must match the regenerating path
        // bit for bit.
        let regenerated = execute_schedule_with(&g, &schedule, &inputs, None);
        assert_eq!(first, regenerated);
    }

    #[test]
    fn pooled_execution_is_bit_identical_and_reuses_buffers() {
        let g = branchy();
        let inputs = vec![TensorData::random(TensorShape::new(1, 8, 10, 10), 33)];
        let weights = BlockWeights::precompute(&g);
        let reference = execute_graph_with(&g, &inputs, Some(&weights));

        let arena = ScratchPool::new();
        let first = execute_graph_pooled(&g, &inputs, Some(&weights), &arena);
        assert_eq!(first, reference);
        for t in first {
            arena.recycle_tensor(t);
        }
        let after_warmup = arena.fresh_allocations();
        let second = execute_graph_pooled(&g, &inputs, Some(&weights), &arena);
        assert_eq!(second, reference);
        assert_eq!(
            arena.fresh_allocations(),
            after_warmup,
            "a warmed-up pool must serve the whole op loop without fresh allocations"
        );
    }

    #[test]
    fn standalone_relu_after_conv_folds_bit_identically() {
        // conv (no activation) → standalone relu → conv: the relu must fold
        // into the first conv's epilogue and degrade to a copy.
        let shape = TensorShape::new(1, 4, 8, 8);
        let mut b = GraphBuilder::new("fold", shape);
        let x = b.input(0);
        let c = b.conv2d("c", x, Conv2dParams::plain(6, (3, 3), (1, 1), (1, 1)));
        let r = b.relu("r", c);
        let d = b.conv2d("d", r, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let g = b.build(vec![d]);
        let plan = relu_fold_plan(&g);
        assert_eq!(plan[0], FoldedRelu::FuseRelu);
        assert_eq!(plan[1], FoldedRelu::CopyOf(OpId(0)));
        assert_eq!(plan[2], FoldedRelu::None);

        // Reference: the unfused convolution followed by a separate
        // whole-tensor max(0,·) pass.
        let inputs = vec![TensorData::random(shape, 77)];
        let ios_ir::OpKind::Conv2d(p) = &g.op(OpId(0)).kind else {
            unreachable!()
        };
        let filter = conv_weights(weight_seed(&g, OpId(0)), p.out_channels, 4, p.kernel);
        let mut rectified = conv2d_pooled(&inputs[0], p, &filter, global_pool());
        for v in &mut rectified.data {
            *v = v.max(0.0);
        }

        let folded = execute_graph(&g, &inputs);
        assert_eq!(
            folded[0], rectified,
            "fused conv output must carry the ReLU"
        );
        assert_eq!(folded[1], rectified, "the folded ReLU op is a copy");
        let uncached = execute_graph_uncached(&g, &inputs);
        assert_eq!(folded, uncached, "cached and uncached paths fold alike");
    }

    #[test]
    fn relu_fold_skips_convs_with_other_consumers_or_output_exposure() {
        let shape = TensorShape::new(1, 4, 6, 6);
        // The conv output is itself a graph output: folding would change it.
        let mut b = GraphBuilder::new("nofold_output", shape);
        let x = b.input(0);
        let c = b.conv2d("c", x, Conv2dParams::plain(4, (3, 3), (1, 1), (1, 1)));
        let r = b.relu("r", c);
        let g = b.build(vec![r, c]);
        assert!(relu_fold_plan(&g).iter().all(|f| *f == FoldedRelu::None));

        // The conv has a second consumer that needs the pre-ReLU tensor.
        let mut b = GraphBuilder::new("nofold_twouse", shape);
        let x = b.input(0);
        let c = b.conv2d("c", x, Conv2dParams::plain(4, (3, 3), (1, 1), (1, 1)));
        let r = b.relu("r", c);
        let a = b.add_op("a", &[r, c]);
        let g = b.build(vec![a]);
        assert!(relu_fold_plan(&g).iter().all(|f| *f == FoldedRelu::None));
    }

    #[test]
    fn folded_relu_survives_a_merged_stage() {
        // Two plain convs share the input and merge; one of them absorbed a
        // standalone ReLU, which the split must re-apply since the merged
        // kernel ran without an activation.
        let shape = TensorShape::new(1, 4, 8, 8);
        let mut b = GraphBuilder::new("fold_merge", shape);
        let x = b.input(0);
        let c0 = b.conv2d("c0", x, Conv2dParams::plain(6, (3, 3), (1, 1), (1, 1)));
        let c1 = b.conv2d("c1", x, Conv2dParams::plain(4, (1, 1), (1, 1), (0, 0)));
        let r = b.relu("r", c0);
        let g = b.build(vec![r, c1]);
        assert_eq!(relu_fold_plan(&g)[0], FoldedRelu::FuseRelu);

        let merged_ops: ios_ir::OpSet = [OpId(0), OpId(1)].into_iter().collect();
        assert!(try_merge(&g, merged_ops).is_some());
        let schedule = Schedule::new(
            g.name(),
            vec![
                ios_core::Stage {
                    ops: merged_ops,
                    strategy: ParallelizationStrategy::OperatorMerge,
                    groups: vec![vec![OpId(0), OpId(1)]],
                    measured_latency_us: 1.0,
                },
                ios_core::Stage {
                    ops: [OpId(2)].into_iter().collect(),
                    strategy: ParallelizationStrategy::ConcurrentExecution,
                    groups: vec![vec![OpId(2)]],
                    measured_latency_us: 1.0,
                },
            ],
        );
        let diff = verify_schedule(&g, &schedule, 13);
        assert!(diff < 1e-3, "difference = {diff}");
    }

    #[test]
    #[should_panic(expected = "wrong number of graph inputs")]
    fn input_count_mismatch_panics() {
        let g = branchy();
        let _ = execute_graph(&g, &[]);
    }

    #[test]
    fn panicking_stage_worker_drains_everything_back_to_the_pool() {
        // A malformed stage puts `d` (OpId 2) and its dependency `a`
        // (OpId 0) in *different* groups of one stage: group [0] completes
        // its convolution (taking pool buffers), then group [2] panics
        // resolving its input. Both the completed group's outputs
        // (GroupOutputs guard) and every scope's scratch must drain back,
        // so repeat panicking runs allocate nothing fresh — the pool a
        // serving engine keeps across a caught batch panic stays exact.
        let g = branchy();
        let weights = BlockWeights::precompute(&g);
        let arena = ScratchPool::new();
        let inputs = vec![TensorData::random(TensorShape::new(1, 8, 10, 10), 9)];
        let bad = ios_core::Stage {
            ops: [OpId(0), OpId(2)].into_iter().collect(),
            strategy: ParallelizationStrategy::ConcurrentExecution,
            groups: vec![vec![OpId(0)], vec![OpId(2)]],
            measured_latency_us: 0.0,
        };
        let run = |parallel: bool| {
            let mut outputs: Vec<Option<TensorData>> = vec![None; g.len()];
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute_stage(
                    &g,
                    &bad,
                    &inputs,
                    Some(&weights),
                    &mut outputs,
                    &arena,
                    parallel,
                );
            }));
            assert!(result.is_err(), "the dependency-violating stage must panic");
            assert!(
                outputs.iter().all(Option::is_none),
                "no partial results may be stitched"
            );
        };
        run(false);
        let fresh = arena.fresh_allocations();
        assert!(fresh > 0, "the first run allocates its working set");
        for _ in 0..3 {
            run(false);
        }
        assert_eq!(
            arena.fresh_allocations(),
            fresh,
            "repeat panicking serial runs must reuse the pool, not leak it"
        );
        // The threaded path drains identically (same buffer demand).
        for _ in 0..3 {
            run(true);
        }
        assert_eq!(
            arena.fresh_allocations(),
            fresh,
            "repeat panicking threaded runs must reuse the pool, not leak it"
        );
    }
}
