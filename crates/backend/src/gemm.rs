//! im2col + register-blocked GEMM convolution, bit-identical to the naive
//! reference loop.
//!
//! The naive `conv2d` computes every output element as a single scalar
//! accumulation over `(ic, ky, kx)` in that fixed order. This module keeps
//! that exact accumulation order — the k dimension of the GEMM is
//! `(ic, ky, kx)` flattened, walked strictly sequentially — and blocks only
//! over the *independent* output dimensions (output channels × output
//! pixels), so every output element receives precisely the same sequence of
//! `mul` + `add` operations as the reference. Padding positions contribute
//! explicit zero patch values; adding `±0.0 * w` terms never changes a
//! finite IEEE-754 sum, so results compare equal (`==`) element for
//! element. No FMA contraction is used on either path.
//!
//! Layout:
//!
//! * patch matrix `B`: `K × M` where `K = in_c/groups · kh · kw` and
//!   `M = oh · ow`; row `k` holds the input values the k-th kernel element
//!   sees at every output pixel (zero where padding is hit);
//! * weight matrix `A`: the existing `[out_c][in_c/g][kh][kw]` filter —
//!   each output channel's row is already `K` contiguous values;
//! * `C = A · B` is the `out_c/g × M` output of one group, written directly
//!   into the NCHW output tensor.
//!
//! Pointwise convolutions (1×1, stride 1, no padding) skip im2col entirely:
//! the input channel planes already *are* the patch matrix.
//!
//! Two weight representations feed the same semantics: the natural layout
//! above ([`conv2d_im2col`]) and the pre-packed tile-major panels of
//! [`PackedFilter`] ([`conv2d_im2col_packed`]), which the serving runtime
//! packs once at weight-precompute time. The packed kernel walks the
//! output column blocks in the outer loop and **fuses im2col into the
//! block walk**: instead of materializing the full `K × M` patch matrix
//! per call, it builds each `K × NR` column block in cache right before
//! all packed panels stream over it ([`im2col_block`]), so the patch data
//! of a large layer never round-trips through memory at all. Because the
//! block holds exactly the values the full matrix would, packing is a pure
//! permutation, and every accumulator still sums over strictly ascending
//! `k`, both paths are bit-identical to each other and to the naive
//! reference.
//!
//! **Epilogues are fused into the tile writeback.** An [`Epilogue`]
//! descriptor (bias / residual-add / ReLU, composable) is threaded through
//! every kernel down to the `MR × NR` tile store, so activations and adds
//! apply while the output tile is register-hot instead of as separate
//! whole-tensor passes afterwards. The fused epilogue computes the exact
//! per-element expression of the separate passes — `(acc + bias) +
//! residual`, then `max(0, ·)` — so the f32 path stays bit-identical to
//! the pass-after reference (`max(0, ·)` per element commutes with the
//! store order).
//!
//! **Runtime SIMD dispatch.** Both f32 kernels carry explicit AVX2
//! variants of their full register tiles (and of the fused epilogue
//! store), selected per call through the shared [`crate::simd`] dispatch
//! module; SSE2-and-below hosts keep the auto-vectorized form. The AVX2
//! tiles use only `vmulps` + `vaddps` — never FMA — and accumulate each
//! output element over the identical strictly ascending `k` sequence, so
//! the selected ISA is invisible in the output bits: every path stays
//! bit-identical to the naive oracle.
//!
//! **Int8 quantized path.** [`QuantizedFilter`] holds per-output-channel
//! symmetric-scale int8 weights in a pair-interleaved panel layout (4× the
//! lanes of f32 in the same tile footprint); inputs are quantized
//! per-sample during the fused im2col block build, the microkernel
//! accumulates in `i32` via `pmaddwd`-shaped multiply-adds
//! (runtime-dispatched AVX2 / SSE2 / scalar — all computing the same
//! integer sums), and requantization happens in the epilogue. Integer
//! accumulation is order-exact, so the quantized path is **byte-identical**
//! across thread counts, pipeline segmentations, ISA paths and the naive
//! int8 oracle ([`crate::ops_cpu::conv2d_naive_quant`]).

use crate::arena::Arena;
use crate::simd::{self, Isa};
use crate::tensor_data::TensorData;
use ios_ir::{Conv2dParams, TensorShape};

/// Output-channel rows per register tile.
const MR: usize = 4;
/// Output-pixel columns per register tile (two 8-lane vectors on AVX2).
const NR: usize = 16;
/// Output-channel rows per register tile of the *packed* kernel: the
/// tile-major layout feeds the microkernel one contiguous `PACK_MR`-wide
/// slab per k step. 4 × 16 accumulators + 2 patch vectors + 1 broadcast
/// fit the 16 AVX2 registers; wider tiles (6 or 8 rows) measured slower
/// here because the accumulator array spills.
const PACK_MR: usize = 4;
/// Output-pixel columns per register tile of the packed kernel.
const PACK_NR: usize = 16;

/// A convolution filter pre-packed into the GEMM microkernel's tile-major
/// layout.
///
/// The natural filter layout `[out_c][in_c/g][kh][kw]` makes the kernel
/// read `PACK_MR` strided rows in parallel. Packing reorders each group's
/// weight matrix into panels of `PACK_MR` output channels, `k`-major inside
/// the panel (`data[panel][k][row]`), so the inner loop streams `A` as one
/// contiguous sequence. Packing is a pure permutation (edge panels are
/// zero-padded rows that are never read back into the output), so the
/// packed path consumes exactly the same weight values in exactly the same
/// order per output element — bit-identical to the unpacked kernel.
///
/// Pack once at weight-precompute time ([`crate::batch::BlockWeights`]);
/// every later execution streams the packed filter directly.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFilter {
    data: Vec<f32>,
    out_channels: usize,
    groups: usize,
    k_len: usize,
    /// Elements per panel: `k_len * PACK_MR`.
    panel_stride: usize,
    /// Elements per group: `ceil(rows_per_group / PACK_MR) * panel_stride`.
    group_stride: usize,
}

impl PackedFilter {
    /// Packs a filter in the natural `[out_c][in_c/g][kh][kw]` layout
    /// (`k_len = in_c/g · kh · kw` contiguous values per output channel,
    /// groups concatenated along the output-channel axis).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != out_channels * k_len` or `out_channels`
    /// is not divisible by `groups`.
    #[must_use]
    pub fn pack(weights: &[f32], out_channels: usize, groups: usize, k_len: usize) -> Self {
        assert_eq!(
            weights.len(),
            out_channels * k_len,
            "filter length must be out_channels * k_len"
        );
        assert_eq!(
            out_channels % groups,
            0,
            "output channels must divide evenly into groups"
        );
        let rows_per_group = out_channels / groups;
        let panels_per_group = rows_per_group.div_ceil(PACK_MR);
        let panel_stride = k_len * PACK_MR;
        let group_stride = panels_per_group * panel_stride;
        let mut data = vec![0.0f32; groups * group_stride];
        for g in 0..groups {
            for p in 0..panels_per_group {
                let rows = PACK_MR.min(rows_per_group - p * PACK_MR);
                let panel = &mut data[g * group_stride + p * panel_stride..][..panel_stride];
                for r in 0..rows {
                    let oc = g * rows_per_group + p * PACK_MR + r;
                    let row = &weights[oc * k_len..(oc + 1) * k_len];
                    for (k, &w) in row.iter().enumerate() {
                        panel[k * PACK_MR + r] = w;
                    }
                }
            }
        }
        PackedFilter {
            data,
            out_channels,
            groups,
            k_len,
            panel_stride,
            group_stride,
        }
    }

    /// Whether this filter was packed for the given geometry.
    #[must_use]
    pub fn matches(&self, out_channels: usize, groups: usize, k_len: usize) -> bool {
        self.out_channels == out_channels && self.groups == groups && self.k_len == k_len
    }

    /// The packed panels of group `g`.
    #[must_use]
    fn group(&self, g: usize) -> &[f32] {
        &self.data[g * self.group_stride..(g + 1) * self.group_stride]
    }

    /// Total packed elements held (including edge-panel zero padding).
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Number of logical weight parameters packed (`out_channels · k_len`,
    /// excluding edge-panel padding) — the natural filter's length.
    #[must_use]
    pub fn num_weights(&self) -> usize {
        self.out_channels * self.k_len
    }
}

/// A fused GEMM epilogue: what happens to each finished accumulator
/// element between the register tile and the store into `C`.
///
/// The operations apply in a fixed order — `(acc + bias) + residual`,
/// then `max(0, ·)` if `relu` — exactly the order the former separate
/// whole-tensor passes used, so fusing them into the tile writeback is
/// bit-identical to running them afterwards. An absent term is *skipped
/// entirely*, never added as `0.0` (`-0.0 + 0.0 == +0.0` would flip the
/// sign bit of negative zeros and break bitwise identity).
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// Per-output-row constant: `bias[i]` is added to every element of
    /// output row `i`.
    pub bias: Option<&'a [f32]>,
    /// Elementwise addend with the same `m_rows × m` layout as `C`.
    pub residual: Option<&'a [f32]>,
    /// Apply `max(0, ·)` after the adds.
    pub relu: bool,
}

impl Epilogue<'_> {
    /// The identity epilogue: store the accumulator unchanged.
    pub const NONE: Epilogue<'static> = Epilogue {
        bias: None,
        residual: None,
        relu: false,
    };
}

/// Writes one finished accumulator lane (`lane.len()` elements of output
/// row `row`, columns `[j0, j0 + lane.len())`, row stride `m`) through the
/// epilogue into `c`. This is the single store every f32 kernel — and the
/// requantized int8 kernel — goes through, so all paths apply the
/// identical per-element expression.
#[inline]
fn store_lane(ep: &Epilogue<'_>, row: usize, j0: usize, m: usize, lane: &[f32], c: &mut [f32]) {
    let start = row * m + j0;
    let dst = &mut c[start..start + lane.len()];
    match (ep.bias, ep.residual) {
        (None, None) => {
            if ep.relu {
                for (d, &v) in dst.iter_mut().zip(lane) {
                    *d = v.max(0.0);
                }
            } else {
                dst.copy_from_slice(lane);
            }
        }
        (Some(bias), None) => {
            let bv = bias[row];
            if ep.relu {
                for (d, &v) in dst.iter_mut().zip(lane) {
                    *d = (v + bv).max(0.0);
                }
            } else {
                for (d, &v) in dst.iter_mut().zip(lane) {
                    *d = v + bv;
                }
            }
        }
        (None, Some(res)) => {
            let r = &res[start..start + lane.len()];
            if ep.relu {
                for ((d, &v), &rv) in dst.iter_mut().zip(lane).zip(r) {
                    *d = (v + rv).max(0.0);
                }
            } else {
                for ((d, &v), &rv) in dst.iter_mut().zip(lane).zip(r) {
                    *d = v + rv;
                }
            }
        }
        (Some(bias), Some(res)) => {
            let bv = bias[row];
            let r = &res[start..start + lane.len()];
            if ep.relu {
                for ((d, &v), &rv) in dst.iter_mut().zip(lane).zip(r) {
                    *d = (v + bv + rv).max(0.0);
                }
            } else {
                for ((d, &v), &rv) in dst.iter_mut().zip(lane).zip(r) {
                    *d = v + bv + rv;
                }
            }
        }
    }
}

/// The convolution-level view of a fused epilogue, plus an optional ReLU
/// applied to the *input* while the patch matrix is loaded (fusing the
/// separable-conv pre-activation copy into im2col).
///
/// `relu` composes with `params.activation`: the output ReLU runs if
/// either asks for it (idempotent, so composing is exact).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvEpilogue<'a> {
    /// Apply `max(0, ·)` to input values as the patch matrix is built.
    pub input_relu: bool,
    /// Per-output-channel bias (`params.out_channels` values).
    pub bias: Option<&'a [f32]>,
    /// Elementwise addend with the output tensor's exact shape.
    pub residual: Option<&'a TensorData>,
    /// Apply `max(0, ·)` to the output after the adds.
    pub relu: bool,
}

impl ConvEpilogue<'_> {
    /// Whether this epilogue is the identity (no fused work).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        !self.input_relu && self.bias.is_none() && self.residual.is_none() && !self.relu
    }
}

/// im2col + blocked-GEMM convolution. Bit-identical to
/// [`crate::ops_cpu::conv2d_naive`]; scratch comes from `pool` and is
/// recycled before returning, the output tensor is taken from `pool` and
/// owned by the caller.
#[must_use]
pub fn conv2d_im2col(
    input: &TensorData,
    params: &Conv2dParams,
    weights: &[f32],
    pool: &impl Arena,
) -> TensorData {
    conv2d_gemm(
        input,
        params,
        Filter::Unpacked(weights),
        &ConvEpilogue::default(),
        pool,
    )
}

/// [`conv2d_im2col`] with a fused epilogue: input-ReLU during im2col,
/// bias / residual-add / ReLU in the tile writeback. Bit-identical to
/// running the same operations as separate passes after the convolution.
///
/// # Panics
///
/// Panics if a provided residual's shape differs from the output shape or
/// a provided bias is shorter than `params.out_channels`.
#[must_use]
pub fn conv2d_im2col_fused(
    input: &TensorData,
    params: &Conv2dParams,
    weights: &[f32],
    ep: &ConvEpilogue<'_>,
    pool: &impl Arena,
) -> TensorData {
    conv2d_gemm(input, params, Filter::Unpacked(weights), ep, pool)
}

/// [`conv2d_im2col`] reading the filter from its pre-packed tile-major
/// layout — the serving fast path. Bit-identical to the unpacked kernel
/// (and therefore to [`crate::ops_cpu::conv2d_naive`]).
///
/// # Panics
///
/// Panics if `packed` was not packed for this convolution's geometry.
#[must_use]
pub fn conv2d_im2col_packed(
    input: &TensorData,
    params: &Conv2dParams,
    packed: &PackedFilter,
    pool: &impl Arena,
) -> TensorData {
    conv2d_im2col_packed_fused(input, params, packed, &ConvEpilogue::default(), pool)
}

/// [`conv2d_im2col_packed`] with a fused epilogue — the serving fast
/// path. Bit-identical to the unpacked fused kernel (and to the separate
/// passes it replaces).
///
/// # Panics
///
/// Panics if `packed` was not packed for this convolution's geometry, or
/// a provided residual/bias does not match the output geometry.
#[must_use]
pub fn conv2d_im2col_packed_fused(
    input: &TensorData,
    params: &Conv2dParams,
    packed: &PackedFilter,
    ep: &ConvEpilogue<'_>,
    pool: &impl Arena,
) -> TensorData {
    let k_len = (input.shape.channels / params.groups) * params.kernel.0 * params.kernel.1;
    assert!(
        packed.matches(params.out_channels, params.groups, k_len),
        "packed filter geometry (out_c {}, groups {}, k {}) does not match the convolution \
         (out_c {}, groups {}, k {})",
        packed.out_channels,
        packed.groups,
        packed.k_len,
        params.out_channels,
        params.groups,
        k_len
    );
    conv2d_gemm(input, params, Filter::Packed(packed), ep, pool)
}

/// The weight operand of the GEMM: natural layout or pre-packed panels.
enum Filter<'a> {
    Unpacked(&'a [f32]),
    Packed(&'a PackedFilter),
}

fn conv2d_gemm(
    input: &TensorData,
    params: &Conv2dParams,
    filter: Filter<'_>,
    ep: &ConvEpilogue<'_>,
    pool: &impl Arena,
) -> TensorData {
    let in_shape = input.shape;
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, params.out_channels, oh, ow);
    let mut out = pool.take_tensor(out_shape);
    if let Some(res) = ep.residual {
        assert_eq!(
            res.shape, out_shape,
            "fused residual shape must match the convolution output"
        );
    }
    if let Some(bias) = ep.bias {
        assert!(
            bias.len() >= params.out_channels,
            "fused bias must cover every output channel"
        );
    }

    let groups = params.groups;
    let in_c_per_group = in_shape.channels / groups;
    let out_c_per_group = params.out_channels / groups;
    let (kh, kw) = params.kernel;
    let k_len = in_c_per_group * kh * kw;
    let m_cols = oh * ow;
    let in_plane = in_shape.height * in_shape.width;
    let relu = params.activation == ios_ir::Activation::Relu || ep.relu;
    let isa = simd::active_isa();

    // A pointwise convolution's patch matrix is the input itself — unless
    // a fused input-ReLU must transform the values, which forces the
    // patch-build path (it applies the ReLU while loading). The unpacked
    // kernel materializes the full `K × M` patch matrix per group; the
    // packed kernel is column-block-outer, so it builds each `K × NR`
    // column block on demand instead (fused im2col) and never holds more
    // than one cache-resident block of B.
    let pointwise =
        kh == 1 && kw == 1 && params.stride == (1, 1) && params.padding == (0, 0) && !ep.input_relu;
    let mut patches = if pointwise {
        Vec::new()
    } else {
        match filter {
            Filter::Unpacked(_) => pool.take(k_len * m_cols),
            Filter::Packed(_) => pool.take(k_len * PACK_NR),
        }
    };

    for n in 0..in_shape.batch {
        for g in 0..groups {
            let c0 = g * in_c_per_group;
            let oc0 = g * out_c_per_group;
            let c_start = (n * params.out_channels + oc0) * m_cols;
            let gep = Epilogue {
                bias: ep.bias.map(|b| &b[oc0..oc0 + out_c_per_group]),
                residual: ep
                    .residual
                    .map(|r| &r.data[c_start..c_start + out_c_per_group * m_cols]),
                relu,
            };
            let c = &mut out.data[c_start..c_start + out_c_per_group * m_cols];
            match filter {
                Filter::Unpacked(weights) => {
                    let b: &[f32] = if pointwise {
                        let start = (n * in_shape.channels + c0) * in_plane;
                        &input.data[start..start + k_len * m_cols]
                    } else {
                        im2col_group(
                            input,
                            n,
                            c0,
                            in_c_per_group,
                            params,
                            oh,
                            ow,
                            &mut patches,
                            ep.input_relu,
                        );
                        &patches
                    };
                    let a = &weights[oc0 * k_len..(oc0 + out_c_per_group) * k_len];
                    gemm_bit_exact(out_c_per_group, m_cols, k_len, a, b, &gep, c);
                }
                Filter::Packed(packed) if pointwise => {
                    let start = (n * in_shape.channels + c0) * in_plane;
                    let b = &input.data[start..start + k_len * m_cols];
                    gemm_bit_exact_packed(
                        out_c_per_group,
                        m_cols,
                        k_len,
                        packed.group(g),
                        b,
                        &gep,
                        c,
                    );
                }
                Filter::Packed(packed) => {
                    // Fused per-block im2col: build the `K × nr` patch
                    // column block in cache, then stream every packed panel
                    // over it while it is hot. Same patch values, same
                    // ascending-k accumulation per output element — bit-
                    // identical to the full-matrix path.
                    let mut j0 = 0;
                    while j0 < m_cols {
                        let nr = PACK_NR.min(m_cols - j0);
                        let block = &mut patches[..k_len * nr];
                        im2col_block(
                            input,
                            n,
                            c0,
                            in_c_per_group,
                            params,
                            ow,
                            j0,
                            nr,
                            block,
                            ep.input_relu,
                        );
                        packed_panels_over_block(
                            packed.group(g),
                            out_c_per_group,
                            m_cols,
                            k_len,
                            block,
                            nr,
                            j0,
                            nr,
                            &gep,
                            isa,
                            c,
                        );
                        j0 += PACK_NR;
                    }
                }
            }
        }
    }
    if !pointwise {
        pool.recycle(patches);
    }
    out
}

/// Copies `seg.len()` input values starting at `in_row[src]` with stride
/// `sw` into `seg`, optionally applying `max(0, ·)` per value — the one
/// place im2col touches input data, so a fused input-ReLU transforms
/// exactly the values a separate activation pass would have.
#[inline]
fn fill_seg(seg: &mut [f32], in_row: &[f32], src: usize, sw: usize, input_relu: bool) {
    match (input_relu, sw) {
        (false, 1) => seg.copy_from_slice(&in_row[src..src + seg.len()]),
        (false, _) => {
            let mut ix = src;
            for s in seg {
                *s = in_row[ix];
                ix += sw;
            }
        }
        (true, 1) => {
            let row = &in_row[src..src + seg.len()];
            for (s, &v) in seg.iter_mut().zip(row) {
                *s = v.max(0.0);
            }
        }
        (true, _) => {
            let mut ix = src;
            for s in seg {
                *s = in_row[ix].max(0.0);
                ix += sw;
            }
        }
    }
}

/// Fills `patches` (a `K × M` matrix, `K = in_c_per_group·kh·kw`,
/// `M = oh·ow`) with the im2col expansion of sample `n`, channels
/// `[c0, c0 + in_c_per_group)`. Out-of-bounds (padding) positions become
/// exact `0.0`; every element of `patches` is written. `input_relu`
/// applies `max(0, ·)` to every loaded value.
#[allow(clippy::too_many_arguments)]
fn im2col_group(
    input: &TensorData,
    n: usize,
    c0: usize,
    in_c_per_group: usize,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
    patches: &mut [f32],
    input_relu: bool,
) {
    let shape = input.shape;
    let (h, w) = (shape.height, shape.width);
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let (ph, pw) = params.padding;
    let m_cols = oh * ow;

    let mut k = 0usize;
    for ic in 0..in_c_per_group {
        let plane_start = (n * shape.channels + c0 + ic) * h * w;
        let plane = &input.data[plane_start..plane_start + h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &mut patches[k * m_cols..(k + 1) * m_cols];
                // Valid output-x range: 0 <= x·sw + kx − pw < w.
                let (x_lo, x_hi) = valid_range(ow, sw, kx, pw, w);
                for y in 0..oh {
                    let iy = (y * sh + ky) as isize - ph as isize;
                    let seg = &mut row[y * ow..(y + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                        continue;
                    }
                    let in_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    seg[..x_lo].fill(0.0);
                    if x_hi > x_lo {
                        let src = ((x_lo * sw + kx) as isize - pw as isize) as usize;
                        fill_seg(&mut seg[x_lo..x_hi], in_row, src, sw, input_relu);
                    }
                    seg[x_hi..].fill(0.0);
                }
                k += 1;
            }
        }
    }
}

/// Fills `patches` (a `K × nr` block, `K = in_c_per_group·kh·kw`, row
/// stride `nr`) with the im2col expansion of output columns
/// `[j0, j0 + nr)` of sample `n`, channels `[c0, c0 + in_c_per_group)` —
/// the fused-im2col building block of the packed kernel. Produces exactly
/// the values the full-matrix [`im2col_group`] would put in those columns
/// (padding positions become exact `0.0`); every element of `patches` is
/// written. `input_relu` applies `max(0, ·)` to every loaded value.
#[allow(clippy::too_many_arguments)]
fn im2col_block(
    input: &TensorData,
    n: usize,
    c0: usize,
    in_c_per_group: usize,
    params: &Conv2dParams,
    ow: usize,
    j0: usize,
    nr: usize,
    patches: &mut [f32],
    input_relu: bool,
) {
    let shape = input.shape;
    let (h, w) = (shape.height, shape.width);
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let (ph, pw) = params.padding;

    let mut k = 0usize;
    for ic in 0..in_c_per_group {
        let plane_start = (n * shape.channels + c0 + ic) * h * w;
        let plane = &input.data[plane_start..plane_start + h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &mut patches[k * nr..(k + 1) * nr];
                // Valid output-x range: 0 <= x·sw + kx − pw < w.
                let (x_lo, x_hi) = valid_range(ow, sw, kx, pw, w);
                // The block's columns may span several output rows y; walk
                // them segment by segment (each segment one y).
                let (mut j, mut at) = (j0, 0usize);
                while at < nr {
                    let (y, x0) = (j / ow, j % ow);
                    let seg_len = (ow - x0).min(nr - at);
                    let seg = &mut row[at..at + seg_len];
                    let iy = (y * sh + ky) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                    } else {
                        let in_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        // Clamp the globally valid x range to this segment.
                        let lo = x_lo.clamp(x0, x0 + seg_len);
                        let hi = x_hi.clamp(lo, x0 + seg_len);
                        let (a, b) = (lo - x0, hi - x0);
                        seg[..a].fill(0.0);
                        if b > a {
                            let src = ((lo * sw + kx) as isize - pw as isize) as usize;
                            fill_seg(&mut seg[a..b], in_row, src, sw, input_relu);
                        }
                        seg[b..].fill(0.0);
                    }
                    j += seg_len;
                    at += seg_len;
                }
                k += 1;
            }
        }
    }
}

/// The half-open range of output positions `x` for which
/// `0 <= x·stride + k − pad < limit`, clamped to `[0, out)`.
fn valid_range(out: usize, stride: usize, k: usize, pad: usize, limit: usize) -> (usize, usize) {
    let lo = if pad > k {
        (pad - k).div_ceil(stride).min(out)
    } else {
        0
    };
    // Largest x with x·stride + k − pad <= limit − 1.
    let hi = if limit + pad > k {
        (((limit + pad - k - 1) / stride) + 1).min(out)
    } else {
        0
    };
    (lo, hi.max(lo))
}

/// `C[i·m + j] = Σ_k A[i·k_len + k] · B[k·m + j]` pushed through the
/// fused epilogue `ep`, with `k` strictly ascending for every `(i, j)` —
/// the bit-exactness invariant. Register blocking covers `MR × NR` output
/// tiles; each accumulator's operation sequence is identical to a scalar
/// loop, and the epilogue applies per element in the tile writeback.
pub fn gemm_bit_exact(
    m_rows: usize,
    m: usize,
    k_len: usize,
    a: &[f32],
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
) {
    let isa = simd::active_isa();
    let mut i0 = 0;
    while i0 < m_rows {
        let mr = MR.min(m_rows - i0);
        let mut j0 = 0;
        while j0 < m {
            let nr = NR.min(m - j0);
            if mr == MR && nr == NR {
                tile_full(i0, j0, m, k_len, a, b, ep, c, isa);
            } else {
                tile_edge(i0, j0, mr, nr, m, k_len, a, b, ep, c);
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Full `MR × NR` register tile: the explicit AVX2 kernel when the
/// dispatch selected it, else the auto-vectorized form whose fixed trip
/// counts let the compiler keep the accumulators in vector registers.
/// Both run the identical per-element mul+add sequence.
#[allow(clippy::too_many_arguments)]
#[inline]
fn tile_full(
    i0: usize,
    j0: usize,
    m: usize,
    k_len: usize,
    a: &[f32],
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
    isa: Isa,
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: the dispatch module only selects Avx2 after runtime
        // feature detection (or a forced override validated against it).
        unsafe { tile_full_avx2(i0, j0, m, k_len, a, b, ep, c) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    let mut acc = [[0.0f32; NR]; MR];
    let mut a_rows = [&a[0..0]; MR];
    for (i, row) in a_rows.iter_mut().enumerate() {
        *row = &a[(i0 + i) * k_len..(i0 + i + 1) * k_len];
    }
    let b_off = &b[j0..];
    for kk in 0..k_len {
        let brow = &b_off[kk * m..kk * m + NR];
        for i in 0..MR {
            let aik = a_rows[i][kk];
            let lane = &mut acc[i];
            for j in 0..NR {
                lane[j] += aik * brow[j];
            }
        }
    }
    for (i, lane) in acc.iter().enumerate() {
        store_lane(ep, i0 + i, j0, m, lane, c);
    }
}

/// Explicit AVX2 form of the full `MR × NR` tile: the 4 × 16 f32
/// accumulators live in 8 ymm registers (two per row), each k step loads
/// the `NR`-row of `B` as two vectors and broadcasts one `A` value per
/// row. Only `vmulps` + `vaddps` are issued — no FMA — so lane `j` of row
/// `i` receives exactly the scalar sequence `acc += a[i][k] · b[k][j]`
/// over strictly ascending `k`: bit-identical to the auto-vectorized
/// tile.
///
/// # Safety
///
/// AVX2 must be available (guaranteed by the dispatch module). Slice
/// bounds are the same as [`tile_full`]'s and are debug-asserted.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn tile_full_avx2(
    i0: usize,
    j0: usize,
    m: usize,
    k_len: usize,
    a: &[f32],
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert!(a.len() >= (i0 + MR) * k_len);
    debug_assert!(k_len == 0 || b.len() >= (k_len - 1) * m + j0 + NR);
    // SAFETY: all pointer arithmetic stays inside the slices per the
    // bounds above; loads are explicitly unaligned.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let ap = a.as_ptr().add(i0 * k_len);
        let bp = b.as_ptr().add(j0);
        for kk in 0..k_len {
            let brow = bp.add(kk * m);
            let b0 = _mm256_loadu_ps(brow);
            let b1 = _mm256_loadu_ps(brow.add(8));
            for (i, accr) in acc.iter_mut().enumerate() {
                let aik = _mm256_set1_ps(*ap.add(i * k_len + kk));
                accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(aik, b0));
                accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(aik, b1));
            }
        }
        for (i, accr) in acc.iter().enumerate() {
            store_lane_avx2(ep, i0 + i, j0, m, *accr, c);
        }
    }
}

/// Vectorized [`store_lane`] for one full 16-wide accumulator row held as
/// two ymm vectors: bias broadcast-add, residual add and `max(0, ·)`
/// apply lane-wise in the exact per-element order of the scalar store —
/// `(acc + bias) + residual`, then the ReLU clamp. `vmaxps(v, +0.0)`
/// returns `+0.0` for NaN lanes exactly like `f32::max(v, 0.0)`, and a
/// `-0.0` can never reach the clamp (every accumulator chain starts at
/// `+0.0`, and IEEE-754 addition only yields `-0.0` from two `-0.0`
/// operands), so the store is bit-identical to the scalar epilogue.
///
/// # Safety
///
/// AVX2 must be available. Row `row`, columns `[j0, j0 + NR)` must lie
/// inside `c` (and inside the residual, when present) — enforced by the
/// slice indexing below.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn store_lane_avx2(
    ep: &Epilogue<'_>,
    row: usize,
    j0: usize,
    m: usize,
    lane: [std::arch::x86_64::__m256; 2],
    c: &mut [f32],
) {
    use std::arch::x86_64::*;
    let start = row * m + j0;
    let [mut v0, mut v1] = lane;
    // SAFETY: the slice indexing bounds-checks every pointer below.
    unsafe {
        if let Some(bias) = ep.bias {
            let bv = _mm256_set1_ps(bias[row]);
            v0 = _mm256_add_ps(v0, bv);
            v1 = _mm256_add_ps(v1, bv);
        }
        if let Some(res) = ep.residual {
            let r = &res[start..start + NR];
            v0 = _mm256_add_ps(v0, _mm256_loadu_ps(r.as_ptr()));
            v1 = _mm256_add_ps(v1, _mm256_loadu_ps(r.as_ptr().add(8)));
        }
        if ep.relu {
            let zero = _mm256_setzero_ps();
            v0 = _mm256_max_ps(v0, zero);
            v1 = _mm256_max_ps(v1, zero);
        }
        let dst = &mut c[start..start + NR];
        _mm256_storeu_ps(dst.as_mut_ptr(), v0);
        _mm256_storeu_ps(dst.as_mut_ptr().add(8), v1);
    }
}

/// [`gemm_bit_exact`] reading `A` from tile-major packed panels
/// ([`PackedFilter::pack`]): panel `p` holds rows `p·PACK_MR ..` as
/// `panel[k · PACK_MR + row]`, so the k loop walks one contiguous stream.
/// Every output element still accumulates over strictly ascending `k` —
/// bit-identical to the unpacked kernel.
///
/// The loop nest is column-block-outer: for each `NR`-wide block of output
/// pixels, *all* weight panels are streamed over the same `K × NR` slice of
/// the patch matrix. The slice stays cache-hot across panels, so the big
/// patch matrix of a large layer crosses the memory hierarchy once instead
/// of once per panel — the unpacked kernel's dominant cost on
/// GEMM-bound shapes — while the packed `A` is one sequential,
/// hardware-prefetchable stream per block.
pub fn gemm_bit_exact_packed(
    m_rows: usize,
    m: usize,
    k_len: usize,
    a_panels: &[f32],
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
) {
    let isa = simd::active_isa();
    let mut j0 = 0;
    while j0 < m {
        let nr = PACK_NR.min(m - j0);
        packed_panels_over_block(a_panels, m_rows, m, k_len, &b[j0..], m, j0, nr, ep, isa, c);
        j0 += PACK_NR;
    }
}

/// Streams every packed panel over one `nr`-wide column block of `B`.
///
/// `b_block` holds B columns `[j0, j0 + nr)` with row stride `b_stride`: a
/// view into the full `K × M` patch matrix (`b_stride = m`) for the
/// pointwise / full-matrix paths, or a fused cache-resident `K × nr` block
/// (`b_stride = nr`) built by [`im2col_block`]. `c` is the full
/// `m_rows × m` output; columns `[j0, j0 + nr)` are written. Every output
/// element accumulates over strictly ascending `k` with the same values
/// regardless of the B layout — the two layouts are bit-identical.
#[allow(clippy::too_many_arguments)]
fn packed_panels_over_block(
    a_panels: &[f32],
    m_rows: usize,
    m: usize,
    k_len: usize,
    b_block: &[f32],
    b_stride: usize,
    j0: usize,
    nr: usize,
    ep: &Epilogue<'_>,
    isa: Isa,
    c: &mut [f32],
) {
    let panel_stride = k_len * PACK_MR;
    let mut i0 = 0;
    let mut p = 0;
    while i0 < m_rows {
        let mr = PACK_MR.min(m_rows - i0);
        let panel = &a_panels[p * panel_stride..(p + 1) * panel_stride];
        if mr == PACK_MR && nr == PACK_NR {
            packed_tile_full(panel, i0, j0, m, b_stride, k_len, b_block, ep, c, isa);
        } else {
            packed_tile_edge(panel, i0, j0, mr, nr, m, b_stride, k_len, b_block, ep, c);
        }
        i0 += PACK_MR;
        p += 1;
    }
}

/// Full `PACK_MR × PACK_NR` register tile of the packed kernel; per k step it
/// loads one contiguous `PACK_MR`-slab of `A` and one `PACK_NR`-row of `B`
/// (read with row stride `b_stride`, written to `C` with row stride `m`).
/// Dispatches to the explicit AVX2 tile when the dispatch selected it.
#[allow(clippy::too_many_arguments)]
#[inline]
fn packed_tile_full(
    panel: &[f32],
    i0: usize,
    j0: usize,
    m: usize,
    b_stride: usize,
    k_len: usize,
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
    isa: Isa,
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: the dispatch module only selects Avx2 after runtime
        // feature detection (or a forced override validated against it).
        unsafe { packed_tile_full_avx2(panel, i0, j0, m, b_stride, k_len, b, ep, c) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    let mut acc = [[0.0f32; PACK_NR]; PACK_MR];
    for kk in 0..k_len {
        let a_k = &panel[kk * PACK_MR..kk * PACK_MR + PACK_MR];
        let brow = &b[kk * b_stride..kk * b_stride + PACK_NR];
        for i in 0..PACK_MR {
            let aik = a_k[i];
            let lane = &mut acc[i];
            for j in 0..PACK_NR {
                lane[j] += aik * brow[j];
            }
        }
    }
    for (i, lane) in acc.iter().enumerate() {
        store_lane(ep, i0 + i, j0, m, lane, c);
    }
}

/// Explicit AVX2 form of the full packed tile: same 8-ymm accumulator
/// layout as [`tile_full_avx2`], with `A` read as one contiguous
/// `PACK_MR`-slab per k step straight from the packed panel. Mul+add
/// only, strictly ascending `k` per element — bit-identical to the
/// auto-vectorized packed tile.
///
/// # Safety
///
/// AVX2 must be available (guaranteed by the dispatch module). Slice
/// bounds are the same as [`packed_tile_full`]'s and are debug-asserted.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn packed_tile_full_avx2(
    panel: &[f32],
    i0: usize,
    j0: usize,
    m: usize,
    b_stride: usize,
    k_len: usize,
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= k_len * PACK_MR);
    debug_assert!(k_len == 0 || b.len() >= (k_len - 1) * b_stride + PACK_NR);
    // SAFETY: all pointer arithmetic stays inside the slices per the
    // bounds above; loads are explicitly unaligned.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; PACK_MR];
        let pp = panel.as_ptr();
        let bp = b.as_ptr();
        for kk in 0..k_len {
            let a_k = pp.add(kk * PACK_MR);
            let brow = bp.add(kk * b_stride);
            let b0 = _mm256_loadu_ps(brow);
            let b1 = _mm256_loadu_ps(brow.add(8));
            for (i, accr) in acc.iter_mut().enumerate() {
                let aik = _mm256_set1_ps(*a_k.add(i));
                accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(aik, b0));
                accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(aik, b1));
            }
        }
        for (i, accr) in acc.iter().enumerate() {
            store_lane_avx2(ep, i0 + i, j0, m, *accr, c);
        }
    }
}

/// Partial packed tile at the right/bottom edges (`mr <= PACK_MR`,
/// `nr <= PACK_NR`); the zero-padded panel rows beyond `mr` are never read.
#[allow(clippy::too_many_arguments)]
fn packed_tile_edge(
    panel: &[f32],
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    m: usize,
    b_stride: usize,
    k_len: usize,
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
) {
    let mut acc = [[0.0f32; PACK_NR]; PACK_MR];
    for kk in 0..k_len {
        let a_k = &panel[kk * PACK_MR..kk * PACK_MR + PACK_MR];
        let brow = &b[kk * b_stride..kk * b_stride + nr];
        for i in 0..mr {
            let aik = a_k[i];
            let lane = &mut acc[i];
            for (j, bv) in brow.iter().enumerate() {
                lane[j] += aik * bv;
            }
        }
    }
    for (i, lane) in acc.iter().enumerate().take(mr) {
        store_lane(ep, i0 + i, j0, m, &lane[..nr], c);
    }
}

/// Partial tile at the right/bottom edges (`mr <= MR`, `nr <= NR`).
#[allow(clippy::too_many_arguments)]
fn tile_edge(
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    m: usize,
    k_len: usize,
    a: &[f32],
    b: &[f32],
    ep: &Epilogue<'_>,
    c: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    let b_off = &b[j0..];
    for kk in 0..k_len {
        let brow = &b_off[kk * m..kk * m + nr];
        for i in 0..mr {
            let aik = a[(i0 + i) * k_len + kk];
            let lane = &mut acc[i];
            for (j, bv) in brow.iter().enumerate() {
                lane[j] += aik * bv;
            }
        }
    }
    for (i, lane) in acc.iter().enumerate().take(mr) {
        store_lane(ep, i0 + i, j0, m, &lane[..nr], c);
    }
}

// ---------------------------------------------------------------------------
// Int8 quantized path
// ---------------------------------------------------------------------------

/// A convolution filter quantized to int8 with per-output-channel
/// symmetric scales, packed into the pair-interleaved panel layout of the
/// integer microkernel.
///
/// Like [`PackedFilter`], each group's weight rows are split into panels
/// of `PACK_MR` output channels — but the k dimension is walked in
/// *pairs* (zero-padded to even length) and each panel stores
/// `data[pair][row][2]`: the two consecutive-k weights of one row sit
/// adjacent, so a `pmaddwd`-shaped multiply-add consumes one pair per
/// 16-bit lane and the tile holds 4× the lanes of the f32 layout in the
/// same footprint. Quantization is symmetric per output channel:
/// `scale[oc] = maxabs(row) / 127` (`1.0` for an all-zero row), weights
/// stored as `round(w / scale)` clamped to `[-127, 127]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedFilter {
    data: Vec<i8>,
    scales: Vec<f32>,
    out_channels: usize,
    groups: usize,
    k_len: usize,
    /// k pairs per panel: `ceil(k_len / 2)`.
    pairs: usize,
    /// i8 elements per panel: `pairs · PACK_MR · 2`.
    panel_stride: usize,
    /// i8 elements per group.
    group_stride: usize,
}

impl QuantizedFilter {
    /// Quantizes and packs a filter in the natural `[out_c][in_c/g][kh][kw]`
    /// layout (`k_len` contiguous values per output channel, groups
    /// concatenated along the output-channel axis).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != out_channels * k_len` or `out_channels`
    /// is not divisible by `groups`.
    #[must_use]
    pub fn quantize(weights: &[f32], out_channels: usize, groups: usize, k_len: usize) -> Self {
        assert_eq!(
            weights.len(),
            out_channels * k_len,
            "filter length must be out_channels * k_len"
        );
        assert_eq!(
            out_channels % groups,
            0,
            "output channels must divide evenly into groups"
        );
        let rows_per_group = out_channels / groups;
        let panels_per_group = rows_per_group.div_ceil(PACK_MR);
        let pairs = k_len.div_ceil(2);
        let panel_stride = pairs * PACK_MR * 2;
        let group_stride = panels_per_group * panel_stride;
        let mut scales = vec![0.0f32; out_channels];
        for (oc, s) in scales.iter_mut().enumerate() {
            let row = &weights[oc * k_len..(oc + 1) * k_len];
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            *s = quantization_scale(max_abs);
        }
        let mut data = vec![0i8; groups * group_stride];
        for g in 0..groups {
            for p in 0..panels_per_group {
                let rows = PACK_MR.min(rows_per_group - p * PACK_MR);
                let panel = &mut data[g * group_stride + p * panel_stride..][..panel_stride];
                for r in 0..rows {
                    let oc = g * rows_per_group + p * PACK_MR + r;
                    let row = &weights[oc * k_len..(oc + 1) * k_len];
                    let scale = scales[oc];
                    for (k, &w) in row.iter().enumerate() {
                        let q = quantize_value(w, scale) as i8;
                        panel[(k / 2) * PACK_MR * 2 + r * 2 + (k & 1)] = q;
                    }
                }
            }
        }
        QuantizedFilter {
            data,
            scales,
            out_channels,
            groups,
            k_len,
            pairs,
            panel_stride,
            group_stride,
        }
    }

    /// Whether this filter was quantized for the given geometry.
    #[must_use]
    pub fn matches(&self, out_channels: usize, groups: usize, k_len: usize) -> bool {
        self.out_channels == out_channels && self.groups == groups && self.k_len == k_len
    }

    /// The per-output-channel symmetric weight scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The quantized integer weight at `(oc, k)` — the accessor the naive
    /// int8 oracle reads, so kernel and oracle consume the exact same
    /// integers.
    #[must_use]
    pub fn weight(&self, oc: usize, k: usize) -> i8 {
        let rows_per_group = self.out_channels / self.groups;
        let (g, r) = (oc / rows_per_group, oc % rows_per_group);
        let (p, lane) = (r / PACK_MR, r % PACK_MR);
        self.data[g * self.group_stride
            + p * self.panel_stride
            + (k / 2) * PACK_MR * 2
            + lane * 2
            + (k & 1)]
    }

    /// The packed pair-interleaved panels of group `g`.
    fn group(&self, g: usize) -> &[i8] {
        &self.data[g * self.group_stride..(g + 1) * self.group_stride]
    }

    /// Bytes held by the quantized weights + scales — the weight-cache
    /// footprint this filter contributes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Number of logical weight parameters (`out_channels · k_len`).
    #[must_use]
    pub fn num_weights(&self) -> usize {
        self.out_channels * self.k_len
    }
}

/// The symmetric quantization scale for values with the given maximum
/// absolute value: `maxabs / 127`, or `1.0` when everything is zero (any
/// scale represents zeros exactly). Shared by the kernel, the weight
/// packer and the naive oracle so the three can never drift.
#[must_use]
pub fn quantization_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes one value: `v / scale` rounded to the nearest integer (ties
/// away from zero) and clamped to `[-127, 127]`. Implemented branch-free
/// as a reciprocal multiply plus a signed-offset truncation — no `roundf`
/// libm call, so the block quantizer autovectorizes — and shared verbatim
/// by the kernel and the naive oracle, which keeps them byte-identical.
#[must_use]
pub fn quantize_value(v: f32, scale: f32) -> i16 {
    let t = v * (1.0 / scale);
    let r = (t + 0.5f32.copysign(t)) as i32;
    r.clamp(-127, 127) as i16
}

/// Dequantizes an i32 accumulator: `acc · (input_scale · weight_scale)`.
/// The scale product is formed first, then applied in one multiply —
/// kernel and oracle share this exact expression, so requantized outputs
/// are byte-identical.
#[must_use]
pub fn requantize(acc: i32, input_scale: f32, weight_scale: f32) -> f32 {
    acc as f32 * (input_scale * weight_scale)
}

/// The symmetric scale of one input sample (`max |v|` over the sample,
/// after the optional fused input-ReLU), as both the quantized conv and
/// the naive oracle compute it. Per *sample*, never per batch: a stacked
/// batch must produce byte-identical outputs to its samples run alone.
#[must_use]
pub fn sample_scale(sample: &[f32], input_relu: bool) -> f32 {
    let max_abs = sample.iter().fold(0.0f32, |m, &v| {
        let v = if input_relu { v.max(0.0) } else { v };
        m.max(v.abs())
    });
    quantization_scale(max_abs)
}

/// Int8 quantized convolution: per-sample dynamic input scales, `i32`
/// accumulation through `pmaddwd`-shaped kernels, requantize in the tile
/// writeback. Byte-identical to [`crate::ops_cpu::conv2d_naive_quant`]
/// on every ISA path.
///
/// # Panics
///
/// Panics if `quant` was not quantized for this convolution's geometry.
#[must_use]
pub fn conv2d_im2col_quant(
    input: &TensorData,
    params: &Conv2dParams,
    quant: &QuantizedFilter,
    pool: &impl Arena,
) -> TensorData {
    conv2d_im2col_quant_fused(input, params, quant, &ConvEpilogue::default(), pool)
}

/// [`conv2d_im2col_quant`] with a fused epilogue (input-ReLU, bias,
/// residual, output-ReLU). The epilogue's float operations happen *after*
/// requantization, in the same [`store_lane`] the f32 kernels use.
///
/// # Panics
///
/// Panics if `quant` was not quantized for this convolution's geometry,
/// or a provided residual/bias does not match the output geometry.
#[must_use]
pub fn conv2d_im2col_quant_fused(
    input: &TensorData,
    params: &Conv2dParams,
    quant: &QuantizedFilter,
    ep: &ConvEpilogue<'_>,
    pool: &impl Arena,
) -> TensorData {
    let in_shape = input.shape;
    let k_len = (in_shape.channels / params.groups) * params.kernel.0 * params.kernel.1;
    assert!(
        quant.matches(params.out_channels, params.groups, k_len),
        "quantized filter geometry (out_c {}, groups {}, k {}) does not match the convolution \
         (out_c {}, groups {}, k {})",
        quant.out_channels,
        quant.groups,
        quant.k_len,
        params.out_channels,
        params.groups,
        k_len
    );
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, params.out_channels, oh, ow);
    let mut out = pool.take_tensor(out_shape);
    if let Some(res) = ep.residual {
        assert_eq!(
            res.shape, out_shape,
            "fused residual shape must match the convolution output"
        );
    }
    if let Some(bias) = ep.bias {
        assert!(
            bias.len() >= params.out_channels,
            "fused bias must cover every output channel"
        );
    }

    let groups = params.groups;
    let in_c_per_group = in_shape.channels / groups;
    let out_c_per_group = params.out_channels / groups;
    let m_cols = oh * ow;
    let relu = params.activation == ios_ir::Activation::Relu || ep.relu;
    let pairs = quant.pairs;
    // f32 staging block (the same fused im2col the f32 path uses) and an
    // i16 pair-interleaved quantized block carved out of a pooled f32
    // buffer — the arena is f32-only, see [`as_i16_mut`].
    let mut fblock = pool.take(k_len * PACK_NR);
    let mut qbuf = pool.take(pairs * PACK_NR);
    let isa = simd::active_isa();
    let per_item = in_shape.elements_per_item();

    for n in 0..in_shape.batch {
        let s_in = sample_scale(&input.data[n * per_item..(n + 1) * per_item], ep.input_relu);
        for g in 0..groups {
            let c0 = g * in_c_per_group;
            let oc0 = g * out_c_per_group;
            let c_start = (n * params.out_channels + oc0) * m_cols;
            let scales_g = &quant.scales[oc0..oc0 + out_c_per_group];
            let gep = Epilogue {
                bias: ep.bias.map(|b| &b[oc0..oc0 + out_c_per_group]),
                residual: ep
                    .residual
                    .map(|r| &r.data[c_start..c_start + out_c_per_group * m_cols]),
                relu,
            };
            let c = &mut out.data[c_start..c_start + out_c_per_group * m_cols];
            let mut j0 = 0;
            while j0 < m_cols {
                let nr = PACK_NR.min(m_cols - j0);
                im2col_block(
                    input,
                    n,
                    c0,
                    in_c_per_group,
                    params,
                    ow,
                    j0,
                    nr,
                    &mut fblock[..k_len * nr],
                    ep.input_relu,
                );
                let qblock = as_i16_mut(&mut qbuf);
                quantize_block(&fblock[..k_len * nr], k_len, nr, s_in, qblock);
                quant_panels_over_block(
                    quant.group(g),
                    out_c_per_group,
                    pairs,
                    qblock,
                    m_cols,
                    j0,
                    nr,
                    s_in,
                    scales_g,
                    &gep,
                    isa,
                    c,
                );
                j0 += PACK_NR;
            }
        }
    }
    pool.recycle(qbuf);
    pool.recycle(fblock);
    out
}

/// Reinterprets a pooled f32 scratch buffer as i16 storage (the arena is
/// f32-only). Sound: `f32`'s alignment (4) exceeds `i16`'s (2), the byte
/// length maps 1 f32 → 2 i16 exactly, and `i16` has no invalid bit
/// patterns. The buffer's f32 contents afterwards are arbitrary, which
/// the pool tolerates — recycled buffers are fully rewritten before use.
fn as_i16_mut(buf: &mut [f32]) -> &mut [i16] {
    // SAFETY: see above — same allocation, compatible alignment and size,
    // target type has no invalid representations.
    unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<i16>(), buf.len() * 2) }
}

/// Quantizes a `K × nr` f32 im2col block (row stride `nr`) into the
/// pair-interleaved i16 layout the integer microkernel reads:
/// `q[(k/2) · PACK_NR·2 + j·2 + (k&1)]`. Columns `≥ nr` and the odd-k pad
/// slot stay zero — they contribute exact `0` to every i32 sum.
fn quantize_block(fblock: &[f32], k_len: usize, nr: usize, scale: f32, q: &mut [i16]) {
    if nr < PACK_NR {
        // Edge block: columns `nr..PACK_NR` are never written below but are
        // still read by the fixed-width tile — they must contribute 0.
        q.fill(0);
    } else if k_len & 1 == 1 {
        // Full-width block: every slot is written except the odd-k pad lane
        // of the final pair.
        let last = (k_len / 2) * (PACK_NR * 2);
        q[last..last + PACK_NR * 2].fill(0);
    }
    let mut tmp = [0i16; PACK_NR];
    for k in 0..k_len {
        let row = &fblock[k * nr..(k + 1) * nr];
        // Quantize into a contiguous stack row first (this loop
        // autovectorizes); the pair-interleaved scatter below is pure i16
        // moves.
        for (t, &v) in tmp[..nr].iter_mut().zip(row) {
            *t = quantize_value(v, scale);
        }
        let base = (k / 2) * (PACK_NR * 2) + (k & 1);
        for j in 0..nr {
            q[base + j * 2] = tmp[j];
        }
    }
}

/// Streams every quantized panel over one pair-interleaved column block,
/// requantizing each finished tile row and storing it through the shared
/// f32 epilogue. Overflow-safe: each pair contributes `≤ 2 · 127²` per
/// lane, so `i32` holds any `k_len < 2¹⁷` exactly.
#[allow(clippy::too_many_arguments)]
fn quant_panels_over_block(
    a_panels: &[i8],
    m_rows: usize,
    pairs: usize,
    b_block: &[i16],
    m: usize,
    j0: usize,
    nr: usize,
    in_scale: f32,
    scales: &[f32],
    ep: &Epilogue<'_>,
    isa: Isa,
    c: &mut [f32],
) {
    let panel_stride = pairs * PACK_MR * 2;
    let mut i0 = 0;
    let mut p = 0;
    let mut lane = [0.0f32; PACK_NR];
    while i0 < m_rows {
        let mr = PACK_MR.min(m_rows - i0);
        let panel = &a_panels[p * panel_stride..(p + 1) * panel_stride];
        let mut acc = [0i32; PACK_MR * PACK_NR];
        quant_tile(panel, pairs, b_block, &mut acc, isa);
        for i in 0..mr {
            let row = i0 + i;
            let acc_row = &acc[i * PACK_NR..i * PACK_NR + nr];
            for (l, &a) in lane[..nr].iter_mut().zip(acc_row) {
                *l = requantize(a, in_scale, scales[row]);
            }
            store_lane(ep, row, j0, m, &lane[..nr], c);
        }
        i0 += PACK_MR;
        p += 1;
    }
}

/// One `PACK_MR × PACK_NR` integer tile: dispatches to the ISA the shared
/// [`crate::simd`] module selected. All variants compute the *same* i32
/// sums — integer addition is associative — so the result is
/// byte-identical regardless of which one runs.
#[inline]
fn quant_tile(panel: &[i8], pairs: usize, b: &[i16], acc: &mut [i32; PACK_MR * PACK_NR], isa: Isa) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 is part of the x86_64 baseline; the AVX2 variant
        // only runs after the dispatch module's runtime feature check (or
        // a forced override validated against it) passed.
        match isa {
            Isa::Avx2 => unsafe { quant_tile_avx2(panel, pairs, b, acc) },
            Isa::Sse2 => unsafe { quant_tile_sse2(panel, pairs, b, acc) },
            Isa::Scalar => quant_tile_scalar(panel, pairs, b, acc),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = isa;
        quant_tile_scalar(panel, pairs, b, acc);
    }
}

/// Scalar reference tile — the integer sums every SIMD variant must match
/// exactly. For each output `(row, j)` the accumulator gains
/// `a[pair][row][0]·b[pair][j][0] + a[pair][row][1]·b[pair][j][1]` over
/// ascending pairs, all in i32.
fn quant_tile_scalar(panel: &[i8], pairs: usize, b: &[i16], acc: &mut [i32; PACK_MR * PACK_NR]) {
    for pr in 0..pairs {
        let a_pair = &panel[pr * PACK_MR * 2..(pr + 1) * PACK_MR * 2];
        let b_pair = &b[pr * PACK_NR * 2..(pr + 1) * PACK_NR * 2];
        for i in 0..PACK_MR {
            let a0 = i32::from(a_pair[i * 2]);
            let a1 = i32::from(a_pair[i * 2 + 1]);
            let lane = &mut acc[i * PACK_NR..(i + 1) * PACK_NR];
            for (j, l) in lane.iter_mut().enumerate() {
                *l += a0 * i32::from(b_pair[j * 2]) + a1 * i32::from(b_pair[j * 2 + 1]);
            }
        }
    }
}

/// SSE2 `pmaddwd` tile. SSE2 is unconditionally available on x86_64, so
/// this is the portable floor of the integer path.
///
/// # Safety
///
/// `panel` must hold `pairs · PACK_MR · 2` i8 and `b` must hold
/// `pairs · PACK_NR · 2` i16 (unaligned loads stay in bounds).
#[cfg(target_arch = "x86_64")]
unsafe fn quant_tile_sse2(
    panel: &[i8],
    pairs: usize,
    b: &[i16],
    acc: &mut [i32; PACK_MR * PACK_NR],
) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= pairs * PACK_MR * 2 && b.len() >= pairs * PACK_NR * 2);
    // 4 × 16 i32 accumulators would need 16 xmm registers and spill, so
    // the 16 columns are walked in two halves of 8.
    // SAFETY: all pointer arithmetic stays inside the slices per the
    // contract above; loads/stores are explicitly unaligned.
    unsafe {
        for half in 0..2 {
            let mut accv = [[_mm_setzero_si128(); 2]; PACK_MR];
            for pr in 0..pairs {
                let bp = b.as_ptr().add(pr * PACK_NR * 2 + half * 16);
                let b0 = _mm_loadu_si128(bp.cast());
                let b1 = _mm_loadu_si128(bp.add(8).cast());
                let ap = panel.as_ptr().add(pr * PACK_MR * 2);
                for (i, accr) in accv.iter_mut().enumerate() {
                    let a0 = *ap.add(i * 2) as i16 as u16 as u32;
                    let a1 = *ap.add(i * 2 + 1) as i16 as u16 as u32;
                    // Broadcast the (a0, a1) pair into every 32-bit lane;
                    // pmaddwd then yields a0·b[j][0] + a1·b[j][1] per lane.
                    let aa = _mm_set1_epi32(((a1 << 16) | a0) as i32);
                    accr[0] = _mm_add_epi32(accr[0], _mm_madd_epi16(aa, b0));
                    accr[1] = _mm_add_epi32(accr[1], _mm_madd_epi16(aa, b1));
                }
            }
            for (i, accr) in accv.iter().enumerate() {
                let out = acc.as_mut_ptr().add(i * PACK_NR + half * 8);
                _mm_storeu_si128(out.cast(), accr[0]);
                _mm_storeu_si128(out.add(4).cast(), accr[1]);
            }
        }
    }
}

/// AVX2 `vpmaddwd` tile: the full 4 × 16 i32 tile lives in 8 ymm
/// accumulators. Same integer sums as the SSE2 and scalar variants.
///
/// # Safety
///
/// AVX2 must be available (runtime-checked by the caller) and the slice
/// bounds of [`quant_tile_sse2`] hold.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quant_tile_avx2(
    panel: &[i8],
    pairs: usize,
    b: &[i16],
    acc: &mut [i32; PACK_MR * PACK_NR],
) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= pairs * PACK_MR * 2 && b.len() >= pairs * PACK_NR * 2);
    // SAFETY: pointer arithmetic stays inside the slices per the contract
    // above; loads/stores are explicitly unaligned.
    unsafe {
        let mut accv = [[_mm256_setzero_si256(); 2]; PACK_MR];
        for pr in 0..pairs {
            let bp = b.as_ptr().add(pr * PACK_NR * 2);
            let b0 = _mm256_loadu_si256(bp.cast());
            let b1 = _mm256_loadu_si256(bp.add(16).cast());
            let ap = panel.as_ptr().add(pr * PACK_MR * 2);
            for (i, accr) in accv.iter_mut().enumerate() {
                let a0 = *ap.add(i * 2) as i16 as u16 as u32;
                let a1 = *ap.add(i * 2 + 1) as i16 as u16 as u32;
                let aa = _mm256_set1_epi32(((a1 << 16) | a0) as i32);
                accr[0] = _mm256_add_epi32(accr[0], _mm256_madd_epi16(aa, b0));
                accr[1] = _mm256_add_epi32(accr[1], _mm256_madd_epi16(aa, b1));
            }
        }
        for (i, accr) in accv.iter().enumerate() {
            let out = acc.as_mut_ptr().add(i * PACK_NR);
            _mm256_storeu_si256(out.cast(), accr[0]);
            _mm256_storeu_si256(out.add(8).cast(), accr[1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ScratchPool;

    #[test]
    fn gemm_matches_scalar_reference() {
        // 7×23 output with k = 11: exercises full and edge tiles.
        let (m_rows, m, k_len) = (7usize, 23usize, 11usize);
        let a: Vec<f32> = (0..m_rows * k_len).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..k_len * m).map(|i| (i as f32).cos()).collect();
        let mut c = vec![0.0f32; m_rows * m];
        gemm_bit_exact(m_rows, m, k_len, &a, &b, &Epilogue::NONE, &mut c);
        for i in 0..m_rows {
            for j in 0..m {
                let mut acc = 0.0f32;
                for kk in 0..k_len {
                    acc += a[i * k_len + kk] * b[kk * m + j];
                }
                assert_eq!(c[i * m + j], acc, "tile result must be bit-identical");
            }
        }
    }

    #[test]
    fn packed_gemm_is_bit_identical_to_unpacked() {
        // Row counts around the PACK_MR boundary, column counts around NR,
        // including a single-row (depthwise-like) matrix.
        for &(m_rows, m, k_len) in &[
            (7usize, 23usize, 11usize),
            (6, 16, 4),
            (13, 33, 7),
            (1, 5, 3),
            (12, 48, 9),
        ] {
            let a: Vec<f32> = (0..m_rows * k_len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..k_len * m).map(|i| (i as f32).cos()).collect();
            let mut unpacked = vec![0.0f32; m_rows * m];
            gemm_bit_exact(m_rows, m, k_len, &a, &b, &Epilogue::NONE, &mut unpacked);
            let packed = PackedFilter::pack(&a, m_rows, 1, k_len);
            let mut from_packed = vec![0.0f32; m_rows * m];
            gemm_bit_exact_packed(
                m_rows,
                m,
                k_len,
                packed.group(0),
                &b,
                &Epilogue::NONE,
                &mut from_packed,
            );
            assert_eq!(
                from_packed, unpacked,
                "{m_rows}x{m} (k {k_len}) must be bit-identical"
            );
        }
    }

    #[test]
    fn packing_is_a_pure_permutation_per_group() {
        // 2 groups × 5 rows with k = 3: every weight must appear at its
        // panel-major position, edge rows zero-padded.
        let (out_c, groups, k_len) = (10usize, 2usize, 3usize);
        let weights: Vec<f32> = (0..out_c * k_len).map(|i| i as f32 + 1.0).collect();
        let packed = PackedFilter::pack(&weights, out_c, groups, k_len);
        assert!(packed.matches(out_c, groups, k_len));
        let rows_per_group = out_c / groups;
        for g in 0..groups {
            let panels = packed.group(g);
            for r in 0..rows_per_group {
                let (p, lane) = (r / PACK_MR, r % PACK_MR);
                for k in 0..k_len {
                    let oc = g * rows_per_group + r;
                    assert_eq!(
                        panels[p * packed.panel_stride + k * PACK_MR + lane],
                        weights[oc * k_len + k]
                    );
                }
            }
        }
    }

    #[test]
    fn fused_block_im2col_conv_matches_full_matrix_unpacked_conv() {
        // The packed path builds K × NR patch blocks on demand; the
        // unpacked path materializes the full patch matrix. Both must be
        // bit-identical across strides, padding, groups and ragged widths
        // (ow not a multiple of NR, blocks spanning several output rows).
        use ios_ir::Activation;
        let pool = ScratchPool::new();
        let cases: Vec<(TensorShape, Conv2dParams)> = vec![
            (
                TensorShape::new(2, 5, 9, 7),
                Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)),
            ),
            (
                TensorShape::new(1, 4, 11, 5),
                Conv2dParams::plain(7, (5, 3), (2, 2), (2, 1)),
            ),
            (
                TensorShape::new(1, 6, 10, 10),
                Conv2dParams {
                    out_channels: 6,
                    kernel: (3, 3),
                    stride: (2, 2),
                    padding: (1, 1),
                    groups: 6,
                    activation: Activation::None,
                },
            ),
            // Padding wider than the kernel reach: whole rows of zeros.
            (
                TensorShape::new(1, 3, 4, 4),
                Conv2dParams::plain(5, (3, 3), (3, 3), (3, 3)),
            ),
        ];
        for (i, (shape, params)) in cases.iter().enumerate() {
            let input = TensorData::random(*shape, 400 + i as u64);
            let k_len = (shape.channels / params.groups) * params.kernel.0 * params.kernel.1;
            let weights: Vec<f32> = (0..params.out_channels * k_len)
                .map(|v| (v as f32).sin())
                .collect();
            let packed = PackedFilter::pack(&weights, params.out_channels, params.groups, k_len);
            let unpacked_out = conv2d_im2col(&input, params, &weights, &pool);
            let packed_out = conv2d_im2col_packed(&input, params, &packed, &pool);
            assert_eq!(
                packed_out, unpacked_out,
                "case {i}: fused-block packed conv must be bit-identical"
            );
            pool.recycle_tensor(unpacked_out);
            pool.recycle_tensor(packed_out);
        }
    }

    #[test]
    fn fused_epilogue_matches_separate_passes_bitwise() {
        // bias + residual + relu fused into the tile writeback must equal
        // the plain conv followed by the three separate passes, bit for
        // bit, on both the packed and unpacked kernels.
        let pool = ScratchPool::new();
        let shape = TensorShape::new(2, 3, 9, 7);
        let params = Conv2dParams::plain(6, (3, 3), (1, 1), (1, 1));
        let input = TensorData::random(shape, 42);
        let k_len = shape.channels * 9;
        let weights: Vec<f32> = (0..params.out_channels * k_len)
            .map(|v| (v as f32).sin())
            .collect();
        let packed = PackedFilter::pack(&weights, params.out_channels, 1, k_len);
        let bias: Vec<f32> = (0..params.out_channels).map(|v| (v as f32).cos()).collect();
        let plain = conv2d_im2col(&input, &params, &weights, &pool);
        let residual = TensorData::random(plain.shape, 77);

        // Separate-pass reference, in the documented epilogue order.
        let mut reference = plain.clone();
        let m_cols = reference.shape.height * reference.shape.width;
        for n in 0..reference.shape.batch {
            for (oc, &bv) in bias.iter().enumerate() {
                let start = (n * params.out_channels + oc) * m_cols;
                for v in &mut reference.data[start..start + m_cols] {
                    *v += bv;
                }
            }
        }
        for (v, &r) in reference.data.iter_mut().zip(&residual.data) {
            *v += r;
        }
        for v in &mut reference.data {
            *v = v.max(0.0);
        }

        let ep = ConvEpilogue {
            input_relu: false,
            bias: Some(&bias),
            residual: Some(&residual),
            relu: true,
        };
        let fused = conv2d_im2col_fused(&input, &params, &weights, &ep, &pool);
        let fused_packed = conv2d_im2col_packed_fused(&input, &params, &packed, &ep, &pool);
        assert_eq!(
            fused, reference,
            "unpacked fused epilogue must be bit-identical"
        );
        assert_eq!(
            fused_packed, reference,
            "packed fused epilogue must be bit-identical"
        );
    }

    #[test]
    fn input_relu_fusion_matches_activated_copy() {
        // Loading through the fused input-ReLU must equal convolving a
        // pre-activated copy of the input — including on a pointwise conv,
        // which normally skips im2col entirely.
        let pool = ScratchPool::new();
        for params in [
            Conv2dParams::relu(5, (3, 3), (1, 1), (1, 1)),
            Conv2dParams::plain(5, (1, 1), (1, 1), (0, 0)),
        ] {
            let shape = TensorShape::new(2, 4, 6, 5);
            let input = TensorData::random(shape, 7);
            let mut activated = input.clone();
            for v in &mut activated.data {
                *v = v.max(0.0);
            }
            let k_len = shape.channels * params.kernel.0 * params.kernel.1;
            let weights: Vec<f32> = (0..params.out_channels * k_len)
                .map(|v| (v as f32).sin())
                .collect();
            let packed = PackedFilter::pack(&weights, params.out_channels, 1, k_len);
            let ep = ConvEpilogue {
                input_relu: true,
                ..ConvEpilogue::default()
            };
            let reference = conv2d_im2col(&activated, &params, &weights, &pool);
            let fused = conv2d_im2col_fused(&input, &params, &weights, &ep, &pool);
            let fused_packed = conv2d_im2col_packed_fused(&input, &params, &packed, &ep, &pool);
            assert_eq!(fused, reference);
            assert_eq!(fused_packed, reference);
        }
    }

    #[test]
    fn quantized_filter_weight_accessor_reads_back_every_weight() {
        // weight(oc, k) must see exactly round(w/scale) for every position
        // across groups and ragged panel edges.
        let (out_c, groups, k_len) = (10usize, 2usize, 5usize);
        let weights: Vec<f32> = (0..out_c * k_len)
            .map(|i| ((i as f32) * 0.37).sin() * 3.0)
            .collect();
        let quant = QuantizedFilter::quantize(&weights, out_c, groups, k_len);
        assert!(quant.matches(out_c, groups, k_len));
        assert_eq!(quant.num_weights(), out_c * k_len);
        for oc in 0..out_c {
            let scale = quant.scales()[oc];
            for k in 0..k_len {
                let expect = quantize_value(weights[oc * k_len + k], scale) as i8;
                assert_eq!(quant.weight(oc, k), expect, "oc {oc} k {k}");
            }
        }
    }

    #[test]
    fn quant_tile_isa_variants_agree_with_scalar() {
        // The SSE2 and (when available) AVX2 tiles must produce the exact
        // i32 sums of the scalar reference — the byte-identity contract's
        // foundation.
        for pairs in [1usize, 3, 7, 288] {
            let panel: Vec<i8> = (0..pairs * PACK_MR * 2)
                .map(|i| ((i * 37 + 11) % 255) as i8)
                .collect();
            let b: Vec<i16> = (0..pairs * PACK_NR * 2)
                .map(|i| (((i * 73 + 5) % 255) as i16) - 127)
                .collect();
            let mut want = [0i32; PACK_MR * PACK_NR];
            quant_tile_scalar(&panel, pairs, &b, &mut want);
            #[cfg(target_arch = "x86_64")]
            {
                let mut got = [0i32; PACK_MR * PACK_NR];
                // SAFETY: slices sized to the kernel contract above.
                unsafe { quant_tile_sse2(&panel, pairs, &b, &mut got) };
                assert_eq!(got, want, "sse2 must match scalar at {pairs} pairs");
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut got = [0i32; PACK_MR * PACK_NR];
                    // SAFETY: AVX2 just detected; slice contract as above.
                    unsafe { quant_tile_avx2(&panel, pairs, &b, &mut got) };
                    assert_eq!(got, want, "avx2 must match scalar at {pairs} pairs");
                }
            }
        }
    }

    #[test]
    fn f32_tile_isa_variants_agree_bitwise() {
        // The explicit AVX2 f32 tiles (when the host has them) must
        // produce bit-identical results to the auto-vectorized baseline,
        // on both GEMM paths and through every epilogue combination —
        // the f32 mirror of `quant_tile_isa_variants_agree_with_scalar`.
        let supported: Vec<Isa> = [Isa::Scalar, Isa::Sse2, Isa::Avx2]
            .into_iter()
            .filter(|&i| i <= simd::detected_isa())
            .collect();
        // Shapes around the MR/NR boundaries: full tiles, edge tiles, a
        // single-row matrix, and a k long enough to accumulate error if
        // any variant reordered the sum.
        for &(m_rows, m, k_len) in &[
            (8usize, 32usize, 64usize),
            (7, 23, 11),
            (4, 16, 1),
            (1, 5, 3),
            (13, 50, 200),
        ] {
            let a: Vec<f32> = (0..m_rows * k_len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..k_len * m).map(|i| (i as f32).cos()).collect();
            let bias: Vec<f32> = (0..m_rows).map(|i| (i as f32 * 0.7).tan()).collect();
            let residual: Vec<f32> = (0..m_rows * m).map(|i| (i as f32 * 1.3).sin()).collect();
            let packed = PackedFilter::pack(&a, m_rows, 1, k_len);
            for ep_case in 0..4 {
                let ep = Epilogue {
                    bias: (ep_case & 1 != 0).then_some(&bias[..]),
                    residual: (ep_case & 2 != 0).then_some(&residual[..]),
                    relu: ep_case != 0,
                };
                let run = |isa: Isa| {
                    simd::with_forced_isa(isa, || {
                        let mut unpacked = vec![0.0f32; m_rows * m];
                        gemm_bit_exact(m_rows, m, k_len, &a, &b, &ep, &mut unpacked);
                        let mut from_packed = vec![0.0f32; m_rows * m];
                        gemm_bit_exact_packed(
                            m_rows,
                            m,
                            k_len,
                            packed.group(0),
                            &b,
                            &ep,
                            &mut from_packed,
                        );
                        (unpacked, from_packed)
                    })
                };
                let want = run(Isa::Scalar);
                for &isa in &supported[1..] {
                    let got = run(isa);
                    assert_eq!(
                        got, want,
                        "{m_rows}x{m} (k {k_len}, ep {ep_case}) must be bit-identical on {isa}"
                    );
                }
            }
        }
    }

    #[test]
    fn valid_range_covers_edges() {
        // 3×3 kernel, pad 1, stride 1 on width 5 → ow 5.
        assert_eq!(valid_range(5, 1, 0, 1, 5), (1, 5)); // kx = 0: x ∈ [1, 5)
        assert_eq!(valid_range(5, 1, 1, 1, 5), (0, 5)); // kx = 1: all valid
        assert_eq!(valid_range(5, 1, 2, 1, 5), (0, 4)); // kx = 2: x ∈ [0, 4)
                                                        // Stride 2, no padding, k 3 on width 8 → ow 3: x·2 + kx < 8.
        assert_eq!(valid_range(3, 2, 0, 0, 8), (0, 3));
        assert_eq!(valid_range(3, 2, 2, 0, 8), (0, 3));
        // Degenerate: window entirely outside.
        assert_eq!(valid_range(4, 1, 0, 9, 5), (4, 4));
    }
}
