//! im2col + register-blocked GEMM convolution, bit-identical to the naive
//! reference loop.
//!
//! The naive `conv2d` computes every output element as a single scalar
//! accumulation over `(ic, ky, kx)` in that fixed order. This module keeps
//! that exact accumulation order — the k dimension of the GEMM is
//! `(ic, ky, kx)` flattened, walked strictly sequentially — and blocks only
//! over the *independent* output dimensions (output channels × output
//! pixels), so every output element receives precisely the same sequence of
//! `mul` + `add` operations as the reference. Padding positions contribute
//! explicit zero patch values; adding `±0.0 * w` terms never changes a
//! finite IEEE-754 sum, so results compare equal (`==`) element for
//! element. No FMA contraction is used on either path.
//!
//! Layout:
//!
//! * patch matrix `B`: `K × M` where `K = in_c/groups · kh · kw` and
//!   `M = oh · ow`; row `k` holds the input values the k-th kernel element
//!   sees at every output pixel (zero where padding is hit);
//! * weight matrix `A`: the existing `[out_c][in_c/g][kh][kw]` filter —
//!   each output channel's row is already `K` contiguous values;
//! * `C = A · B` is the `out_c/g × M` output of one group, written directly
//!   into the NCHW output tensor.
//!
//! Pointwise convolutions (1×1, stride 1, no padding) skip im2col entirely:
//! the input channel planes already *are* the patch matrix.

use crate::arena::ScratchPool;
use crate::tensor_data::TensorData;
use ios_ir::{Conv2dParams, TensorShape};

/// Output-channel rows per register tile.
const MR: usize = 4;
/// Output-pixel columns per register tile (two 8-lane vectors on AVX2).
const NR: usize = 16;

/// im2col + blocked-GEMM convolution. Bit-identical to
/// [`crate::ops_cpu::conv2d_naive`]; scratch comes from `pool` and is
/// recycled before returning, the output tensor is taken from `pool` and
/// owned by the caller.
#[must_use]
pub fn conv2d_im2col(
    input: &TensorData,
    params: &Conv2dParams,
    weights: &[f32],
    pool: &ScratchPool,
) -> TensorData {
    let in_shape = input.shape;
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, params.out_channels, oh, ow);
    let mut out = pool.take_tensor(out_shape);

    let groups = params.groups;
    let in_c_per_group = in_shape.channels / groups;
    let out_c_per_group = params.out_channels / groups;
    let (kh, kw) = params.kernel;
    let k_len = in_c_per_group * kh * kw;
    let m_cols = oh * ow;
    let in_plane = in_shape.height * in_shape.width;

    // A pointwise convolution's patch matrix is the input itself.
    let pointwise = kh == 1 && kw == 1 && params.stride == (1, 1) && params.padding == (0, 0);
    let mut patches = if pointwise {
        Vec::new()
    } else {
        pool.take(k_len * m_cols)
    };

    for n in 0..in_shape.batch {
        for g in 0..groups {
            let c0 = g * in_c_per_group;
            let b: &[f32] = if pointwise {
                let start = (n * in_shape.channels + c0) * in_plane;
                &input.data[start..start + k_len * m_cols]
            } else {
                im2col_group(input, n, c0, in_c_per_group, params, oh, ow, &mut patches);
                &patches
            };
            let oc0 = g * out_c_per_group;
            let a = &weights[oc0 * k_len..(oc0 + out_c_per_group) * k_len];
            let c_start = (n * params.out_channels + oc0) * m_cols;
            let c = &mut out.data[c_start..c_start + out_c_per_group * m_cols];
            gemm_bit_exact(out_c_per_group, m_cols, k_len, a, b, c);
        }
    }
    if !pointwise {
        pool.recycle(patches);
    }
    if params.activation == ios_ir::Activation::Relu {
        for v in &mut out.data {
            *v = v.max(0.0);
        }
    }
    out
}

/// Fills `patches` (a `K × M` matrix, `K = in_c_per_group·kh·kw`,
/// `M = oh·ow`) with the im2col expansion of sample `n`, channels
/// `[c0, c0 + in_c_per_group)`. Out-of-bounds (padding) positions become
/// exact `0.0`; every element of `patches` is written.
#[allow(clippy::too_many_arguments)]
fn im2col_group(
    input: &TensorData,
    n: usize,
    c0: usize,
    in_c_per_group: usize,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
    patches: &mut [f32],
) {
    let shape = input.shape;
    let (h, w) = (shape.height, shape.width);
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let (ph, pw) = params.padding;
    let m_cols = oh * ow;

    let mut k = 0usize;
    for ic in 0..in_c_per_group {
        let plane_start = (n * shape.channels + c0 + ic) * h * w;
        let plane = &input.data[plane_start..plane_start + h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &mut patches[k * m_cols..(k + 1) * m_cols];
                // Valid output-x range: 0 <= x·sw + kx − pw < w.
                let (x_lo, x_hi) = valid_range(ow, sw, kx, pw, w);
                for y in 0..oh {
                    let iy = (y * sh + ky) as isize - ph as isize;
                    let seg = &mut row[y * ow..(y + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                        continue;
                    }
                    let in_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    seg[..x_lo].fill(0.0);
                    if x_hi > x_lo {
                        let src = ((x_lo * sw + kx) as isize - pw as isize) as usize;
                        if sw == 1 {
                            seg[x_lo..x_hi].copy_from_slice(&in_row[src..src + (x_hi - x_lo)]);
                        } else {
                            let mut ix = src;
                            for s in &mut seg[x_lo..x_hi] {
                                *s = in_row[ix];
                                ix += sw;
                            }
                        }
                    }
                    seg[x_hi..].fill(0.0);
                }
                k += 1;
            }
        }
    }
}

/// The half-open range of output positions `x` for which
/// `0 <= x·stride + k − pad < limit`, clamped to `[0, out)`.
fn valid_range(out: usize, stride: usize, k: usize, pad: usize, limit: usize) -> (usize, usize) {
    let lo = if pad > k {
        (pad - k).div_ceil(stride).min(out)
    } else {
        0
    };
    // Largest x with x·stride + k − pad <= limit − 1.
    let hi = if limit + pad > k {
        (((limit + pad - k - 1) / stride) + 1).min(out)
    } else {
        0
    };
    (lo, hi.max(lo))
}

/// `C[i·m + j] = Σ_k A[i·k_len + k] · B[k·m + j]`, with `k` strictly
/// ascending for every `(i, j)` — the bit-exactness invariant. Register
/// blocking covers `MR × NR` output tiles; each accumulator's operation
/// sequence is identical to a scalar loop.
pub fn gemm_bit_exact(m_rows: usize, m: usize, k_len: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut i0 = 0;
    while i0 < m_rows {
        let mr = MR.min(m_rows - i0);
        let mut j0 = 0;
        while j0 < m {
            let nr = NR.min(m - j0);
            if mr == MR && nr == NR {
                tile_full(i0, j0, m, k_len, a, b, c);
            } else {
                tile_edge(i0, j0, mr, nr, m, k_len, a, b, c);
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Full `MR × NR` register tile; the fixed trip counts let the compiler
/// keep the accumulators in vector registers.
#[inline]
fn tile_full(i0: usize, j0: usize, m: usize, k_len: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut acc = [[0.0f32; NR]; MR];
    let mut a_rows = [&a[0..0]; MR];
    for (i, row) in a_rows.iter_mut().enumerate() {
        *row = &a[(i0 + i) * k_len..(i0 + i + 1) * k_len];
    }
    let b_off = &b[j0..];
    for kk in 0..k_len {
        let brow = &b_off[kk * m..kk * m + NR];
        for i in 0..MR {
            let aik = a_rows[i][kk];
            let lane = &mut acc[i];
            for j in 0..NR {
                lane[j] += aik * brow[j];
            }
        }
    }
    for i in 0..MR {
        c[(i0 + i) * m + j0..(i0 + i) * m + j0 + NR].copy_from_slice(&acc[i]);
    }
}

/// Partial tile at the right/bottom edges (`mr <= MR`, `nr <= NR`).
#[allow(clippy::too_many_arguments)]
fn tile_edge(
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    m: usize,
    k_len: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    let b_off = &b[j0..];
    for kk in 0..k_len {
        let brow = &b_off[kk * m..kk * m + nr];
        for i in 0..mr {
            let aik = a[(i0 + i) * k_len + kk];
            let lane = &mut acc[i];
            for (j, bv) in brow.iter().enumerate() {
                lane[j] += aik * bv;
            }
        }
    }
    for (i, lane) in acc.iter().enumerate().take(mr) {
        c[(i0 + i) * m + j0..(i0 + i) * m + j0 + nr].copy_from_slice(&lane[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_matches_scalar_reference() {
        // 7×23 output with k = 11: exercises full and edge tiles.
        let (m_rows, m, k_len) = (7usize, 23usize, 11usize);
        let a: Vec<f32> = (0..m_rows * k_len).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..k_len * m).map(|i| (i as f32).cos()).collect();
        let mut c = vec![0.0f32; m_rows * m];
        gemm_bit_exact(m_rows, m, k_len, &a, &b, &mut c);
        for i in 0..m_rows {
            for j in 0..m {
                let mut acc = 0.0f32;
                for kk in 0..k_len {
                    acc += a[i * k_len + kk] * b[kk * m + j];
                }
                assert_eq!(c[i * m + j], acc, "tile result must be bit-identical");
            }
        }
    }

    #[test]
    fn valid_range_covers_edges() {
        // 3×3 kernel, pad 1, stride 1 on width 5 → ow 5.
        assert_eq!(valid_range(5, 1, 0, 1, 5), (1, 5)); // kx = 0: x ∈ [1, 5)
        assert_eq!(valid_range(5, 1, 1, 1, 5), (0, 5)); // kx = 1: all valid
        assert_eq!(valid_range(5, 1, 2, 1, 5), (0, 4)); // kx = 2: x ∈ [0, 4)
                                                        // Stride 2, no padding, k 3 on width 8 → ow 3: x·2 + kx < 8.
        assert_eq!(valid_range(3, 2, 0, 0, 8), (0, 3));
        assert_eq!(valid_range(3, 2, 2, 0, 8), (0, 3));
        // Degenerate: window entirely outside.
        assert_eq!(valid_range(4, 1, 0, 9, 5), (4, 4));
    }
}
