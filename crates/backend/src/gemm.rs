//! im2col + register-blocked GEMM convolution, bit-identical to the naive
//! reference loop.
//!
//! The naive `conv2d` computes every output element as a single scalar
//! accumulation over `(ic, ky, kx)` in that fixed order. This module keeps
//! that exact accumulation order — the k dimension of the GEMM is
//! `(ic, ky, kx)` flattened, walked strictly sequentially — and blocks only
//! over the *independent* output dimensions (output channels × output
//! pixels), so every output element receives precisely the same sequence of
//! `mul` + `add` operations as the reference. Padding positions contribute
//! explicit zero patch values; adding `±0.0 * w` terms never changes a
//! finite IEEE-754 sum, so results compare equal (`==`) element for
//! element. No FMA contraction is used on either path.
//!
//! Layout:
//!
//! * patch matrix `B`: `K × M` where `K = in_c/groups · kh · kw` and
//!   `M = oh · ow`; row `k` holds the input values the k-th kernel element
//!   sees at every output pixel (zero where padding is hit);
//! * weight matrix `A`: the existing `[out_c][in_c/g][kh][kw]` filter —
//!   each output channel's row is already `K` contiguous values;
//! * `C = A · B` is the `out_c/g × M` output of one group, written directly
//!   into the NCHW output tensor.
//!
//! Pointwise convolutions (1×1, stride 1, no padding) skip im2col entirely:
//! the input channel planes already *are* the patch matrix.
//!
//! Two weight representations feed the same semantics: the natural layout
//! above ([`conv2d_im2col`]) and the pre-packed tile-major panels of
//! [`PackedFilter`] ([`conv2d_im2col_packed`]), which the serving runtime
//! packs once at weight-precompute time. The packed kernel walks the
//! output column blocks in the outer loop and **fuses im2col into the
//! block walk**: instead of materializing the full `K × M` patch matrix
//! per call, it builds each `K × NR` column block in cache right before
//! all packed panels stream over it ([`im2col_block`]), so the patch data
//! of a large layer never round-trips through memory at all. Because the
//! block holds exactly the values the full matrix would, packing is a pure
//! permutation, and every accumulator still sums over strictly ascending
//! `k`, both paths are bit-identical to each other and to the naive
//! reference.

use crate::arena::Arena;
use crate::tensor_data::TensorData;
use ios_ir::{Conv2dParams, TensorShape};

/// Output-channel rows per register tile.
const MR: usize = 4;
/// Output-pixel columns per register tile (two 8-lane vectors on AVX2).
const NR: usize = 16;
/// Output-channel rows per register tile of the *packed* kernel: the
/// tile-major layout feeds the microkernel one contiguous `PACK_MR`-wide
/// slab per k step. 4 × 16 accumulators + 2 patch vectors + 1 broadcast
/// fit the 16 AVX2 registers; wider tiles (6 or 8 rows) measured slower
/// here because the accumulator array spills.
const PACK_MR: usize = 4;
/// Output-pixel columns per register tile of the packed kernel.
const PACK_NR: usize = 16;

/// A convolution filter pre-packed into the GEMM microkernel's tile-major
/// layout.
///
/// The natural filter layout `[out_c][in_c/g][kh][kw]` makes the kernel
/// read `PACK_MR` strided rows in parallel. Packing reorders each group's
/// weight matrix into panels of `PACK_MR` output channels, `k`-major inside
/// the panel (`data[panel][k][row]`), so the inner loop streams `A` as one
/// contiguous sequence. Packing is a pure permutation (edge panels are
/// zero-padded rows that are never read back into the output), so the
/// packed path consumes exactly the same weight values in exactly the same
/// order per output element — bit-identical to the unpacked kernel.
///
/// Pack once at weight-precompute time ([`crate::batch::BlockWeights`]);
/// every later execution streams the packed filter directly.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFilter {
    data: Vec<f32>,
    out_channels: usize,
    groups: usize,
    k_len: usize,
    /// Elements per panel: `k_len * PACK_MR`.
    panel_stride: usize,
    /// Elements per group: `ceil(rows_per_group / PACK_MR) * panel_stride`.
    group_stride: usize,
}

impl PackedFilter {
    /// Packs a filter in the natural `[out_c][in_c/g][kh][kw]` layout
    /// (`k_len = in_c/g · kh · kw` contiguous values per output channel,
    /// groups concatenated along the output-channel axis).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != out_channels * k_len` or `out_channels`
    /// is not divisible by `groups`.
    #[must_use]
    pub fn pack(weights: &[f32], out_channels: usize, groups: usize, k_len: usize) -> Self {
        assert_eq!(
            weights.len(),
            out_channels * k_len,
            "filter length must be out_channels * k_len"
        );
        assert_eq!(
            out_channels % groups,
            0,
            "output channels must divide evenly into groups"
        );
        let rows_per_group = out_channels / groups;
        let panels_per_group = rows_per_group.div_ceil(PACK_MR);
        let panel_stride = k_len * PACK_MR;
        let group_stride = panels_per_group * panel_stride;
        let mut data = vec![0.0f32; groups * group_stride];
        for g in 0..groups {
            for p in 0..panels_per_group {
                let rows = PACK_MR.min(rows_per_group - p * PACK_MR);
                let panel = &mut data[g * group_stride + p * panel_stride..][..panel_stride];
                for r in 0..rows {
                    let oc = g * rows_per_group + p * PACK_MR + r;
                    let row = &weights[oc * k_len..(oc + 1) * k_len];
                    for (k, &w) in row.iter().enumerate() {
                        panel[k * PACK_MR + r] = w;
                    }
                }
            }
        }
        PackedFilter {
            data,
            out_channels,
            groups,
            k_len,
            panel_stride,
            group_stride,
        }
    }

    /// Whether this filter was packed for the given geometry.
    #[must_use]
    pub fn matches(&self, out_channels: usize, groups: usize, k_len: usize) -> bool {
        self.out_channels == out_channels && self.groups == groups && self.k_len == k_len
    }

    /// The packed panels of group `g`.
    #[must_use]
    fn group(&self, g: usize) -> &[f32] {
        &self.data[g * self.group_stride..(g + 1) * self.group_stride]
    }

    /// Total packed elements held (including edge-panel zero padding).
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Number of logical weight parameters packed (`out_channels · k_len`,
    /// excluding edge-panel padding) — the natural filter's length.
    #[must_use]
    pub fn num_weights(&self) -> usize {
        self.out_channels * self.k_len
    }
}

/// im2col + blocked-GEMM convolution. Bit-identical to
/// [`crate::ops_cpu::conv2d_naive`]; scratch comes from `pool` and is
/// recycled before returning, the output tensor is taken from `pool` and
/// owned by the caller.
#[must_use]
pub fn conv2d_im2col(
    input: &TensorData,
    params: &Conv2dParams,
    weights: &[f32],
    pool: &impl Arena,
) -> TensorData {
    conv2d_gemm(input, params, Filter::Unpacked(weights), pool)
}

/// [`conv2d_im2col`] reading the filter from its pre-packed tile-major
/// layout — the serving fast path. Bit-identical to the unpacked kernel
/// (and therefore to [`crate::ops_cpu::conv2d_naive`]).
///
/// # Panics
///
/// Panics if `packed` was not packed for this convolution's geometry.
#[must_use]
pub fn conv2d_im2col_packed(
    input: &TensorData,
    params: &Conv2dParams,
    packed: &PackedFilter,
    pool: &impl Arena,
) -> TensorData {
    let k_len = (input.shape.channels / params.groups) * params.kernel.0 * params.kernel.1;
    assert!(
        packed.matches(params.out_channels, params.groups, k_len),
        "packed filter geometry (out_c {}, groups {}, k {}) does not match the convolution \
         (out_c {}, groups {}, k {})",
        packed.out_channels,
        packed.groups,
        packed.k_len,
        params.out_channels,
        params.groups,
        k_len
    );
    conv2d_gemm(input, params, Filter::Packed(packed), pool)
}

/// The weight operand of the GEMM: natural layout or pre-packed panels.
enum Filter<'a> {
    Unpacked(&'a [f32]),
    Packed(&'a PackedFilter),
}

fn conv2d_gemm(
    input: &TensorData,
    params: &Conv2dParams,
    filter: Filter<'_>,
    pool: &impl Arena,
) -> TensorData {
    let in_shape = input.shape;
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, params.out_channels, oh, ow);
    let mut out = pool.take_tensor(out_shape);

    let groups = params.groups;
    let in_c_per_group = in_shape.channels / groups;
    let out_c_per_group = params.out_channels / groups;
    let (kh, kw) = params.kernel;
    let k_len = in_c_per_group * kh * kw;
    let m_cols = oh * ow;
    let in_plane = in_shape.height * in_shape.width;

    // A pointwise convolution's patch matrix is the input itself. The
    // unpacked kernel materializes the full `K × M` patch matrix per group;
    // the packed kernel is column-block-outer, so it builds each `K × NR`
    // column block on demand instead (fused im2col) and never holds more
    // than one cache-resident block of B.
    let pointwise = kh == 1 && kw == 1 && params.stride == (1, 1) && params.padding == (0, 0);
    let mut patches = if pointwise {
        Vec::new()
    } else {
        match filter {
            Filter::Unpacked(_) => pool.take(k_len * m_cols),
            Filter::Packed(_) => pool.take(k_len * PACK_NR),
        }
    };

    for n in 0..in_shape.batch {
        for g in 0..groups {
            let c0 = g * in_c_per_group;
            let oc0 = g * out_c_per_group;
            let c_start = (n * params.out_channels + oc0) * m_cols;
            let c = &mut out.data[c_start..c_start + out_c_per_group * m_cols];
            match filter {
                Filter::Unpacked(weights) => {
                    let b: &[f32] = if pointwise {
                        let start = (n * in_shape.channels + c0) * in_plane;
                        &input.data[start..start + k_len * m_cols]
                    } else {
                        im2col_group(input, n, c0, in_c_per_group, params, oh, ow, &mut patches);
                        &patches
                    };
                    let a = &weights[oc0 * k_len..(oc0 + out_c_per_group) * k_len];
                    gemm_bit_exact(out_c_per_group, m_cols, k_len, a, b, c);
                }
                Filter::Packed(packed) if pointwise => {
                    let start = (n * in_shape.channels + c0) * in_plane;
                    let b = &input.data[start..start + k_len * m_cols];
                    gemm_bit_exact_packed(out_c_per_group, m_cols, k_len, packed.group(g), b, c);
                }
                Filter::Packed(packed) => {
                    // Fused per-block im2col: build the `K × nr` patch
                    // column block in cache, then stream every packed panel
                    // over it while it is hot. Same patch values, same
                    // ascending-k accumulation per output element — bit-
                    // identical to the full-matrix path.
                    let mut j0 = 0;
                    while j0 < m_cols {
                        let nr = PACK_NR.min(m_cols - j0);
                        let block = &mut patches[..k_len * nr];
                        im2col_block(input, n, c0, in_c_per_group, params, ow, j0, nr, block);
                        packed_panels_over_block(
                            packed.group(g),
                            out_c_per_group,
                            m_cols,
                            k_len,
                            block,
                            nr,
                            j0,
                            nr,
                            c,
                        );
                        j0 += PACK_NR;
                    }
                }
            }
        }
    }
    if !pointwise {
        pool.recycle(patches);
    }
    if params.activation == ios_ir::Activation::Relu {
        for v in &mut out.data {
            *v = v.max(0.0);
        }
    }
    out
}

/// Fills `patches` (a `K × M` matrix, `K = in_c_per_group·kh·kw`,
/// `M = oh·ow`) with the im2col expansion of sample `n`, channels
/// `[c0, c0 + in_c_per_group)`. Out-of-bounds (padding) positions become
/// exact `0.0`; every element of `patches` is written.
#[allow(clippy::too_many_arguments)]
fn im2col_group(
    input: &TensorData,
    n: usize,
    c0: usize,
    in_c_per_group: usize,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
    patches: &mut [f32],
) {
    let shape = input.shape;
    let (h, w) = (shape.height, shape.width);
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let (ph, pw) = params.padding;
    let m_cols = oh * ow;

    let mut k = 0usize;
    for ic in 0..in_c_per_group {
        let plane_start = (n * shape.channels + c0 + ic) * h * w;
        let plane = &input.data[plane_start..plane_start + h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &mut patches[k * m_cols..(k + 1) * m_cols];
                // Valid output-x range: 0 <= x·sw + kx − pw < w.
                let (x_lo, x_hi) = valid_range(ow, sw, kx, pw, w);
                for y in 0..oh {
                    let iy = (y * sh + ky) as isize - ph as isize;
                    let seg = &mut row[y * ow..(y + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                        continue;
                    }
                    let in_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    seg[..x_lo].fill(0.0);
                    if x_hi > x_lo {
                        let src = ((x_lo * sw + kx) as isize - pw as isize) as usize;
                        if sw == 1 {
                            seg[x_lo..x_hi].copy_from_slice(&in_row[src..src + (x_hi - x_lo)]);
                        } else {
                            let mut ix = src;
                            for s in &mut seg[x_lo..x_hi] {
                                *s = in_row[ix];
                                ix += sw;
                            }
                        }
                    }
                    seg[x_hi..].fill(0.0);
                }
                k += 1;
            }
        }
    }
}

/// Fills `patches` (a `K × nr` block, `K = in_c_per_group·kh·kw`, row
/// stride `nr`) with the im2col expansion of output columns
/// `[j0, j0 + nr)` of sample `n`, channels `[c0, c0 + in_c_per_group)` —
/// the fused-im2col building block of the packed kernel. Produces exactly
/// the values the full-matrix [`im2col_group`] would put in those columns
/// (padding positions become exact `0.0`); every element of `patches` is
/// written.
#[allow(clippy::too_many_arguments)]
fn im2col_block(
    input: &TensorData,
    n: usize,
    c0: usize,
    in_c_per_group: usize,
    params: &Conv2dParams,
    ow: usize,
    j0: usize,
    nr: usize,
    patches: &mut [f32],
) {
    let shape = input.shape;
    let (h, w) = (shape.height, shape.width);
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let (ph, pw) = params.padding;

    let mut k = 0usize;
    for ic in 0..in_c_per_group {
        let plane_start = (n * shape.channels + c0 + ic) * h * w;
        let plane = &input.data[plane_start..plane_start + h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &mut patches[k * nr..(k + 1) * nr];
                // Valid output-x range: 0 <= x·sw + kx − pw < w.
                let (x_lo, x_hi) = valid_range(ow, sw, kx, pw, w);
                // The block's columns may span several output rows y; walk
                // them segment by segment (each segment one y).
                let (mut j, mut at) = (j0, 0usize);
                while at < nr {
                    let (y, x0) = (j / ow, j % ow);
                    let seg_len = (ow - x0).min(nr - at);
                    let seg = &mut row[at..at + seg_len];
                    let iy = (y * sh + ky) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                    } else {
                        let in_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        // Clamp the globally valid x range to this segment.
                        let lo = x_lo.clamp(x0, x0 + seg_len);
                        let hi = x_hi.clamp(lo, x0 + seg_len);
                        let (a, b) = (lo - x0, hi - x0);
                        seg[..a].fill(0.0);
                        if b > a {
                            let src = ((lo * sw + kx) as isize - pw as isize) as usize;
                            if sw == 1 {
                                seg[a..b].copy_from_slice(&in_row[src..src + (b - a)]);
                            } else {
                                let mut ix = src;
                                for s in &mut seg[a..b] {
                                    *s = in_row[ix];
                                    ix += sw;
                                }
                            }
                        }
                        seg[b..].fill(0.0);
                    }
                    j += seg_len;
                    at += seg_len;
                }
                k += 1;
            }
        }
    }
}

/// The half-open range of output positions `x` for which
/// `0 <= x·stride + k − pad < limit`, clamped to `[0, out)`.
fn valid_range(out: usize, stride: usize, k: usize, pad: usize, limit: usize) -> (usize, usize) {
    let lo = if pad > k {
        (pad - k).div_ceil(stride).min(out)
    } else {
        0
    };
    // Largest x with x·stride + k − pad <= limit − 1.
    let hi = if limit + pad > k {
        (((limit + pad - k - 1) / stride) + 1).min(out)
    } else {
        0
    };
    (lo, hi.max(lo))
}

/// `C[i·m + j] = Σ_k A[i·k_len + k] · B[k·m + j]`, with `k` strictly
/// ascending for every `(i, j)` — the bit-exactness invariant. Register
/// blocking covers `MR × NR` output tiles; each accumulator's operation
/// sequence is identical to a scalar loop.
pub fn gemm_bit_exact(m_rows: usize, m: usize, k_len: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut i0 = 0;
    while i0 < m_rows {
        let mr = MR.min(m_rows - i0);
        let mut j0 = 0;
        while j0 < m {
            let nr = NR.min(m - j0);
            if mr == MR && nr == NR {
                tile_full(i0, j0, m, k_len, a, b, c);
            } else {
                tile_edge(i0, j0, mr, nr, m, k_len, a, b, c);
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Full `MR × NR` register tile; the fixed trip counts let the compiler
/// keep the accumulators in vector registers.
#[inline]
fn tile_full(i0: usize, j0: usize, m: usize, k_len: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut acc = [[0.0f32; NR]; MR];
    let mut a_rows = [&a[0..0]; MR];
    for (i, row) in a_rows.iter_mut().enumerate() {
        *row = &a[(i0 + i) * k_len..(i0 + i + 1) * k_len];
    }
    let b_off = &b[j0..];
    for kk in 0..k_len {
        let brow = &b_off[kk * m..kk * m + NR];
        for i in 0..MR {
            let aik = a_rows[i][kk];
            let lane = &mut acc[i];
            for j in 0..NR {
                lane[j] += aik * brow[j];
            }
        }
    }
    for i in 0..MR {
        c[(i0 + i) * m + j0..(i0 + i) * m + j0 + NR].copy_from_slice(&acc[i]);
    }
}

/// [`gemm_bit_exact`] reading `A` from tile-major packed panels
/// ([`PackedFilter::pack`]): panel `p` holds rows `p·PACK_MR ..` as
/// `panel[k · PACK_MR + row]`, so the k loop walks one contiguous stream.
/// Every output element still accumulates over strictly ascending `k` —
/// bit-identical to the unpacked kernel.
///
/// The loop nest is column-block-outer: for each `NR`-wide block of output
/// pixels, *all* weight panels are streamed over the same `K × NR` slice of
/// the patch matrix. The slice stays cache-hot across panels, so the big
/// patch matrix of a large layer crosses the memory hierarchy once instead
/// of once per panel — the unpacked kernel's dominant cost on
/// GEMM-bound shapes — while the packed `A` is one sequential,
/// hardware-prefetchable stream per block.
pub fn gemm_bit_exact_packed(
    m_rows: usize,
    m: usize,
    k_len: usize,
    a_panels: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut j0 = 0;
    while j0 < m {
        let nr = PACK_NR.min(m - j0);
        packed_panels_over_block(a_panels, m_rows, m, k_len, &b[j0..], m, j0, nr, c);
        j0 += PACK_NR;
    }
}

/// Streams every packed panel over one `nr`-wide column block of `B`.
///
/// `b_block` holds B columns `[j0, j0 + nr)` with row stride `b_stride`: a
/// view into the full `K × M` patch matrix (`b_stride = m`) for the
/// pointwise / full-matrix paths, or a fused cache-resident `K × nr` block
/// (`b_stride = nr`) built by [`im2col_block`]. `c` is the full
/// `m_rows × m` output; columns `[j0, j0 + nr)` are written. Every output
/// element accumulates over strictly ascending `k` with the same values
/// regardless of the B layout — the two layouts are bit-identical.
#[allow(clippy::too_many_arguments)]
fn packed_panels_over_block(
    a_panels: &[f32],
    m_rows: usize,
    m: usize,
    k_len: usize,
    b_block: &[f32],
    b_stride: usize,
    j0: usize,
    nr: usize,
    c: &mut [f32],
) {
    let panel_stride = k_len * PACK_MR;
    let mut i0 = 0;
    let mut p = 0;
    while i0 < m_rows {
        let mr = PACK_MR.min(m_rows - i0);
        let panel = &a_panels[p * panel_stride..(p + 1) * panel_stride];
        if mr == PACK_MR && nr == PACK_NR {
            packed_tile_full(panel, i0, j0, m, b_stride, k_len, b_block, c);
        } else {
            packed_tile_edge(panel, i0, j0, mr, nr, m, b_stride, k_len, b_block, c);
        }
        i0 += PACK_MR;
        p += 1;
    }
}

/// Full `PACK_MR × PACK_NR` register tile of the packed kernel; per k step it
/// loads one contiguous `PACK_MR`-slab of `A` and one `PACK_NR`-row of `B`
/// (read with row stride `b_stride`, written to `C` with row stride `m`).
#[allow(clippy::too_many_arguments)]
#[inline]
fn packed_tile_full(
    panel: &[f32],
    i0: usize,
    j0: usize,
    m: usize,
    b_stride: usize,
    k_len: usize,
    b: &[f32],
    c: &mut [f32],
) {
    let mut acc = [[0.0f32; PACK_NR]; PACK_MR];
    for kk in 0..k_len {
        let a_k = &panel[kk * PACK_MR..kk * PACK_MR + PACK_MR];
        let brow = &b[kk * b_stride..kk * b_stride + PACK_NR];
        for i in 0..PACK_MR {
            let aik = a_k[i];
            let lane = &mut acc[i];
            for j in 0..PACK_NR {
                lane[j] += aik * brow[j];
            }
        }
    }
    for (i, lane) in acc.iter().enumerate() {
        c[(i0 + i) * m + j0..(i0 + i) * m + j0 + PACK_NR].copy_from_slice(lane);
    }
}

/// Partial packed tile at the right/bottom edges (`mr <= PACK_MR`,
/// `nr <= PACK_NR`); the zero-padded panel rows beyond `mr` are never read.
#[allow(clippy::too_many_arguments)]
fn packed_tile_edge(
    panel: &[f32],
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    m: usize,
    b_stride: usize,
    k_len: usize,
    b: &[f32],
    c: &mut [f32],
) {
    let mut acc = [[0.0f32; PACK_NR]; PACK_MR];
    for kk in 0..k_len {
        let a_k = &panel[kk * PACK_MR..kk * PACK_MR + PACK_MR];
        let brow = &b[kk * b_stride..kk * b_stride + nr];
        for i in 0..mr {
            let aik = a_k[i];
            let lane = &mut acc[i];
            for (j, bv) in brow.iter().enumerate() {
                lane[j] += aik * bv;
            }
        }
    }
    for (i, lane) in acc.iter().enumerate().take(mr) {
        c[(i0 + i) * m + j0..(i0 + i) * m + j0 + nr].copy_from_slice(&lane[..nr]);
    }
}

/// Partial tile at the right/bottom edges (`mr <= MR`, `nr <= NR`).
#[allow(clippy::too_many_arguments)]
fn tile_edge(
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    m: usize,
    k_len: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    let b_off = &b[j0..];
    for kk in 0..k_len {
        let brow = &b_off[kk * m..kk * m + nr];
        for i in 0..mr {
            let aik = a[(i0 + i) * k_len + kk];
            let lane = &mut acc[i];
            for (j, bv) in brow.iter().enumerate() {
                lane[j] += aik * bv;
            }
        }
    }
    for (i, lane) in acc.iter().enumerate().take(mr) {
        c[(i0 + i) * m + j0..(i0 + i) * m + j0 + nr].copy_from_slice(&lane[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ScratchPool;

    #[test]
    fn gemm_matches_scalar_reference() {
        // 7×23 output with k = 11: exercises full and edge tiles.
        let (m_rows, m, k_len) = (7usize, 23usize, 11usize);
        let a: Vec<f32> = (0..m_rows * k_len).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..k_len * m).map(|i| (i as f32).cos()).collect();
        let mut c = vec![0.0f32; m_rows * m];
        gemm_bit_exact(m_rows, m, k_len, &a, &b, &mut c);
        for i in 0..m_rows {
            for j in 0..m {
                let mut acc = 0.0f32;
                for kk in 0..k_len {
                    acc += a[i * k_len + kk] * b[kk * m + j];
                }
                assert_eq!(c[i * m + j], acc, "tile result must be bit-identical");
            }
        }
    }

    #[test]
    fn packed_gemm_is_bit_identical_to_unpacked() {
        // Row counts around the PACK_MR boundary, column counts around NR,
        // including a single-row (depthwise-like) matrix.
        for &(m_rows, m, k_len) in &[
            (7usize, 23usize, 11usize),
            (6, 16, 4),
            (13, 33, 7),
            (1, 5, 3),
            (12, 48, 9),
        ] {
            let a: Vec<f32> = (0..m_rows * k_len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..k_len * m).map(|i| (i as f32).cos()).collect();
            let mut unpacked = vec![0.0f32; m_rows * m];
            gemm_bit_exact(m_rows, m, k_len, &a, &b, &mut unpacked);
            let packed = PackedFilter::pack(&a, m_rows, 1, k_len);
            let mut from_packed = vec![0.0f32; m_rows * m];
            gemm_bit_exact_packed(m_rows, m, k_len, packed.group(0), &b, &mut from_packed);
            assert_eq!(
                from_packed, unpacked,
                "{m_rows}x{m} (k {k_len}) must be bit-identical"
            );
        }
    }

    #[test]
    fn packing_is_a_pure_permutation_per_group() {
        // 2 groups × 5 rows with k = 3: every weight must appear at its
        // panel-major position, edge rows zero-padded.
        let (out_c, groups, k_len) = (10usize, 2usize, 3usize);
        let weights: Vec<f32> = (0..out_c * k_len).map(|i| i as f32 + 1.0).collect();
        let packed = PackedFilter::pack(&weights, out_c, groups, k_len);
        assert!(packed.matches(out_c, groups, k_len));
        let rows_per_group = out_c / groups;
        for g in 0..groups {
            let panels = packed.group(g);
            for r in 0..rows_per_group {
                let (p, lane) = (r / PACK_MR, r % PACK_MR);
                for k in 0..k_len {
                    let oc = g * rows_per_group + r;
                    assert_eq!(
                        panels[p * packed.panel_stride + k * PACK_MR + lane],
                        weights[oc * k_len + k]
                    );
                }
            }
        }
    }

    #[test]
    fn fused_block_im2col_conv_matches_full_matrix_unpacked_conv() {
        // The packed path builds K × NR patch blocks on demand; the
        // unpacked path materializes the full patch matrix. Both must be
        // bit-identical across strides, padding, groups and ragged widths
        // (ow not a multiple of NR, blocks spanning several output rows).
        use ios_ir::Activation;
        let pool = ScratchPool::new();
        let cases: Vec<(TensorShape, Conv2dParams)> = vec![
            (
                TensorShape::new(2, 5, 9, 7),
                Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)),
            ),
            (
                TensorShape::new(1, 4, 11, 5),
                Conv2dParams::plain(7, (5, 3), (2, 2), (2, 1)),
            ),
            (
                TensorShape::new(1, 6, 10, 10),
                Conv2dParams {
                    out_channels: 6,
                    kernel: (3, 3),
                    stride: (2, 2),
                    padding: (1, 1),
                    groups: 6,
                    activation: Activation::None,
                },
            ),
            // Padding wider than the kernel reach: whole rows of zeros.
            (
                TensorShape::new(1, 3, 4, 4),
                Conv2dParams::plain(5, (3, 3), (3, 3), (3, 3)),
            ),
        ];
        for (i, (shape, params)) in cases.iter().enumerate() {
            let input = TensorData::random(*shape, 400 + i as u64);
            let k_len = (shape.channels / params.groups) * params.kernel.0 * params.kernel.1;
            let weights: Vec<f32> = (0..params.out_channels * k_len)
                .map(|v| (v as f32).sin())
                .collect();
            let packed = PackedFilter::pack(&weights, params.out_channels, params.groups, k_len);
            let unpacked_out = conv2d_im2col(&input, params, &weights, &pool);
            let packed_out = conv2d_im2col_packed(&input, params, &packed, &pool);
            assert_eq!(
                packed_out, unpacked_out,
                "case {i}: fused-block packed conv must be bit-identical"
            );
            pool.recycle_tensor(unpacked_out);
            pool.recycle_tensor(packed_out);
        }
    }

    #[test]
    fn valid_range_covers_edges() {
        // 3×3 kernel, pad 1, stride 1 on width 5 → ow 5.
        assert_eq!(valid_range(5, 1, 0, 1, 5), (1, 5)); // kx = 0: x ∈ [1, 5)
        assert_eq!(valid_range(5, 1, 1, 1, 5), (0, 5)); // kx = 1: all valid
        assert_eq!(valid_range(5, 1, 2, 1, 5), (0, 4)); // kx = 2: x ∈ [0, 4)
                                                        // Stride 2, no padding, k 3 on width 8 → ow 3: x·2 + kx < 8.
        assert_eq!(valid_range(3, 2, 0, 0, 8), (0, 3));
        assert_eq!(valid_range(3, 2, 2, 0, 8), (0, 3));
        // Degenerate: window entirely outside.
        assert_eq!(valid_range(4, 1, 0, 9, 5), (4, 4));
    }
}
