//! Runtime SIMD dispatch shared by every microkernel.
//!
//! Both GEMM families — the f32 register tiles and the int8 `pmaddwd`
//! tiles — pick their widest usable ISA *once* per process instead of
//! re-running feature detection per convolution call. The selection is
//! cached in a [`OnceLock`] kernel table keyed by [`Isa`]:
//!
//! * **detection** — `is_x86_feature_detected!("avx2")` on x86_64 (SSE2 is
//!   the unconditional x86_64 floor), scalar elsewhere;
//! * **`IOS_FORCE_ISA`** — a `{scalar, sse2, avx2}` environment override
//!   for deterministic testing (e.g. exercising the SSE2 fallback on an
//!   AVX2 CI runner). Forcing an ISA the host cannot execute panics up
//!   front rather than faulting in the kernel;
//! * **[`with_forced_isa`]** — a thread-scoped override for in-process
//!   cross-ISA identity tests (the proptests run the same convolution
//!   under every supported ISA and assert bitwise equality).
//!
//! Every ISA variant of every kernel computes the *same* per-element
//! operation sequence, so which entry the table selects is invisible in
//! the output bits — only in the wall clock.

use std::cell::Cell;
use std::sync::OnceLock;

/// An instruction-set tier a microkernel can dispatch to, ordered from
/// narrowest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// Portable scalar code — the only tier off x86_64.
    Scalar,
    /// SSE2: the x86_64 baseline. The f32 tiles run their auto-vectorized
    /// form at this tier; the int8 tiles run explicit `pmaddwd`.
    Sse2,
    /// AVX2: explicit 8-lane f32 and 16-lane `vpmaddwd` int8 tiles.
    Avx2,
}

impl Isa {
    /// The lower-case name used by `IOS_FORCE_ISA` and the telemetry
    /// export (`ios_simd_kernel{isa="…"}`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }

    /// Parses an [`Isa`] from its [`name`](Isa::name) (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Isa> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "sse2" => Some(Isa::Sse2),
            "avx2" => Some(Isa::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest ISA this host can execute, from hardware feature detection
/// alone (no overrides).
#[must_use]
pub fn detected_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Isa::Avx2
        } else {
            Isa::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Isa::Scalar
    }
}

/// The process-wide selection: detection capped by `IOS_FORCE_ISA`,
/// resolved once and cached.
static SELECTED: OnceLock<Isa> = OnceLock::new();

fn selected_isa() -> Isa {
    *SELECTED.get_or_init(|| {
        let detected = detected_isa();
        match std::env::var("IOS_FORCE_ISA") {
            Ok(v) => {
                let forced = Isa::parse(&v).unwrap_or_else(|| {
                    panic!("IOS_FORCE_ISA={v:?} is not one of scalar, sse2, avx2")
                });
                assert!(
                    forced <= detected,
                    "IOS_FORCE_ISA={} but this host only executes up to {}",
                    forced,
                    detected
                );
                forced
            }
            Err(_) => detected,
        }
    })
}

thread_local! {
    /// Thread-scoped override installed by [`with_forced_isa`].
    static OVERRIDE: Cell<Option<Isa>> = const { Cell::new(None) };
}

/// The ISA every microkernel dispatches to on this thread: the
/// [`with_forced_isa`] override if one is active, else the cached
/// process-wide selection (`IOS_FORCE_ISA` or hardware detection).
///
/// Cheap enough to call once per kernel invocation — a thread-local read
/// plus a `OnceLock` load; the hot tile loops never re-detect.
#[must_use]
pub fn active_isa() -> Isa {
    OVERRIDE.with(Cell::get).unwrap_or_else(selected_isa)
}

/// Runs `f` with every kernel on the current thread dispatched at `isa`,
/// restoring the previous selection afterwards (panic-safe). This is the
/// hook the cross-ISA bit-identity tests and the `simd_gate` baseline
/// timing use.
///
/// # Panics
///
/// Panics if `isa` is wider than [`detected_isa`] — the host could not
/// execute the kernels it selects.
pub fn with_forced_isa<R>(isa: Isa, f: impl FnOnce() -> R) -> R {
    assert!(
        isa <= detected_isa(),
        "cannot force {isa}: this host only executes up to {}",
        detected_isa()
    );
    struct Restore(Option<Isa>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(isa))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_names_round_trip_and_order() {
        for isa in [Isa::Scalar, Isa::Sse2, Isa::Avx2] {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
            assert_eq!(Isa::parse(&isa.name().to_ascii_uppercase()), Some(isa));
        }
        assert_eq!(Isa::parse("avx512"), None);
        assert!(Isa::Scalar < Isa::Sse2 && Isa::Sse2 < Isa::Avx2);
    }

    #[test]
    fn forced_isa_scopes_to_the_closure_and_restores() {
        let ambient = active_isa();
        let inner = with_forced_isa(Isa::Scalar, active_isa);
        assert_eq!(inner, Isa::Scalar);
        assert_eq!(active_isa(), ambient);
        // Nested overrides unwind in order, including across panics.
        let result = std::panic::catch_unwind(|| {
            with_forced_isa(Isa::Scalar, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(active_isa(), ambient);
    }

    #[test]
    fn detection_never_exceeds_the_hardware() {
        // active_isa() must always be executable on this host.
        assert!(active_isa() <= detected_isa());
    }
}
