//! Stage-level profiling on the CPU execution backend — the device half of
//! the paper's optimize → **profile** → execute loop.
//!
//! [`CpuStageProfiler`] implements [`ios_core::StageProfiler`]: given a
//! candidate stage, it executes that stage — concurrent groups on real
//! worker threads, merge stages through the packed merged-weight path —
//! through the very same [`execute_stage`] the serving executor runs, so
//! the latencies the scheduler optimizes against are latencies of the code
//! that will serve the schedule. [`ios_core::ProfiledCostModel`] supplies
//! the measurement policy (warmup, median-of-N, stage cache) on top.
//!
//! Per profiled graph the harness keeps a warmed state: precomputed
//! (packed) [`BlockWeights`] (shared across batch-resized instances of
//! one block — weights are batch-size independent), deterministic random
//! graph inputs, and a deterministic random output tensor for every
//! operator — the stage under profile reads its predecessors from that
//! state exactly like a mid-graph stage reads earlier stages' outputs.
//! Stage outputs produced by a run are recycled into the harness's
//! scratch pool before the next run, so repeat runs of a stage reuse its
//! tensors and timings measure compute, not the allocator (the only
//! per-run bookkeeping is two uncontended lock acquisitions and the
//! stage's group-list clone — sub-microsecond, and mirroring the
//! per-stage overhead the real executor pays anyway).

use crate::arena::ScratchPool;
use crate::batch::{BlockWeights, WeightPrecision};
use crate::executor::execute_stage;
use crate::tensor_data::TensorData;
use ios_core::{graph_fingerprint, MergedConv, ParallelizationStrategy, Stage, StageProfiler};
use ios_ir::{Graph, OpId, OpSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A controllable source of concurrent CPU load: `threads` workers that
/// churn compute- and cache-intensive busywork while activated, and park
/// on a condition variable otherwise (zero idle cost — a serving engine
/// can hold one for its whole lifetime).
///
/// Stage latencies profiled on an idle machine flatter every candidate: a
/// serving host runs neighbours that steal cores and cache, and the
/// schedule that wins on quiet hardware is not necessarily the schedule
/// that wins under load. Wrapping the measurement window in
/// [`BackgroundLoad`] (see [`CpuStageProfiler::with_background_load`])
/// reproduces that contention, so the dynamic program optimizes for the
/// machine it will actually serve on.
///
/// [`BackgroundLoad::activate`] wakes the parked workers through the
/// condvar, so even a sub-100µs measurement window sees them start;
/// deactivation is a flag the workers observe after their in-flight
/// busywork chunk (microseconds).
pub struct BackgroundLoad {
    shared: Arc<LoadShared>,
    threads: Vec<JoinHandle<()>>,
}

/// Worker-visible load state: the atomic is the hot-path check between
/// busywork chunks, the mutex/condvar pair is where idle workers park.
struct LoadShared {
    active: AtomicBool,
    stop: AtomicBool,
    /// Loop iterations retired by the load workers while active.
    work: AtomicU64,
    wake: Mutex<()>,
    wakeup: Condvar,
}

impl BackgroundLoad {
    /// Spawns `threads` idle load workers (0 spawns none — a no-op load).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(LoadShared {
            active: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            work: AtomicU64::new(0),
            wake: Mutex::new(()),
            wakeup: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ios-bgload-{i}"))
                    .spawn(move || {
                        // 64 KiB of f32 streamed per chunk: enough to evict
                        // shares of L1/L2 like a serving neighbour would,
                        // small enough that one chunk retires in
                        // microseconds and deactivation is prompt.
                        let mut buf = vec![1.0f32; 16 * 1024];
                        let mut acc = 0.0f32;
                        while !shared.stop.load(Ordering::Acquire) {
                            if shared.active.load(Ordering::Acquire) {
                                for v in &mut buf {
                                    acc = acc.mul_add(0.999_9, *v);
                                    *v = acc;
                                }
                                std::hint::black_box(acc);
                                shared.work.fetch_add(1, Ordering::Relaxed);
                            } else {
                                // Park until activated (or stopped): no
                                // idle wakeups while the profiler is quiet.
                                let guard = shared.wake.lock().expect("load wake lock");
                                let _unused = shared
                                    .wakeup
                                    .wait_while(guard, |()| {
                                        !shared.active.load(Ordering::Acquire)
                                            && !shared.stop.load(Ordering::Acquire)
                                    })
                                    .expect("load wake lock");
                            }
                        }
                    })
                    .expect("spawn background load worker")
            })
            .collect();
        BackgroundLoad {
            shared,
            threads: handles,
        }
    }

    /// Number of load worker threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Starts the load churning, waking every parked worker.
    pub fn activate(&self) {
        self.shared.active.store(true, Ordering::Release);
        let _guard = self.shared.wake.lock().expect("load wake lock");
        self.shared.wakeup.notify_all();
    }

    /// Returns the load to idle; workers park after their in-flight chunk.
    pub fn deactivate(&self) {
        self.shared.active.store(false, Ordering::Release);
    }

    /// Busywork iterations retired so far — proof the load actually ran
    /// during a measurement window.
    #[must_use]
    pub fn work_done(&self) -> u64 {
        self.shared.work.load(Ordering::Relaxed)
    }
}

impl Drop for BackgroundLoad {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        {
            let _guard = self.shared.wake.lock().expect("load wake lock");
            self.shared.wakeup.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for BackgroundLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackgroundLoad")
            .field("threads", &self.threads.len())
            .field("active", &self.shared.active.load(Ordering::Relaxed))
            .finish()
    }
}

/// Deactivates a [`BackgroundLoad`] on drop, so a panicking stage run
/// cannot leave the load churning forever.
struct ActiveLoad<'a>(&'a BackgroundLoad);

impl Drop for ActiveLoad<'_> {
    fn drop(&mut self) {
        self.0.deactivate();
    }
}

/// How the profiler executes a concurrent stage's groups — which serving
/// code path the measured latencies stand for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupMode {
    /// Groups on scoped worker threads, like
    /// [`crate::execute_schedule_pooled`] — the right mode when schedules
    /// execute one request at a time on an otherwise idle machine (the
    /// offline/gate setting).
    #[default]
    Parallel,
    /// Groups serially on the calling thread, like
    /// [`crate::executor::execute_schedule_pooled_serial`].
    Serial,
    /// Match the batched serving executor per graph instance: batch-1
    /// graphs run their groups on threads (that is how a lone request
    /// executes), batch>1 graphs run them serially (inside
    /// `execute_network_batched`'s per-sample workers, the cores are
    /// already busy and stage groups run serially). This keeps the
    /// profiled latencies aligned with the exact execution mode a serving
    /// engine will use at each batch size.
    MatchServing,
}

/// Warmed per-graph profiling state: weights plus synthetic inputs and
/// predecessor outputs for every operator.
struct GraphState {
    weights: Arc<BlockWeights>,
    inputs: Vec<TensorData>,
    /// One slot per operator, pre-seeded with a deterministic random tensor
    /// of the operator's output shape so any stage can resolve its
    /// predecessors; stage runs overwrite their own ops' slots.
    outputs: Vec<Option<TensorData>>,
}

impl GraphState {
    fn build(graph: &Graph, seed: u64, weights: Arc<BlockWeights>) -> Self {
        let inputs = graph
            .input_shapes()
            .iter()
            .enumerate()
            .map(|(i, s)| TensorData::random(*s, seed ^ (0x5EED + i as u64)))
            .collect();
        let outputs = graph
            .ops()
            .iter()
            .map(|op| {
                Some(TensorData::random(
                    op.output_shape,
                    seed ^ (op.id.index() as u64).wrapping_mul(0x9E3779B97F4A7C15),
                ))
            })
            .collect();
        GraphState {
            weights,
            inputs,
            outputs,
        }
    }
}

/// A batch-independent structural fingerprint: graph name, per-input
/// channel count, operator kinds and wiring — everything the
/// deterministic weights depend on, and nothing that changes under
/// [`ios_ir::Network::with_batch_size`]. Batch-resized instances of one
/// block hash equal, so they share one precomputed [`BlockWeights`].
fn weights_fingerprint(graph: &Graph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    graph.name().hash(&mut hasher);
    for shape in graph.input_shapes() {
        shape.channels.hash(&mut hasher);
    }
    for op in graph.ops() {
        op.kind.hash(&mut hasher);
        op.inputs.hash(&mut hasher);
    }
    hasher.finish()
}

/// The CPU execution backend as an on-device stage profiler.
///
/// Thread-safe: the per-graph state is locked per run (profiling is
/// serialized per graph anyway — concurrent timed runs would perturb each
/// other), so one warmed profiler can back a serving engine's schedule
/// optimizer and its background re-optimization workers at once.
pub struct CpuStageProfiler {
    pool: ScratchPool,
    graphs: Mutex<HashMap<u64, Arc<Mutex<GraphState>>>>,
    /// Precomputed weights shared across batch-resized instances of one
    /// block (weights are batch-size independent), keyed by
    /// [`weights_fingerprint`].
    weights: Mutex<HashMap<u64, Arc<BlockWeights>>>,
    group_mode: GroupMode,
    /// Concurrent load the profiler activates around every stage run, so
    /// measurements see a busy machine instead of an idle one.
    load: Option<BackgroundLoad>,
    /// Weight precision the profiled kernels run at — must match the
    /// serving engine's so the optimizer sees the costs that will serve.
    precision: WeightPrecision,
}

impl Default for CpuStageProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CpuStageProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuStageProfiler")
            .field("graphs", &self.graphs.lock().expect("graph map lock").len())
            .field("group_mode", &self.group_mode)
            .field("load", &self.load)
            .finish()
    }
}

impl CpuStageProfiler {
    /// A profiler that runs concurrent-stage groups on real worker threads,
    /// exactly like [`crate::execute_schedule`] will.
    #[must_use]
    pub fn new() -> Self {
        Self::with_group_mode(GroupMode::Parallel)
    }

    /// A profiler measuring for an explicit execution mode — see
    /// [`GroupMode`]; serving engines use [`GroupMode::MatchServing`] so
    /// every batch size is profiled the way it will execute.
    #[must_use]
    pub fn with_group_mode(group_mode: GroupMode) -> Self {
        CpuStageProfiler {
            pool: ScratchPool::new(),
            graphs: Mutex::new(HashMap::new()),
            weights: Mutex::new(HashMap::new()),
            group_mode,
            load: None,
            precision: WeightPrecision::F32,
        }
    }

    /// Profiles with weights precomputed at `precision`, so int8 serving
    /// optimizes against measured int8 stage costs.
    #[must_use]
    pub fn with_precision(mut self, precision: WeightPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Profiles every stage under `threads` background load workers —
    /// measurements for a *serving* machine, where concurrent batches and
    /// pipeline stage neighbours contend for cores and cache, rather than
    /// an idle one. The load idles between runs; 0 threads is a no-op.
    #[must_use]
    pub fn with_background_load(mut self, threads: usize) -> Self {
        self.load = (threads > 0).then(|| BackgroundLoad::new(threads));
        self
    }

    /// The background load this profiler measures under, if any.
    #[must_use]
    pub fn background_load(&self) -> Option<&BackgroundLoad> {
        self.load.as_ref()
    }

    /// Whether `graph`'s concurrent stages run their groups on threads
    /// under this profiler's [`GroupMode`].
    fn parallel_groups_for(&self, graph: &Graph) -> bool {
        match self.group_mode {
            GroupMode::Parallel => true,
            GroupMode::Serial => false,
            GroupMode::MatchServing => graph
                .input_shapes()
                .first()
                .is_none_or(|shape| shape.batch <= 1),
        }
    }

    /// The shared precomputed weights for `graph`'s block structure,
    /// built once and reused by every batch-resized instance.
    fn weights_for(&self, graph: &Graph) -> Arc<BlockWeights> {
        let key = weights_fingerprint(graph);
        let mut weights = self.weights.lock().expect("weights map lock");
        Arc::clone(
            weights
                .entry(key)
                .or_insert_with(|| Arc::new(BlockWeights::precompute_as(graph, self.precision))),
        )
    }

    /// Number of distinct graphs with warmed profiling state.
    #[must_use]
    pub fn warmed_graphs(&self) -> usize {
        self.graphs.lock().expect("graph map lock").len()
    }

    /// Scratch-pool counters `(fresh heap allocations, pool reuses)` — in
    /// steady-state profiling of a stage the fresh count stays flat.
    #[must_use]
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.fresh_allocations(), self.pool.reuses())
    }

    fn state_for(&self, graph: &Graph) -> Arc<Mutex<GraphState>> {
        let fingerprint = graph_fingerprint(graph);
        if let Some(state) = self
            .graphs
            .lock()
            .expect("graph map lock")
            .get(&fingerprint)
        {
            return Arc::clone(state);
        }
        // Build outside the map lock (weight precompute + tensor seeding
        // is the expensive part); a racing builder's duplicate is dropped.
        let built = Arc::new(Mutex::new(GraphState::build(
            graph,
            fingerprint,
            self.weights_for(graph),
        )));
        let mut graphs = self.graphs.lock().expect("graph map lock");
        Arc::clone(graphs.entry(fingerprint).or_insert(built))
    }

    /// Runs one stage against the graph's warmed state: the stage ops'
    /// previous outputs are recycled into the pool first (so the run's own
    /// takes reuse them — allocation-free in steady state), then the stage
    /// executes through [`execute_stage`] and leaves fresh outputs in the
    /// state for any later stage that depends on them.
    fn run_stage(&self, graph: &Graph, stage: &Stage) {
        let _churning = self.load.as_ref().map(|load| {
            load.activate();
            ActiveLoad(load)
        });
        let state = self.state_for(graph);
        let mut state = state.lock().expect("graph state lock");
        for op in stage.ops.iter() {
            if let Some(previous) = state.outputs[op.index()].take() {
                self.pool.recycle_tensor(previous);
            }
        }
        let GraphState {
            weights,
            inputs,
            outputs,
        } = &mut *state;
        execute_stage(
            graph,
            stage,
            inputs,
            Some(weights),
            outputs,
            &self.pool,
            self.parallel_groups_for(graph),
        );
    }
}

impl StageProfiler for CpuStageProfiler {
    fn run_concurrent(&self, graph: &Graph, groups: &[Vec<OpId>]) {
        let ops: OpSet = groups.iter().flatten().copied().collect();
        let stage = Stage {
            ops,
            strategy: ParallelizationStrategy::ConcurrentExecution,
            groups: groups.to_vec(),
            measured_latency_us: 0.0,
        };
        self.run_stage(graph, &stage);
    }

    fn run_merge(&self, graph: &Graph, merged: &MergedConv) {
        let stage = Stage {
            ops: merged.parts.iter().copied().collect(),
            strategy: ParallelizationStrategy::OperatorMerge,
            groups: vec![merged.parts.clone()],
            measured_latency_us: 0.0,
        };
        self.run_stage(graph, &stage);
    }

    fn device_name(&self) -> &'static str {
        "cpu-backend"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::verify_schedule;
    use ios_core::{schedule_graph, CostModel, ProfiledCostModel, SchedulerConfig};
    use ios_ir::{Conv2dParams, GraphBuilder, PoolParams, TensorShape};

    /// A multi-branch block with mergeable convolutions — the same shape
    /// family the executor tests pin down.
    fn branchy() -> Graph {
        let mut b = GraphBuilder::new("profile_block", TensorShape::new(1, 8, 10, 10));
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(12, (1, 1), (1, 1), (0, 0)));
        let d = b.conv2d("d", a, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let p = b.pool("p", x, PoolParams::max((3, 3), (2, 2), (0, 0)));
        let pc = b.conv2d("pc", p, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[c, d]);
        b.build(vec![cat, pc])
    }

    #[test]
    fn profiles_concurrent_and_merge_stages_with_warmed_state() {
        let g = branchy();
        let profiler = CpuStageProfiler::new();
        // A mid-graph stage whose ops read predecessors outside the stage:
        // resolved from the warmed per-op state.
        profiler.run_concurrent(&g, &[vec![OpId(2)], vec![OpId(3), OpId(4)]]);
        assert_eq!(profiler.warmed_graphs(), 1);
        // The mergeable pair runs through the packed merged-weight path.
        let merged = ios_core::try_merge(&g, [OpId(0), OpId(1)].into_iter().collect()).unwrap();
        profiler.run_merge(&g, &merged);
        assert_eq!(profiler.warmed_graphs(), 1, "same graph, same state");

        // Steady state: repeating a stage allocates nothing fresh.
        profiler.run_concurrent(&g, &[vec![OpId(2)], vec![OpId(3), OpId(4)]]);
        let (fresh, _) = profiler.pool_stats();
        profiler.run_concurrent(&g, &[vec![OpId(2)], vec![OpId(3), OpId(4)]]);
        let (fresh_after, reuses) = profiler.pool_stats();
        assert_eq!(
            fresh_after, fresh,
            "repeat stage runs must be allocation-free"
        );
        assert!(reuses > 0);
    }

    #[test]
    fn profiled_dp_schedule_executes_correctly_on_the_backend() {
        // The full loop: optimize against CPU-measured stage latencies,
        // then execute the winning schedule on the same backend and check
        // it preserves the network's semantics.
        let g = branchy();
        let cost = ProfiledCostModel::with_policy(CpuStageProfiler::new(), 1, 3);
        let result = schedule_graph(&g, &cost, &SchedulerConfig::paper_default());
        assert!(result.schedule.validate(&g).is_ok());
        assert!(result.latency_us > 0.0);
        assert!(cost.measurement_count() > 0);
        let diff = verify_schedule(&g, &result.schedule, 17);
        assert!(diff < 1e-3, "difference = {diff}");
    }

    #[test]
    fn under_load_profiling_churns_only_during_stage_runs() {
        let g = branchy();
        let profiler = CpuStageProfiler::new().with_background_load(2);
        let load_threads = profiler.background_load().unwrap().num_threads();
        assert_eq!(load_threads, 2);
        // One stage run can be shorter than the OS takes to schedule a
        // freshly woken load worker (especially on a contended one-core
        // host), so repeat the measurement window until the load has
        // provably churned — bounded, and almost always the first run.
        let mut runs = 0;
        while profiler.background_load().unwrap().work_done() == 0 {
            assert!(
                runs < 200,
                "the load never churned during {runs} stage runs"
            );
            profiler.run_concurrent(&g, &[vec![OpId(0)], vec![OpId(1)]]);
            runs += 1;
        }
        // Idle between runs: the load stops churning (give the workers
        // time to finish an in-flight chunk and observe the flag).
        std::thread::sleep(std::time::Duration::from_millis(20));
        let idle_base = profiler.background_load().unwrap().work_done();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(
            profiler.background_load().unwrap().work_done(),
            idle_base,
            "an idle profiler must not burn CPU"
        );
        // Zero threads is a clean no-op.
        let unloaded = CpuStageProfiler::new().with_background_load(0);
        assert!(unloaded.background_load().is_none());
    }

    #[test]
    fn distinct_batch_sizes_get_distinct_profiles() {
        let g1 = branchy();
        // The same block at batch 4: structurally identical, different
        // shapes — must warm a separate state (and measure differently).
        let mut b = GraphBuilder::new("profile_block", TensorShape::new(4, 8, 10, 10));
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(12, (1, 1), (1, 1), (0, 0)));
        let d = b.conv2d("d", a, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let p = b.pool("p", x, PoolParams::max((3, 3), (2, 2), (0, 0)));
        let pc = b.conv2d("pc", p, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[c, d]);
        let g4 = b.build(vec![cat, pc]);

        let profiler = CpuStageProfiler::new();
        profiler.run_concurrent(&g1, &[vec![OpId(0)], vec![OpId(1)]]);
        profiler.run_concurrent(&g4, &[vec![OpId(0)], vec![OpId(1)]]);
        assert_eq!(
            profiler.warmed_graphs(),
            2,
            "batch-1 and batch-4 instances are distinct profiling targets"
        );
        // …but share one precomputed weight table (weights are
        // batch-size independent).
        assert_eq!(
            profiler.weights.lock().unwrap().len(),
            1,
            "batch-resized instances must share one BlockWeights"
        );
        // MatchServing resolves per instance: threaded groups at batch 1
        // (how a lone request executes), serial at batch > 1 (inside the
        // per-sample batch workers).
        let serving = CpuStageProfiler::with_group_mode(GroupMode::MatchServing);
        assert!(serving.parallel_groups_for(&g1));
        assert!(!serving.parallel_groups_for(&g4));
    }
}
