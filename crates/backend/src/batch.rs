//! Batched, weight-reusing network execution — the serving entry point.
//!
//! [`execute_graph`](crate::execute_graph) regenerates every operator's
//! deterministic weights on each call, which is fine for one-off
//! verification but wasteful when a serving runtime executes the same
//! network for every incoming batch. This module precomputes the weights
//! once ([`NetworkWeights`]) and executes whole networks (block chains) with
//! them, plus the batch stacking/splitting helpers the `ios-serve` dynamic
//! batcher uses to coalesce single-sample requests.
//!
//! Weights depend only on the graph name, the operator index and the
//! (batch-invariant) channel configuration, so one [`NetworkWeights`] is
//! valid for *every* batch size of the same network
//! ([`ios_ir::Network::with_batch_size`] preserves names and indices).
//! Per-sample results are bit-identical to running each sample alone
//! through [`crate::execute_graph`]: every operator treats batch items
//! independently and in the same order.

use crate::executor::{execute_graph_with, execute_schedule_with, weight_seed};
use crate::ops_cpu::{conv_weights, matmul_weights};
use crate::tensor_data::TensorData;
use ios_core::NetworkSchedule;
use ios_ir::{Graph, Network, OpId, OpKind, TensorShape, Value};

/// Precomputed weights of one operator.
#[derive(Debug, Clone)]
pub enum OpWeights {
    /// Dense / grouped convolution filter, layout `[out_c][in_c/g][kh][kw]`.
    Conv(Vec<f32>),
    /// Separable convolution: depthwise then pointwise filters.
    SepConv {
        /// Depthwise k×k filter, one output channel per input channel.
        depthwise: Vec<f32>,
        /// Pointwise 1×1 filter.
        pointwise: Vec<f32>,
    },
    /// Fully connected weight matrix, layout `[out][in]`.
    MatMul(Vec<f32>),
}

/// Precomputed weights for every weighted operator of one graph.
#[derive(Debug, Clone, Default)]
pub struct BlockWeights {
    by_op: Vec<Option<OpWeights>>,
}

impl BlockWeights {
    /// Generates the weights of every weighted operator of `graph`, using
    /// the same seeds as the on-the-fly path so results stay bit-identical.
    #[must_use]
    pub fn precompute(graph: &Graph) -> Self {
        let by_op = graph
            .ops()
            .iter()
            .map(|op| {
                let seed = weight_seed(graph, op.id);
                let input_shape = |value: Value| -> TensorShape {
                    match value {
                        Value::Input(i) => graph.input_shapes()[i],
                        Value::Op(id) => graph.op(id).output_shape,
                    }
                };
                match &op.kind {
                    OpKind::Conv2d(p) => {
                        let in_c = input_shape(op.inputs[0]).channels / p.groups;
                        Some(OpWeights::Conv(conv_weights(
                            seed,
                            p.out_channels,
                            in_c,
                            p.kernel,
                        )))
                    }
                    OpKind::SepConv2d(p) => {
                        let in_c = input_shape(op.inputs[0]).channels;
                        Some(OpWeights::SepConv {
                            depthwise: conv_weights(seed ^ 0xD17, in_c, 1, p.kernel),
                            pointwise: conv_weights(
                                seed ^ 0x0009_0117,
                                p.out_channels,
                                in_c,
                                (1, 1),
                            ),
                        })
                    }
                    OpKind::MatMul(p) => {
                        let in_features = input_shape(op.inputs[0]).elements_per_item();
                        Some(OpWeights::MatMul(matmul_weights(
                            seed,
                            p.out_features,
                            in_features,
                        )))
                    }
                    OpKind::Pool(_)
                    | OpKind::Concat
                    | OpKind::Add
                    | OpKind::Relu
                    | OpKind::Identity => None,
                }
            })
            .collect();
        BlockWeights { by_op }
    }

    /// The precomputed weights of `op`, if it is a weighted operator.
    #[must_use]
    pub fn get(&self, op: OpId) -> Option<&OpWeights> {
        self.by_op.get(op.index()).and_then(Option::as_ref)
    }

    /// The convolution filter of `op`, if it is a convolution.
    #[must_use]
    pub fn conv(&self, op: OpId) -> Option<&[f32]> {
        match self.get(op) {
            Some(OpWeights::Conv(w)) => Some(w),
            _ => None,
        }
    }
}

/// Precomputed weights for every block of a network.
#[derive(Debug, Clone)]
pub struct NetworkWeights {
    network_name: String,
    blocks: Vec<BlockWeights>,
}

impl NetworkWeights {
    /// Generates the weights of every block of `network`.
    #[must_use]
    pub fn precompute(network: &Network) -> Self {
        NetworkWeights {
            network_name: network.name.clone(),
            blocks: network
                .blocks
                .iter()
                .map(|b| BlockWeights::precompute(&b.graph))
                .collect(),
        }
    }

    /// Name of the network the weights were generated for.
    #[must_use]
    pub fn network_name(&self) -> &str {
        &self.network_name
    }

    /// The weights of block `index`.
    #[must_use]
    pub fn block(&self, index: usize) -> &BlockWeights {
        &self.blocks[index]
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of weight parameters held.
    #[must_use]
    pub fn num_parameters(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.by_op.iter().flatten())
            .map(|w| match w {
                OpWeights::Conv(v) | OpWeights::MatMul(v) => v.len(),
                OpWeights::SepConv {
                    depthwise,
                    pointwise,
                } => depthwise.len() + pointwise.len(),
            })
            .sum()
    }
}

/// Resolves the external output tensors of a graph from its per-operator
/// outputs.
fn graph_outputs(
    graph: &Graph,
    inputs: &[TensorData],
    op_outputs: &[TensorData],
) -> Vec<TensorData> {
    graph
        .outputs()
        .iter()
        .map(|value| match value {
            Value::Input(i) => inputs[*i].clone(),
            Value::Op(id) => op_outputs[id.index()].clone(),
        })
        .collect()
}

/// Executes a whole network sequentially (block by block, operators in
/// topological order), regenerating weights on the fly — the reference the
/// serving runtime is checked against. Returns the final block's outputs.
///
/// # Panics
///
/// Panics if `inputs` does not match the first block's input shapes or the
/// blocks do not chain (block `i` outputs ≠ block `i + 1` inputs).
#[must_use]
pub fn execute_network(network: &Network, inputs: &[TensorData]) -> Vec<TensorData> {
    run_network(network, inputs, |graph, tensors| {
        crate::execute_graph(graph, tensors)
    })
}

/// Executes a whole network under a schedule with precomputed weights — the
/// serving fast path. Returns the final block's outputs, bit-identical to
/// [`execute_network`] per sample.
///
/// # Panics
///
/// Panics if the schedule or weights do not belong to this network's
/// structure, or the inputs mismatch.
#[must_use]
pub fn execute_network_scheduled(
    network: &Network,
    schedule: &NetworkSchedule,
    weights: &NetworkWeights,
    inputs: &[TensorData],
) -> Vec<TensorData> {
    assert_eq!(
        network.blocks.len(),
        schedule.block_schedules.len(),
        "schedule and network block counts differ"
    );
    assert_eq!(
        network.blocks.len(),
        weights.num_blocks(),
        "weights and network block counts differ"
    );
    let mut block_index = 0;
    run_network(network, inputs, |graph, tensors| {
        let out = execute_schedule_with(
            graph,
            &schedule.block_schedules[block_index],
            tensors,
            Some(weights.block(block_index)),
        );
        block_index += 1;
        out
    })
}

/// Executes a whole network sequentially with precomputed weights (no
/// schedule) — the one-request-at-a-time baseline with weight reuse.
///
/// # Panics
///
/// Panics if the weights or inputs do not match the network.
#[must_use]
pub fn execute_network_with_weights(
    network: &Network,
    weights: &NetworkWeights,
    inputs: &[TensorData],
) -> Vec<TensorData> {
    let mut block_index = 0;
    run_network(network, inputs, |graph, tensors| {
        let out = execute_graph_with(graph, tensors, Some(weights.block(block_index)));
        block_index += 1;
        out
    })
}

fn run_network(
    network: &Network,
    inputs: &[TensorData],
    mut run_block: impl FnMut(&Graph, &[TensorData]) -> Vec<TensorData>,
) -> Vec<TensorData> {
    let mut current: Vec<TensorData> = inputs.to_vec();
    for block in &network.blocks {
        let op_outputs = run_block(&block.graph, &current);
        current = graph_outputs(&block.graph, &current, &op_outputs);
    }
    current
}

/// Stacks single-sample tensors (batch = 1 each) into one batched tensor
/// along the batch dimension, in order.
///
/// # Panics
///
/// Panics if `samples` is empty or the per-sample shapes disagree.
#[must_use]
pub fn stack_batch(samples: &[&TensorData]) -> TensorData {
    assert!(!samples.is_empty(), "cannot stack an empty batch");
    let item = samples[0].shape;
    let mut data = Vec::with_capacity(item.elements_per_item() * samples.len());
    let mut batch = 0;
    for sample in samples {
        assert_eq!(
            (
                sample.shape.channels,
                sample.shape.height,
                sample.shape.width
            ),
            (item.channels, item.height, item.width),
            "stacked samples must share their per-item shape"
        );
        batch += sample.shape.batch;
        data.extend_from_slice(&sample.data);
    }
    TensorData {
        shape: TensorShape::new(batch, item.channels, item.height, item.width),
        data,
    }
}

/// Splits a batched tensor back into per-sample tensors of batch 1.
#[must_use]
pub fn split_batch(batched: &TensorData) -> Vec<TensorData> {
    let per_item = batched.shape.elements_per_item();
    let item_shape = TensorShape::new(
        1,
        batched.shape.channels,
        batched.shape.height,
        batched.shape.width,
    );
    (0..batched.shape.batch)
        .map(|n| TensorData {
            shape: item_shape,
            data: batched.data[n * per_item..(n + 1) * per_item].to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_core::{optimize_network, SchedulerConfig, SimCostModel};
    use ios_sim::{DeviceKind, Simulator};

    /// A small two-block network with mergeable branches: heavy enough to
    /// exercise concurrent and merged stages, light enough for CI.
    fn tiny_network(batch: usize) -> Network {
        use ios_ir::{Block, Conv2dParams, GraphBuilder, PoolParams, TensorShape};
        let input = TensorShape::new(batch, 8, 10, 10);
        let mut b = GraphBuilder::new("serve_tiny_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(12, (1, 1), (1, 1), (0, 0)));
        let p = b.pool("p", x, PoolParams::max((2, 2), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat, p]));

        let shapes = block0.graph.output_shapes();
        let mut b = GraphBuilder::with_inputs("serve_tiny_b1", shapes);
        let x0 = b.input(0);
        let x1 = b.input(1);
        let d = b.conv2d("d", x0, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let e = b.conv2d("e", x1, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
        let block1 = Block::new(b.build(vec![d, e]));
        Network::new("serve_tiny", input, vec![block0, block1])
    }

    #[test]
    fn stack_and_split_round_trip() {
        let shape = TensorShape::new(1, 3, 4, 4);
        let samples: Vec<TensorData> = (0..5).map(|i| TensorData::random(shape, 100 + i)).collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let batched = stack_batch(&refs);
        assert_eq!(batched.shape, TensorShape::new(5, 3, 4, 4));
        let back = split_batch(&batched);
        assert_eq!(back, samples);
    }

    #[test]
    fn precomputed_weights_match_on_the_fly_execution() {
        let net = tiny_network(1);
        let weights = NetworkWeights::precompute(&net);
        assert!(weights.num_parameters() > 0);
        let input = TensorData::random(net.input_shape, 42);
        let reference = execute_network(&net, std::slice::from_ref(&input));
        let reused = execute_network_with_weights(&net, &weights, &[input]);
        assert_eq!(reference, reused, "weight reuse must be bit-identical");
    }

    #[test]
    fn scheduled_batched_execution_is_bitwise_per_sample() {
        let net1 = tiny_network(1);
        let batch = 3;
        let net_b = net1.with_batch_size(batch);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let schedule = optimize_network(&net_b, &cost, &SchedulerConfig::paper_default()).schedule;
        let weights = NetworkWeights::precompute(&net_b);

        let samples: Vec<TensorData> = (0..batch)
            .map(|i| TensorData::random(net1.input_shape, 7 + i as u64))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = stack_batch(&refs);
        let batched_out = execute_network_scheduled(&net_b, &schedule, &weights, &[stacked]);
        assert_eq!(batched_out.len(), 2, "the tiny network has two outputs");
        let per_output_samples: Vec<Vec<TensorData>> =
            batched_out.iter().map(split_batch).collect();

        for (i, sample) in samples.iter().enumerate() {
            let reference = execute_network(&net1, std::slice::from_ref(sample));
            for (o, reference_out) in reference.iter().enumerate() {
                assert_eq!(
                    &per_output_samples[o][i], reference_out,
                    "sample {i}, output {o} must match its solo execution bit-for-bit"
                );
            }
        }
    }
}
