//! Batched, weight-reusing network execution — the serving entry point.
//!
//! [`execute_graph`](crate::execute_graph) regenerates every operator's
//! deterministic weights on each call, which is fine for one-off
//! verification but wasteful when a serving runtime executes the same
//! network for every incoming batch. This module precomputes the weights
//! once ([`NetworkWeights`]) and executes whole networks (block chains) with
//! them, plus the batch stacking/splitting helpers the `ios-serve` dynamic
//! batcher uses to coalesce single-sample requests.
//!
//! Weights depend only on the graph name, the operator index and the
//! (batch-invariant) channel configuration, so one [`NetworkWeights`] is
//! valid for *every* batch size of the same network
//! ([`ios_ir::Network::with_batch_size`] preserves names and indices).
//! Per-sample results are bit-identical to running each sample alone
//! through [`crate::execute_graph`]: every operator treats batch items
//! independently and in the same order.

use crate::arena::ScratchPool;
use crate::executor::{
    execute_graph_pooled, execute_graph_with, execute_schedule_pooled,
    execute_schedule_pooled_serial, execute_schedule_with, relu_fold_plan, weight_seed, FoldedRelu,
};
use crate::gemm::{PackedFilter, QuantizedFilter};
use crate::ops_cpu::{conv_weights, matmul_weights, sep_conv_seeds};
use crate::tensor_data::TensorData;
use ios_core::{MergedConv, NetworkSchedule};
use ios_ir::{Graph, Network, OpId, OpKind, OpSet, TensorShape, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The numeric representation weights are precomputed into — selects the
/// kernel path every weighted operator of the block executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WeightPrecision {
    /// f32 tile-major packed panels; bit-identical to the naive oracle.
    #[default]
    F32,
    /// Int8 pair-interleaved panels with per-output-channel scales; the
    /// integer path carries its own byte-identity determinism contract
    /// and a calibration-error bound against the f32 oracle. Matmul
    /// classifier heads and depthwise stages stay f32 (their reductions
    /// are too shallow for quantization to pay).
    Int8,
}

/// Precomputed weights of one operator. Convolution filters are
/// pre-packed into the GEMM microkernel's tile-major layout
/// ([`PackedFilter`]) — or, under [`WeightPrecision::Int8`], quantized
/// into pair-interleaved int8 panels ([`QuantizedFilter`]) at a quarter
/// of the footprint — so the serving hot path streams `A` contiguously.
/// Exactly one of the two kernel forms is held per conv. Dense
/// convolutions additionally keep the natural layout, which the merge
/// stage stacks into merged kernels (separable convolutions are never
/// merged, so storing their natural filters would only double the weight
/// memory).
#[derive(Debug, Clone)]
pub enum OpWeights {
    /// Dense / grouped convolution filter.
    Conv {
        /// Natural layout `[out_c][in_c/g][kh][kw]`.
        filter: Vec<f32>,
        /// The filter in tile-major packed layout (f32 precision).
        packed: Option<PackedFilter>,
        /// The filter quantized to int8 panels (int8 precision).
        quantized: Option<QuantizedFilter>,
    },
    /// Separable convolution: depthwise then pointwise filters. The
    /// depthwise stage always stays f32-packed (its reduction is only
    /// `kh·kw` deep); the pointwise stage — where the compute lives —
    /// carries either the packed f32 or the quantized int8 form.
    SepConv {
        /// Depthwise k×k filter (one output channel per input channel) in
        /// tile-major packed layout.
        depthwise_packed: PackedFilter,
        /// Pointwise 1×1 filter in tile-major packed layout (f32).
        pointwise_packed: Option<PackedFilter>,
        /// Pointwise 1×1 filter quantized to int8 panels.
        pointwise_quant: Option<QuantizedFilter>,
    },
    /// Fully connected weight matrix, layout `[out][in]`.
    MatMul(Vec<f32>),
}

/// The weights of one operator-merge stage: the per-part filters stacked
/// (and zero-padded) into the merged kernel, built once per distinct stage
/// and cached in [`BlockWeights`].
#[derive(Debug)]
pub struct MergedWeights {
    /// The merged filter in natural `[out_c][in_c][mkh][mkw]` layout.
    pub filter: Vec<f32>,
    /// The merged filter in tile-major packed layout.
    pub packed: PackedFilter,
}

/// Precomputed weights for every weighted operator of one graph, plus a
/// lazily filled cache of merged-stage weights keyed by the stage's
/// operator set — so executing the same schedule batch after batch stops
/// rebuilding the merged tensor every time.
#[derive(Debug, Default)]
pub struct BlockWeights {
    by_op: Vec<Option<OpWeights>>,
    /// The block's ReLU-fold peephole plan ([`relu_fold_plan`]), computed
    /// once at build time; empty when no weights were precomputed.
    fold_plan: Vec<FoldedRelu>,
    precision: WeightPrecision,
    merged: Mutex<HashMap<OpSet, Arc<MergedWeights>>>,
    merged_builds: AtomicU64,
    merged_hits: AtomicU64,
}

impl Clone for BlockWeights {
    fn clone(&self) -> Self {
        BlockWeights {
            by_op: self.by_op.clone(),
            fold_plan: self.fold_plan.clone(),
            precision: self.precision,
            merged: Mutex::new(self.merged.lock().expect("merged-weight lock").clone()),
            merged_builds: AtomicU64::new(self.merged_builds.load(Ordering::Relaxed)),
            merged_hits: AtomicU64::new(self.merged_hits.load(Ordering::Relaxed)),
        }
    }
}

impl BlockWeights {
    /// Generates the weights of every weighted operator of `graph` at f32
    /// precision, using the same seeds as the on-the-fly path so results
    /// stay bit-identical.
    #[must_use]
    pub fn precompute(graph: &Graph) -> Self {
        Self::precompute_as(graph, WeightPrecision::F32)
    }

    /// [`BlockWeights::precompute`] at an explicit precision: f32 builds
    /// packed panels, int8 quantizes dense-conv and sepconv-pointwise
    /// filters into [`QuantizedFilter`] panels (per-output-channel scale
    /// calibration happens here, at weight-precompute time).
    #[must_use]
    pub fn precompute_as(graph: &Graph, precision: WeightPrecision) -> Self {
        let by_op = graph
            .ops()
            .iter()
            .map(|op| {
                let seed = weight_seed(graph, op.id);
                let input_shape = |value: Value| -> TensorShape {
                    match value {
                        Value::Input(i) => graph.input_shapes()[i],
                        Value::Op(id) => graph.op(id).output_shape,
                    }
                };
                match &op.kind {
                    OpKind::Conv2d(p) => {
                        let in_c = input_shape(op.inputs[0]).channels / p.groups;
                        let k_len = in_c * p.kernel.0 * p.kernel.1;
                        let filter = conv_weights(seed, p.out_channels, in_c, p.kernel);
                        let (packed, quantized) = match precision {
                            WeightPrecision::F32 => (
                                Some(PackedFilter::pack(&filter, p.out_channels, p.groups, k_len)),
                                None,
                            ),
                            WeightPrecision::Int8 => (
                                None,
                                Some(QuantizedFilter::quantize(
                                    &filter,
                                    p.out_channels,
                                    p.groups,
                                    k_len,
                                )),
                            ),
                        };
                        Some(OpWeights::Conv {
                            filter,
                            packed,
                            quantized,
                        })
                    }
                    OpKind::SepConv2d(p) => {
                        let in_c = input_shape(op.inputs[0]).channels;
                        let (dw_seed, pw_seed) = sep_conv_seeds(seed);
                        let depthwise = conv_weights(dw_seed, in_c, 1, p.kernel);
                        let depthwise_packed =
                            PackedFilter::pack(&depthwise, in_c, in_c, p.kernel.0 * p.kernel.1);
                        let pointwise = conv_weights(pw_seed, p.out_channels, in_c, (1, 1));
                        let (pointwise_packed, pointwise_quant) = match precision {
                            WeightPrecision::F32 => (
                                Some(PackedFilter::pack(&pointwise, p.out_channels, 1, in_c)),
                                None,
                            ),
                            WeightPrecision::Int8 => (
                                None,
                                Some(QuantizedFilter::quantize(
                                    &pointwise,
                                    p.out_channels,
                                    1,
                                    in_c,
                                )),
                            ),
                        };
                        Some(OpWeights::SepConv {
                            depthwise_packed,
                            pointwise_packed,
                            pointwise_quant,
                        })
                    }
                    OpKind::MatMul(p) => {
                        let in_features = input_shape(op.inputs[0]).elements_per_item();
                        Some(OpWeights::MatMul(matmul_weights(
                            seed,
                            p.out_features,
                            in_features,
                        )))
                    }
                    OpKind::Pool(_)
                    | OpKind::Concat
                    | OpKind::Add
                    | OpKind::Relu
                    | OpKind::Identity => None,
                }
            })
            .collect();
        BlockWeights {
            by_op,
            fold_plan: relu_fold_plan(graph),
            precision,
            ..BlockWeights::default()
        }
    }

    /// The precomputed weights of `op`, if it is a weighted operator.
    #[must_use]
    pub fn get(&self, op: OpId) -> Option<&OpWeights> {
        self.by_op.get(op.index()).and_then(Option::as_ref)
    }

    /// The precision these weights were precomputed at.
    #[must_use]
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// The build-time ReLU-fold plan, if this block was precomputed with
    /// one (`None` for a default-constructed instance — callers then
    /// compute the plan from the graph, which yields the identical plan).
    #[must_use]
    pub fn fold_plan(&self) -> Option<&[FoldedRelu]> {
        if self.fold_plan.is_empty() {
            None
        } else {
            Some(&self.fold_plan)
        }
    }

    /// The convolution filter of `op` (natural layout), if it is a
    /// convolution.
    #[must_use]
    pub fn conv(&self, op: OpId) -> Option<&[f32]> {
        match self.get(op) {
            Some(OpWeights::Conv { filter, .. }) => Some(filter),
            _ => None,
        }
    }

    /// The merged-stage weights for `merged` (an operator-merge stage of a
    /// schedule for this graph), built from the precomputed per-part
    /// filters on first use and served from the cache afterwards — the
    /// merge stage of [`crate::execute_schedule`] stops rebuilding the
    /// merged tensor every batch. Keyed by the stage's operator set.
    ///
    /// # Panics
    ///
    /// Panics if any merged part is not a precomputed convolution of this
    /// block.
    #[must_use]
    pub fn merged_stage(&self, graph: &Graph, merged: &MergedConv) -> Arc<MergedWeights> {
        let key: OpSet = merged.parts.iter().copied().collect();
        if let Some(cached) = self.merged.lock().expect("merged-weight lock").get(&key) {
            self.merged_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }
        let in_c = merged.input_shape.channels;
        let (mkh, mkw) = merged.params.kernel;
        let mut filter = vec![0.0f32; merged.params.out_channels * in_c * mkh * mkw];
        stack_merged_filter(graph, merged, &mut filter, |part, _| {
            std::borrow::Cow::Borrowed(
                self.conv(part)
                    .expect("merged part must be a precomputed convolution"),
            )
        });
        let packed = PackedFilter::pack(
            &filter,
            merged.params.out_channels,
            merged.params.groups,
            (in_c / merged.params.groups) * mkh * mkw,
        );
        let built = Arc::new(MergedWeights { filter, packed });
        self.merged_builds.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.merged.lock().expect("merged-weight lock");
        // Two threads may race to build the same stage; both results are
        // identical, keep whichever landed first.
        Arc::clone(cache.entry(key).or_insert(built))
    }

    /// Number of merged-stage weight tensors built (cache misses).
    #[must_use]
    pub fn merged_builds(&self) -> u64 {
        self.merged_builds.load(Ordering::Relaxed)
    }

    /// Number of merged-stage requests served from the cache.
    #[must_use]
    pub fn merged_hits(&self) -> u64 {
        self.merged_hits.load(Ordering::Relaxed)
    }
}

/// Stacks the per-part filters of `merged` into `dst` (pre-zeroed, length
/// `out_c · in_c · mkh · mkw`), zero-padding smaller kernels so they stay
/// centred inside the merged kernel — the single definition both the
/// cached ([`BlockWeights::merged_stage`]) and the regenerating
/// (`execute_schedule` without precomputed weights) paths build from, so
/// the two can never drift apart. `part_filter` supplies each part's
/// filter in natural `[out_c][in_c][kh][kw]` layout.
///
/// # Panics
///
/// Panics if any merged part is not a convolution of `graph`.
pub(crate) fn stack_merged_filter<'a>(
    graph: &Graph,
    merged: &MergedConv,
    dst: &mut [f32],
    part_filter: impl Fn(OpId, &ios_ir::Conv2dParams) -> std::borrow::Cow<'a, [f32]>,
) {
    let in_c = merged.input_shape.channels;
    let (mkh, mkw) = merged.params.kernel;
    let mut oc_offset = 0usize;
    for &part in &merged.parts {
        let op = graph.op(part);
        let OpKind::Conv2d(p) = &op.kind else {
            panic!("merged parts must be convolutions")
        };
        let part_weights = part_filter(part, p);
        let (kh, kw) = p.kernel;
        let (dy, dx) = ((mkh - kh) / 2, (mkw - kw) / 2);
        for oc in 0..p.out_channels {
            for ic in 0..in_c {
                for y in 0..kh {
                    let src = ((oc * in_c + ic) * kh + y) * kw;
                    let at = (((oc_offset + oc) * in_c + ic) * mkh + y + dy) * mkw + dx;
                    dst[at..at + kw].copy_from_slice(&part_weights[src..src + kw]);
                }
            }
        }
        oc_offset += p.out_channels;
    }
}

/// Precomputed weights for every block of a network.
#[derive(Debug, Clone)]
pub struct NetworkWeights {
    network_name: String,
    blocks: Vec<BlockWeights>,
}

/// The weight-cache memory held by a [`NetworkWeights`], split by
/// representation — the numbers behind the serving engine's
/// `ios_weight_cache_*_bytes` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightFootprint {
    /// Bytes of f32 weight arrays (natural filters kept for merge
    /// stacking, packed panels, matmul matrices).
    pub f32_bytes: usize,
    /// Bytes of int8 quantized panels plus their per-channel scales.
    pub int8_bytes: usize,
}

impl WeightFootprint {
    /// Total bytes across both representations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.f32_bytes + self.int8_bytes
    }
}

impl NetworkWeights {
    /// Generates the weights of every block of `network` at f32 precision.
    #[must_use]
    pub fn precompute(network: &Network) -> Self {
        Self::precompute_as(network, WeightPrecision::F32)
    }

    /// [`NetworkWeights::precompute`] at an explicit precision.
    #[must_use]
    pub fn precompute_as(network: &Network, precision: WeightPrecision) -> Self {
        NetworkWeights {
            network_name: network.name.clone(),
            blocks: network
                .blocks
                .iter()
                .map(|b| BlockWeights::precompute_as(&b.graph, precision))
                .collect(),
        }
    }

    /// The precision the blocks were precomputed at.
    #[must_use]
    pub fn precision(&self) -> WeightPrecision {
        self.blocks
            .first()
            .map(BlockWeights::precision)
            .unwrap_or_default()
    }

    /// The weight-cache bytes held, split by representation. Counts every
    /// weight array resident in memory: natural filters (kept for merge
    /// stacking), packed f32 panels or quantized int8 panels (+scales),
    /// and matmul matrices — so the int8 footprint reduction is directly
    /// observable.
    #[must_use]
    pub fn footprint(&self) -> WeightFootprint {
        let f32_size = std::mem::size_of::<f32>();
        let mut fp = WeightFootprint::default();
        for w in self.blocks.iter().flat_map(|b| b.by_op.iter().flatten()) {
            match w {
                OpWeights::Conv {
                    filter,
                    packed,
                    quantized,
                } => {
                    fp.f32_bytes += filter.len() * f32_size;
                    if let Some(p) = packed {
                        fp.f32_bytes += p.num_elements() * f32_size;
                    }
                    if let Some(q) = quantized {
                        fp.int8_bytes += q.footprint_bytes();
                    }
                }
                OpWeights::SepConv {
                    depthwise_packed,
                    pointwise_packed,
                    pointwise_quant,
                } => {
                    fp.f32_bytes += depthwise_packed.num_elements() * f32_size;
                    if let Some(p) = pointwise_packed {
                        fp.f32_bytes += p.num_elements() * f32_size;
                    }
                    if let Some(q) = pointwise_quant {
                        fp.int8_bytes += q.footprint_bytes();
                    }
                }
                OpWeights::MatMul(m) => fp.f32_bytes += m.len() * f32_size,
            }
        }
        fp
    }

    /// Name of the network the weights were generated for.
    #[must_use]
    pub fn network_name(&self) -> &str {
        &self.network_name
    }

    /// The weights of block `index`.
    #[must_use]
    pub fn block(&self, index: usize) -> &BlockWeights {
        &self.blocks[index]
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of weight parameters held.
    #[must_use]
    pub fn num_parameters(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.by_op.iter().flatten())
            .map(|w| match w {
                OpWeights::Conv { filter, .. } => filter.len(),
                OpWeights::MatMul(v) => v.len(),
                OpWeights::SepConv {
                    depthwise_packed,
                    pointwise_packed,
                    pointwise_quant,
                } => {
                    depthwise_packed.num_weights()
                        + pointwise_packed
                            .as_ref()
                            .map_or(0, PackedFilter::num_weights)
                        + pointwise_quant
                            .as_ref()
                            .map_or(0, QuantizedFilter::num_weights)
                }
            })
            .sum()
    }
}

/// Resolves the external output tensors of a graph from its per-operator
/// outputs.
fn graph_outputs(
    graph: &Graph,
    inputs: &[TensorData],
    op_outputs: &[TensorData],
) -> Vec<TensorData> {
    graph
        .outputs()
        .iter()
        .map(|value| match value {
            Value::Input(i) => inputs[*i].clone(),
            Value::Op(id) => op_outputs[id.index()].clone(),
        })
        .collect()
}

/// Executes a whole network sequentially (block by block, operators in
/// topological order), regenerating weights on the fly — the reference the
/// serving runtime is checked against. Returns the final block's outputs.
///
/// # Panics
///
/// Panics if `inputs` does not match the first block's input shapes or the
/// blocks do not chain (block `i` outputs ≠ block `i + 1` inputs).
#[must_use]
pub fn execute_network(network: &Network, inputs: &[TensorData]) -> Vec<TensorData> {
    run_network(network, inputs, |graph, tensors| {
        crate::execute_graph(graph, tensors)
    })
}

/// Executes a whole network under a schedule with precomputed weights — the
/// serving fast path. Returns the final block's outputs, bit-identical to
/// [`execute_network`] per sample.
///
/// # Panics
///
/// Panics if the schedule or weights do not belong to this network's
/// structure, or the inputs mismatch.
#[must_use]
pub fn execute_network_scheduled(
    network: &Network,
    schedule: &NetworkSchedule,
    weights: &NetworkWeights,
    inputs: &[TensorData],
) -> Vec<TensorData> {
    assert_eq!(
        network.blocks.len(),
        schedule.block_schedules.len(),
        "schedule and network block counts differ"
    );
    assert_eq!(
        network.blocks.len(),
        weights.num_blocks(),
        "weights and network block counts differ"
    );
    let mut block_index = 0;
    run_network(network, inputs, |graph, tensors| {
        let out = execute_schedule_with(
            graph,
            &schedule.block_schedules[block_index],
            tensors,
            Some(weights.block(block_index)),
        );
        block_index += 1;
        out
    })
}

/// Executes a whole network sequentially with precomputed weights (no
/// schedule) — the one-request-at-a-time baseline with weight reuse.
///
/// # Panics
///
/// Panics if the weights or inputs do not match the network.
#[must_use]
pub fn execute_network_with_weights(
    network: &Network,
    weights: &NetworkWeights,
    inputs: &[TensorData],
) -> Vec<TensorData> {
    let mut block_index = 0;
    run_network(network, inputs, |graph, tensors| {
        let out = execute_graph_with(graph, tensors, Some(weights.block(block_index)));
        block_index += 1;
        out
    })
}

fn run_network(
    network: &Network,
    inputs: &[TensorData],
    mut run_block: impl FnMut(&Graph, &[TensorData]) -> Vec<TensorData>,
) -> Vec<TensorData> {
    let mut current: Vec<TensorData> = inputs.to_vec();
    for block in &network.blocks {
        let op_outputs = run_block(&block.graph, &current);
        current = graph_outputs(&block.graph, &current, &op_outputs);
    }
    current
}

/// A pooled copy of `tensor`.
fn copy_pooled(tensor: &TensorData, arena: &ScratchPool) -> TensorData {
    let mut out = arena.take_tensor(tensor.shape);
    out.data.copy_from_slice(&tensor.data);
    out
}

/// A pooled copy of sample `n` of a stacked tensor (batch dimension 1).
pub(crate) fn sample_pooled(batched: &TensorData, n: usize, arena: &ScratchPool) -> TensorData {
    let per_item = batched.shape.elements_per_item();
    let item_shape = TensorShape::new(
        1,
        batched.shape.channels,
        batched.shape.height,
        batched.shape.width,
    );
    let mut out = arena.take_tensor(item_shape);
    out.data
        .copy_from_slice(&batched.data[n * per_item..(n + 1) * per_item]);
    out
}

/// Executes one sample (or one already-stacked batch) through the whole
/// network with pooled storage, consuming `inputs` and recycling every
/// intermediate tensor — the zero-allocation op loop of the serving
/// runtime. Runs each block under its schedule when one is given,
/// sequentially otherwise; bit-identical to [`execute_network`] either way.
fn execute_network_sample_pooled(
    network: &Network,
    schedule: Option<&NetworkSchedule>,
    weights: &NetworkWeights,
    inputs: Vec<TensorData>,
    arena: &ScratchPool,
    serial_stages: bool,
) -> Vec<TensorData> {
    execute_network_blocks_pooled(
        network,
        schedule,
        weights,
        0..network.blocks.len(),
        inputs,
        arena,
        serial_stages,
    )
}

/// Executes one sample through a contiguous **block range** of the network
/// with pooled storage — the unit a pipeline segment worker runs. `inputs`
/// are the external inputs of the range's first block (the network inputs
/// for block 0, the previous block's outputs otherwise); the return value
/// is the last block's outputs, ready to feed the next range. Running the
/// ranges of any contiguous partition in order is bit-identical to one
/// whole-network pass, because the hand-off tensors are exactly the block
/// outputs the whole-network loop threads through.
pub(crate) fn execute_network_blocks_pooled(
    network: &Network,
    schedule: Option<&NetworkSchedule>,
    weights: &NetworkWeights,
    blocks: std::ops::Range<usize>,
    inputs: Vec<TensorData>,
    arena: &ScratchPool,
    serial_stages: bool,
) -> Vec<TensorData> {
    let mut current = inputs;
    for index in blocks {
        let block = &network.blocks[index];
        let op_outputs = match schedule {
            // When several sample workers already cover the cores, nested
            // per-group threads would only oversubscribe them: run the
            // stage groups serially (bit-identical either way).
            Some(s) if serial_stages => execute_schedule_pooled_serial(
                &block.graph,
                &s.block_schedules[index],
                &current,
                Some(weights.block(index)),
                arena,
            ),
            Some(s) => execute_schedule_pooled(
                &block.graph,
                &s.block_schedules[index],
                &current,
                Some(weights.block(index)),
                arena,
            ),
            None => execute_graph_pooled(&block.graph, &current, Some(weights.block(index)), arena),
        };
        let mut op_outputs: Vec<Option<TensorData>> = op_outputs.into_iter().map(Some).collect();
        let declared = block.graph.outputs();
        let mut next: Vec<TensorData> = Vec::with_capacity(declared.len());
        for (j, value) in declared.iter().enumerate() {
            let tensor = match value {
                Value::Input(i) => copy_pooled(&current[*i], arena),
                Value::Op(id) => {
                    // An op may be listed as a graph output more than once;
                    // only the first occurrence can take ownership.
                    if let Some(prev) = declared[..j].iter().position(|u| u == value) {
                        copy_pooled(&next[prev], arena)
                    } else {
                        op_outputs[id.index()].take().expect("op executed")
                    }
                }
            };
            next.push(tensor);
        }
        for t in op_outputs.into_iter().flatten() {
            arena.recycle_tensor(t);
        }
        for t in current {
            arena.recycle_tensor(t);
        }
        current = next;
    }
    current
}

/// Executes a stacked batch by running every sample independently on scoped
/// worker threads — the CPU serving fast path. Each sample runs the whole
/// network (under `schedule` when given) with pooled, allocation-free
/// storage; because every operator treats batch items independently, the
/// restacked outputs are **bit-identical** to
/// [`execute_network_scheduled`] on the stacked batch, and to solo
/// [`execute_network`] runs per sample — regardless of worker count or
/// completion order.
///
/// `network` may be shaped for any batch size; the per-sample instance is
/// derived once per call when needed (pass the batch-1 instance to avoid
/// it). The returned stacked outputs draw their storage from `arena`:
/// recycle them after use to keep the full serving boundary
/// allocation-free (dropping them is also safe — they are ordinary
/// tensors); all per-sample scratch returns to `arena` before this
/// returns.
///
/// # Panics
///
/// Panics if the inputs disagree on batch size, or the schedule/weights do
/// not match the network.
#[must_use]
pub fn execute_network_batched(
    network: &Network,
    schedule: Option<&NetworkSchedule>,
    weights: &NetworkWeights,
    inputs: &[TensorData],
    arena: &ScratchPool,
) -> Vec<TensorData> {
    execute_network_batched_capped(network, schedule, weights, inputs, arena, usize::MAX)
}

/// [`execute_network_batched`] with the sample-worker fan-out capped at
/// `max_workers`. A serving runtime that already runs several dispatch
/// workers should split the cores between them (each batch otherwise
/// spawns `available_parallelism` threads and the products oversubscribe
/// the host); `1` runs the samples serially on one worker, which is also
/// fully deterministic for allocation-accounting tests. Results are
/// bit-identical for every cap.
///
/// # Panics
///
/// Same conditions as [`execute_network_batched`].
#[must_use]
pub fn execute_network_batched_capped(
    network: &Network,
    schedule: Option<&NetworkSchedule>,
    weights: &NetworkWeights,
    inputs: &[TensorData],
    arena: &ScratchPool,
    max_workers: usize,
) -> Vec<TensorData> {
    assert!(!inputs.is_empty(), "cannot execute a batch of no inputs");
    let batch = inputs[0].shape.batch;
    assert!(
        inputs.iter().all(|t| t.shape.batch == batch),
        "stacked inputs must agree on batch size"
    );
    let derived;
    let per_sample: &Network = if network.input_shape.batch == 1 {
        network
    } else {
        derived = network.with_batch_size(1);
        &derived
    };
    if let Some(s) = schedule {
        assert_eq!(
            per_sample.blocks.len(),
            s.block_schedules.len(),
            "schedule and network block counts differ"
        );
    }
    assert_eq!(
        per_sample.blocks.len(),
        weights.num_blocks(),
        "weights and network block counts differ"
    );

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(batch)
        .min(max_workers)
        .max(1);
    let chunk = batch.div_ceil(workers);
    let mut per_sample_outputs: Vec<Option<Vec<TensorData>>> = (0..batch).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (worker, slots) in per_sample_outputs.chunks_mut(chunk).enumerate() {
            let start = worker * chunk;
            scope.spawn(move || {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    let n = start + offset;
                    let sample_inputs: Vec<TensorData> =
                        inputs.iter().map(|t| sample_pooled(t, n, arena)).collect();
                    *slot = Some(execute_network_sample_pooled(
                        per_sample,
                        schedule,
                        weights,
                        sample_inputs,
                        arena,
                        batch > 1,
                    ));
                }
            });
        }
    });

    // Restack: per-sample outputs are recycled; the stacked results are
    // drawn from `arena` so the caller can recycle them too and keep the
    // whole serving boundary allocation-free.
    let num_outputs = per_sample_outputs[0]
        .as_ref()
        .expect("sample executed")
        .len();
    let mut stacked = Vec::with_capacity(num_outputs);
    for o in 0..num_outputs {
        let samples: Vec<&TensorData> = per_sample_outputs
            .iter()
            .map(|sample| &sample.as_ref().expect("sample executed")[o])
            .collect();
        stacked.push(stack_batch_pooled(&samples, arena));
    }
    for sample in per_sample_outputs.into_iter().flatten() {
        for t in sample {
            arena.recycle_tensor(t);
        }
    }
    stacked
}

/// Stacks single-sample tensors (batch = 1 each) into one batched tensor
/// along the batch dimension, in order.
///
/// # Panics
///
/// Panics if `samples` is empty or the per-sample shapes disagree.
#[must_use]
pub fn stack_batch(samples: &[&TensorData]) -> TensorData {
    assert!(!samples.is_empty(), "cannot stack an empty batch");
    let item = samples[0].shape;
    let mut data = Vec::with_capacity(item.elements_per_item() * samples.len());
    let mut batch = 0;
    for sample in samples {
        assert_eq!(
            (
                sample.shape.channels,
                sample.shape.height,
                sample.shape.width
            ),
            (item.channels, item.height, item.width),
            "stacked samples must share their per-item shape"
        );
        batch += sample.shape.batch;
        data.extend_from_slice(&sample.data);
    }
    TensorData {
        shape: TensorShape::new(batch, item.channels, item.height, item.width),
        data,
    }
}

/// [`stack_batch`] drawing the stacked tensor's storage from `arena`
/// instead of the heap — the serving runtime's allocation-free stacking
/// path. The result is bit-identical to [`stack_batch`].
///
/// # Panics
///
/// Panics if `samples` is empty or the per-sample shapes disagree.
#[must_use]
pub fn stack_batch_pooled(samples: &[&TensorData], arena: &ScratchPool) -> TensorData {
    assert!(!samples.is_empty(), "cannot stack an empty batch");
    let item = samples[0].shape;
    let batch: usize = samples
        .iter()
        .map(|sample| {
            assert_eq!(
                (
                    sample.shape.channels,
                    sample.shape.height,
                    sample.shape.width
                ),
                (item.channels, item.height, item.width),
                "stacked samples must share their per-item shape"
            );
            sample.shape.batch
        })
        .sum();
    let mut out = arena.take_tensor(TensorShape::new(
        batch,
        item.channels,
        item.height,
        item.width,
    ));
    let mut offset = 0usize;
    for sample in samples {
        out.data[offset..offset + sample.data.len()].copy_from_slice(&sample.data);
        offset += sample.data.len();
    }
    out
}

/// Splits a batched tensor back into per-sample tensors of batch 1.
#[must_use]
pub fn split_batch(batched: &TensorData) -> Vec<TensorData> {
    let per_item = batched.shape.elements_per_item();
    let item_shape = TensorShape::new(
        1,
        batched.shape.channels,
        batched.shape.height,
        batched.shape.width,
    );
    (0..batched.shape.batch)
        .map(|n| TensorData {
            shape: item_shape,
            data: batched.data[n * per_item..(n + 1) * per_item].to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_core::{optimize_network, SchedulerConfig, SimCostModel};
    use ios_sim::{DeviceKind, Simulator};

    /// A small two-block network with mergeable branches: heavy enough to
    /// exercise concurrent and merged stages, light enough for CI.
    fn tiny_network(batch: usize) -> Network {
        use ios_ir::{Block, Conv2dParams, GraphBuilder, PoolParams, TensorShape};
        let input = TensorShape::new(batch, 8, 10, 10);
        let mut b = GraphBuilder::new("serve_tiny_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(12, (1, 1), (1, 1), (0, 0)));
        let p = b.pool("p", x, PoolParams::max((2, 2), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat, p]));

        let shapes = block0.graph.output_shapes();
        let mut b = GraphBuilder::with_inputs("serve_tiny_b1", shapes);
        let x0 = b.input(0);
        let x1 = b.input(1);
        let d = b.conv2d("d", x0, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let e = b.conv2d("e", x1, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
        let block1 = Block::new(b.build(vec![d, e]));
        Network::new("serve_tiny", input, vec![block0, block1])
    }

    #[test]
    fn stack_and_split_round_trip() {
        let shape = TensorShape::new(1, 3, 4, 4);
        let samples: Vec<TensorData> = (0..5).map(|i| TensorData::random(shape, 100 + i)).collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let batched = stack_batch(&refs);
        assert_eq!(batched.shape, TensorShape::new(5, 3, 4, 4));
        let back = split_batch(&batched);
        assert_eq!(back, samples);
    }

    #[test]
    fn precomputed_weights_match_on_the_fly_execution() {
        let net = tiny_network(1);
        let weights = NetworkWeights::precompute(&net);
        assert!(weights.num_parameters() > 0);
        let input = TensorData::random(net.input_shape, 42);
        let reference = execute_network(&net, std::slice::from_ref(&input));
        let reused = execute_network_with_weights(&net, &weights, &[input]);
        assert_eq!(reference, reused, "weight reuse must be bit-identical");
    }

    #[test]
    fn scheduled_batched_execution_is_bitwise_per_sample() {
        let net1 = tiny_network(1);
        let batch = 3;
        let net_b = net1.with_batch_size(batch);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let schedule = optimize_network(&net_b, &cost, &SchedulerConfig::paper_default()).schedule;
        let weights = NetworkWeights::precompute(&net_b);

        let samples: Vec<TensorData> = (0..batch)
            .map(|i| TensorData::random(net1.input_shape, 7 + i as u64))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = stack_batch(&refs);
        let batched_out = execute_network_scheduled(&net_b, &schedule, &weights, &[stacked]);
        assert_eq!(batched_out.len(), 2, "the tiny network has two outputs");
        let per_output_samples: Vec<Vec<TensorData>> =
            batched_out.iter().map(split_batch).collect();

        for (i, sample) in samples.iter().enumerate() {
            let reference = execute_network(&net1, std::slice::from_ref(sample));
            for (o, reference_out) in reference.iter().enumerate() {
                assert_eq!(
                    &per_output_samples[o][i], reference_out,
                    "sample {i}, output {o} must match its solo execution bit-for-bit"
                );
            }
        }
    }
}
