//! Cross-block pipelined network execution.
//!
//! [`crate::execute_network_batched`] exploits parallelism *across* the
//! samples of one batch, with a barrier at the end: every sample runs the
//! whole network, and the batch completes when the slowest worker does. A
//! pipeline cuts the network's block sequence into contiguous segments
//! ([`SegmentPlan`]) instead and gives each segment a long-lived stage
//! worker: samples stream through the segments, so block `k` of sample
//! `i + 1` overlaps block `k + 1` of sample `i` — and, because the workers
//! outlive any one batch, the tail of batch `n` overlaps the head of batch
//! `n + 1`. That cross-batch overlap is what removes flat batching's two
//! idle sources: the `ceil(batch / workers)` straggler round and the
//! end-of-batch drain.
//!
//! Each stage worker runs its blocks through the same per-sample pooled
//! executor the batched path uses ([`crate::batch`]'s block-range runner),
//! with each block under its IOS-optimized schedule — so per-sample
//! results are **bit-identical** to [`crate::execute_network_batched`] and
//! to solo [`crate::execute_network`] runs, for every segmentation
//! (including the degenerate single-segment and one-segment-per-block
//! plans).
//!
//! Jobs carry their schedule as an `Arc`, so concurrent batches may run
//! under *different* schedules (a serving engine's background re-optimizer
//! swaps specialized schedules mid-flight); a sample finishes under the
//! schedule it entered with.

use crate::arena::ScratchPool;
use crate::batch::{
    execute_network_blocks_pooled, sample_pooled, stack_batch_pooled, NetworkWeights,
};
use crate::tensor_data::TensorData;
use ios_core::NetworkSchedule;
use ios_ir::{Network, SegmentPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// One sample travelling through the pipeline.
struct Job {
    /// Position of the sample within its batch (restack order).
    index: usize,
    /// The sample's current inter-block tensors: network inputs at entry,
    /// segment outputs in flight.
    tensors: Vec<TensorData>,
    /// The schedule this sample executes under (per-block stage
    /// schedules; `None` runs every block sequentially). Carried per job
    /// so in-flight samples are unaffected by schedule swaps.
    schedule: Option<Arc<NetworkSchedule>>,
    /// Where the finished sample reports back — each batch collects on its
    /// own channel, so concurrent batches can interleave freely.
    done: mpsc::Sender<(usize, Vec<TensorData>)>,
}

/// A network executor with long-lived pipeline stage workers, one per
/// segment of a [`SegmentPlan`].
///
/// [`PipelinedNetworkExecutor::execute_batch`] may be called from several
/// threads at once; their samples interleave in the pipeline (that is the
/// point — cross-batch overlap) and each call collects exactly its own
/// samples. All tensor storage is drawn from the shared [`ScratchPool`]
/// handed to [`PipelinedNetworkExecutor::new`]: recycle the returned
/// stacked outputs into it to keep steady-state execution allocation-free.
///
/// Dropping the executor closes the intake and joins every stage worker.
pub struct PipelinedNetworkExecutor {
    entry: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    network: Arc<Network>,
    pool: Arc<ScratchPool>,
    plan: SegmentPlan,
    samples_started: AtomicU64,
    samples_finished: AtomicU64,
}

impl PipelinedNetworkExecutor {
    /// Spawns one stage worker per segment of `plan`.
    ///
    /// `network` must be the **batch-1** instance (the pipeline executes
    /// one sample per job); `weights` its precomputed weights; `pool` the
    /// arena all per-sample and output storage is drawn from.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover the network's block list or the
    /// network is not at batch size 1.
    #[must_use]
    pub fn new(
        network: Arc<Network>,
        weights: Arc<NetworkWeights>,
        plan: SegmentPlan,
        pool: Arc<ScratchPool>,
    ) -> Self {
        assert_eq!(
            plan.num_blocks(),
            network.blocks.len(),
            "segment plan and network block counts differ"
        );
        assert_eq!(
            network.blocks.len(),
            weights.num_blocks(),
            "weights and network block counts differ"
        );
        assert_eq!(
            network.input_shape.batch, 1,
            "the pipeline executes per-sample: pass the batch-1 network instance"
        );

        // Build the channel chain back to front: worker `k` receives jobs
        // from `k - 1` and forwards to `k + 1`; the last worker reports to
        // each job's own `done` channel.
        let mut next: Option<mpsc::Sender<Job>> = None;
        let mut workers = Vec::with_capacity(plan.num_segments());
        for index in (0..plan.num_segments()).rev() {
            let (tx, rx) = mpsc::channel::<Job>();
            let forward = next.replace(tx);
            let range = plan.segment(index);
            let network = Arc::clone(&network);
            let weights = Arc::clone(&weights);
            let pool = Arc::clone(&pool);
            let handle = std::thread::Builder::new()
                .name(format!("ios-pipe-seg{index}"))
                .spawn(move || {
                    stage_worker(
                        &network,
                        &weights,
                        index,
                        range,
                        &pool,
                        &rx,
                        forward.as_ref(),
                    );
                })
                .expect("spawn pipeline stage worker");
            workers.push(handle);
        }
        PipelinedNetworkExecutor {
            entry: next,
            workers,
            network,
            pool,
            plan,
            samples_started: AtomicU64::new(0),
            samples_finished: AtomicU64::new(0),
        }
    }

    /// The segment boundaries this pipeline runs.
    #[must_use]
    pub fn plan(&self) -> &SegmentPlan {
        &self.plan
    }

    /// `(samples fed, samples completed)` since construction. Equal
    /// whenever no sample is in flight — the drained-pipeline invariant
    /// concurrency tests pin down.
    #[must_use]
    pub fn sample_counters(&self) -> (u64, u64) {
        (
            self.samples_started.load(Ordering::Acquire),
            self.samples_finished.load(Ordering::Acquire),
        )
    }

    /// Streams the samples of a stacked batch through the pipeline and
    /// restacks their outputs in sample order. Per-sample results are
    /// bit-identical to [`crate::execute_network_batched`] with the same
    /// schedule, and to solo [`crate::execute_network`] runs.
    ///
    /// The returned stacked tensors draw from the executor's pool; recycle
    /// them there to keep the boundary allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or disagrees on batch size, if the
    /// schedule does not match the network, or if a stage worker died
    /// (a panicking operator kills the pipeline — the owner should drop
    /// and rebuild it).
    #[must_use]
    pub fn execute_batch(
        &self,
        schedule: Option<&Arc<NetworkSchedule>>,
        inputs: &[TensorData],
    ) -> Vec<TensorData> {
        assert!(!inputs.is_empty(), "cannot execute a batch of no inputs");
        let batch = inputs[0].shape.batch;
        assert!(batch > 0, "cannot execute a batch of zero samples");
        assert!(
            inputs.iter().all(|t| t.shape.batch == batch),
            "stacked inputs must agree on batch size"
        );
        if let Some(s) = schedule {
            assert_eq!(
                self.network.blocks.len(),
                s.block_schedules.len(),
                "schedule and network block counts differ"
            );
        }
        let entry = self.entry.as_ref().expect("pipeline intake open");
        let (done_tx, done_rx) = mpsc::channel();
        for n in 0..batch {
            let tensors: Vec<TensorData> = inputs
                .iter()
                .map(|t| sample_pooled(t, n, &self.pool))
                .collect();
            self.samples_started.fetch_add(1, Ordering::AcqRel);
            let job = Job {
                index: n,
                tensors,
                schedule: schedule.map(Arc::clone),
                done: done_tx.clone(),
            };
            if let Err(mpsc::SendError(job)) = entry.send(job) {
                recycle_job(job, &self.pool);
                panic!("pipeline stage worker died");
            }
        }
        // Drop our own sender so a dead worker surfaces as a disconnect
        // instead of a hang.
        drop(done_tx);

        let mut per_sample: Vec<Option<Vec<TensorData>>> = (0..batch).map(|_| None).collect();
        for _ in 0..batch {
            let (index, outputs) = done_rx
                .recv()
                .expect("pipeline stage worker died mid-batch");
            self.samples_finished.fetch_add(1, Ordering::AcqRel);
            per_sample[index] = Some(outputs);
        }

        let num_outputs = per_sample[0].as_ref().expect("sample executed").len();
        let mut stacked = Vec::with_capacity(num_outputs);
        for o in 0..num_outputs {
            let samples: Vec<&TensorData> = per_sample
                .iter()
                .map(|sample| &sample.as_ref().expect("sample executed")[o])
                .collect();
            stacked.push(stack_batch_pooled(&samples, &self.pool));
        }
        for sample in per_sample.into_iter().flatten() {
            for t in sample {
                self.pool.recycle_tensor(t);
            }
        }
        stacked
    }
}

impl Drop for PipelinedNetworkExecutor {
    fn drop(&mut self) {
        // Closing the intake cascades: each worker exits when its receiver
        // disconnects, dropping its forward sender in turn.
        drop(self.entry.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for PipelinedNetworkExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedNetworkExecutor")
            .field("network", &self.network.name)
            .field("plan", &self.plan.to_string())
            .finish()
    }
}

/// One pipeline stage: run every incoming sample through the segment's
/// block range, then forward it (or report it done).
///
/// When the tracer is enabled, each worker emits its occupancy onto the
/// `pipeline` lane: `pipeline.idle` (waiting on the intake channel),
/// `pipeline.busy` (executing a sample's blocks) and `pipeline.forward`
/// (handing off downstream) — all tagged with the segment index, so a
/// trace shows per-segment utilization and where the pipeline bubbles are.
fn stage_worker(
    network: &Network,
    weights: &NetworkWeights,
    segment: usize,
    range: std::ops::Range<usize>,
    pool: &ScratchPool,
    jobs: &mpsc::Receiver<Job>,
    forward: Option<&mpsc::Sender<Job>>,
) {
    let tracer = ios_telemetry::tracer();
    loop {
        let received = {
            let mut idle = tracer.span("pipeline.idle", "pipeline");
            idle.set_id(segment as u64);
            jobs.recv()
        };
        let Ok(mut job) = received else {
            return;
        };
        let mut busy = tracer.span("pipeline.busy", "pipeline");
        busy.set_id(segment as u64);
        busy.set_arg(job.index as u64);
        // Stage groups run serially inside a segment worker: with several
        // segments (and several samples) in flight the cores are already
        // covered, and the result is bit-identical either way.
        //
        // A panicking operator is contained here rather than unwinding the
        // worker thread: jobs still buffered in this worker's channel
        // would be dropped un-recycled with it. On panic the sample is
        // abandoned (its collector sees the done-channel disconnect) and
        // the worker becomes a sink, recycling everything still in flight
        // until the intake closes — the pool's accounting stays exact up
        // to the panicking sample's own mid-block intermediates.
        let tensors = std::mem::take(&mut job.tensors);
        let schedule = job.schedule.clone();
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_network_blocks_pooled(
                network,
                schedule.as_deref(),
                weights,
                range.clone(),
                tensors,
                pool,
                true,
            )
        }));
        match executed {
            Ok(tensors) => job.tensors = tensors,
            Err(_) => {
                drop(job);
                while let Ok(job) = jobs.recv() {
                    recycle_job(job, pool);
                }
                return;
            }
        }
        drop(busy);
        let mut handoff = tracer.span("pipeline.forward", "pipeline");
        handoff.set_id(segment as u64);
        match forward {
            Some(next) => {
                // A dead downstream stage: the pipeline is broken, but the
                // pool's accounting must stay exact. Recycle the failed
                // job, then keep receiving as a sink — recycling every
                // further job (each collector sees its done-channel
                // disconnect) — until the intake closes.
                if let Err(mpsc::SendError(job)) = next.send(job) {
                    recycle_job(job, pool);
                    while let Ok(job) = jobs.recv() {
                        recycle_job(job, pool);
                    }
                    return;
                }
            }
            None => {
                let Job {
                    index,
                    tensors,
                    done,
                    ..
                } = job;
                // The collector may have given up (its batch panicked);
                // recycle the orphaned outputs instead of leaking them
                // from the pool.
                if let Err(mpsc::SendError((_, tensors))) = done.send((index, tensors)) {
                    for t in tensors {
                        pool.recycle_tensor(t);
                    }
                }
            }
        }
    }
}

/// Returns a dead job's tensor storage to the pool (dropping its `done`
/// sender, which its collector observes as a disconnect).
fn recycle_job(job: Job, pool: &ScratchPool) {
    for tensor in job.tensors {
        pool.recycle_tensor(tensor);
    }
}

/// One-shot pipelined execution: builds a pipeline for `plan`, streams the
/// batch through it and tears it down. The bit-exactness reference point
/// for [`PipelinedNetworkExecutor`] users and the property-test entry;
/// serving runtimes keep a persistent executor instead (construction
/// spawns threads and clones the weight table).
///
/// `network` may be shaped for any batch size; the batch-1 instance is
/// derived when needed. Outputs are plain heap-owned tensors.
///
/// # Panics
///
/// Same conditions as [`PipelinedNetworkExecutor::execute_batch`].
#[must_use]
pub fn execute_network_pipelined(
    network: &Network,
    schedule: Option<&NetworkSchedule>,
    weights: &NetworkWeights,
    inputs: &[TensorData],
    plan: &SegmentPlan,
) -> Vec<TensorData> {
    let per_sample = if network.input_shape.batch == 1 {
        network.clone()
    } else {
        network.with_batch_size(1)
    };
    let executor = PipelinedNetworkExecutor::new(
        Arc::new(per_sample),
        Arc::new(weights.clone()),
        plan.clone(),
        Arc::new(ScratchPool::new()),
    );
    let schedule = schedule.map(|s| Arc::new(s.clone()));
    executor.execute_batch(schedule.as_ref(), inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{execute_network, execute_network_batched, split_batch, stack_batch};
    use ios_core::{optimize_network, SchedulerConfig, SimCostModel};
    use ios_ir::{Block, Conv2dParams, GraphBuilder, PoolParams, TensorShape};
    use ios_sim::{DeviceKind, Simulator};

    /// Four chained blocks with branches and two-output hand-offs, so
    /// segment boundaries carry more than one tensor.
    fn four_block_network() -> Network {
        let input = TensorShape::new(1, 6, 8, 8);
        let mut b = GraphBuilder::new("pipe_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let p = b.pool("p", x, PoolParams::max((2, 2), (2, 2), (0, 0)));
        let block0 = Block::new(b.build(vec![cat, p]));

        let shapes = block0.graph.output_shapes();
        let mut b = GraphBuilder::with_inputs("pipe_b1", shapes);
        let x0 = b.input(0);
        let x1 = b.input(1);
        let d = b.conv2d("d", x0, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let e = b.conv2d("e", x1, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let block1 = Block::new(b.build(vec![d, e]));

        let shapes = block1.graph.output_shapes();
        let mut b = GraphBuilder::with_inputs("pipe_b2", shapes);
        let x0 = b.input(0);
        let f = b.conv2d("f", x0, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let g = b.conv2d("g", x0, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let s = b.add_op("s", &[f, g]);
        let block2 = Block::new(b.build(vec![s]));

        let shapes = block2.graph.output_shapes();
        let mut b = GraphBuilder::with_inputs("pipe_b3", shapes);
        let x0 = b.input(0);
        let h = b.conv2d("h", x0, Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1)));
        let block3 = Block::new(b.build(vec![h]));
        Network::new("pipe_net", input, vec![block0, block1, block2, block3])
    }

    #[test]
    fn pipelined_matches_batched_and_solo_for_every_plan() {
        let net = four_block_network();
        let weights = NetworkWeights::precompute(&net);
        let batch = 3;
        let samples: Vec<TensorData> = (0..batch)
            .map(|i| TensorData::random(net.input_shape, 400 + i as u64))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = stack_batch(&refs);
        let arena = ScratchPool::new();
        let flat =
            execute_network_batched(&net, None, &weights, std::slice::from_ref(&stacked), &arena);

        for plan in [
            SegmentPlan::single(4),
            SegmentPlan::even(4, 2),
            SegmentPlan::from_starts(4, vec![0, 3]).unwrap(),
            SegmentPlan::per_block(4),
        ] {
            let piped = execute_network_pipelined(
                &net,
                None,
                &weights,
                std::slice::from_ref(&stacked),
                &plan,
            );
            assert_eq!(piped, flat, "plan {plan} diverged from flat batched");
        }
        // And against solo per-sample execution.
        let per_output: Vec<Vec<TensorData>> = flat.iter().map(split_batch).collect();
        for (i, sample) in samples.iter().enumerate() {
            let solo = execute_network(&net, std::slice::from_ref(sample));
            for (o, solo_out) in solo.iter().enumerate() {
                assert_eq!(&per_output[o][i], solo_out);
            }
        }
    }

    #[test]
    fn pipelined_respects_ios_schedules() {
        let net = four_block_network();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let schedule = optimize_network(&net, &cost, &SchedulerConfig::paper_default()).schedule;
        let weights = NetworkWeights::precompute(&net);
        let samples: Vec<TensorData> = (0..2)
            .map(|i| TensorData::random(net.input_shape, 500 + i as u64))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = stack_batch(&refs);
        let arena = ScratchPool::new();
        let flat = execute_network_batched(
            &net,
            Some(&schedule),
            &weights,
            std::slice::from_ref(&stacked),
            &arena,
        );
        let plan = SegmentPlan::even(4, 2);
        let piped = execute_network_pipelined(&net, Some(&schedule), &weights, &[stacked], &plan);
        assert_eq!(piped, flat);
    }

    #[test]
    fn persistent_pipeline_interleaves_batches_and_stays_allocation_free() {
        let net = four_block_network();
        let weights = Arc::new(NetworkWeights::precompute(&net));
        let pool = Arc::new(ScratchPool::new());
        let executor = PipelinedNetworkExecutor::new(
            Arc::new(net.clone()),
            Arc::clone(&weights),
            SegmentPlan::even(4, 2),
            Arc::clone(&pool),
        );

        let batch = |seed: u64, n: usize| {
            let samples: Vec<TensorData> = (0..n)
                .map(|i| TensorData::random(net.input_shape, seed + i as u64))
                .collect();
            let refs: Vec<&TensorData> = samples.iter().collect();
            stack_batch(&refs)
        };

        // Warm-up pass fills the pool.
        let warm = executor.execute_batch(None, &[batch(7, 3)]);
        let expected: Vec<TensorData> = warm.iter().map(|t| (*t).clone()).collect();
        for t in warm {
            pool.recycle_tensor(t);
        }

        // Concurrent batches from two threads interleave in the pipeline;
        // each collects exactly its own samples.
        let other = batch(90, 2);
        let arena = ScratchPool::new();
        let other_expected =
            execute_network_batched(&net, None, &weights, std::slice::from_ref(&other), &arena);
        std::thread::scope(|scope| {
            let exec = &executor;
            let expected = &expected;
            let pool = &pool;
            scope.spawn(move || {
                for _ in 0..4 {
                    let out = exec.execute_batch(None, &[batch(7, 3)]);
                    assert_eq!(&out, expected);
                    for t in out {
                        pool.recycle_tensor(t);
                    }
                }
            });
            let other = &other;
            let other_expected = &other_expected;
            scope.spawn(move || {
                for _ in 0..4 {
                    let out = exec.execute_batch(None, std::slice::from_ref(other));
                    assert_eq!(&out, other_expected);
                    for t in out {
                        pool.recycle_tensor(t);
                    }
                }
            });
        });

        let (started, finished) = executor.sample_counters();
        assert_eq!(
            started, finished,
            "drained pipeline has no samples in flight"
        );
        assert_eq!(started, 3 + 4 * 3 + 4 * 2);

        // Steady state: once the pool has seen the peak concurrent demand,
        // a repeat batch allocates nothing fresh.
        let warmed = pool.fresh_allocations();
        let again = executor.execute_batch(None, &[batch(7, 3)]);
        assert_eq!(again, expected);
        for t in again {
            pool.recycle_tensor(t);
        }
        assert_eq!(
            pool.fresh_allocations(),
            warmed,
            "steady-state pipelined execution must not allocate"
        );
        assert!(pool.reuses() > 0);
    }

    #[test]
    #[should_panic(expected = "segment plan and network block counts differ")]
    fn mismatched_plan_is_rejected() {
        let net = four_block_network();
        let weights = NetworkWeights::precompute(&net);
        let _ = execute_network_pipelined(
            &net,
            None,
            &weights,
            &[TensorData::zeros(net.input_shape)],
            &SegmentPlan::single(3),
        );
    }
}
