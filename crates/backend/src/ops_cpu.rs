//! Naive CPU implementations of the IR operators.
//!
//! Weights are generated deterministically from a seed derived from the
//! operator id, so that two different execution strategies of the same graph
//! (e.g. the original convolutions vs. their merged counterpart) see the
//! same parameters and must produce the same outputs.

use crate::tensor_data::TensorData;
use ios_ir::{
    Activation, Conv2dParams, MatMulParams, Op, OpKind, PoolKind, PoolParams, TensorShape,
};

/// Deterministic weight tensor for a convolution: layout
/// `[out_c][in_c_per_group][kh][kw]`, values derived from `seed`.
#[must_use]
pub fn conv_weights(
    seed: u64,
    out_c: usize,
    in_c_per_group: usize,
    kernel: (usize, usize),
) -> Vec<f32> {
    let count = out_c * in_c_per_group * kernel.0 * kernel.1;
    deterministic_values(seed, count)
}

/// Deterministic weight matrix for a fully connected layer: `[out][in]`.
#[must_use]
pub fn matmul_weights(seed: u64, out_features: usize, in_features: usize) -> Vec<f32> {
    deterministic_values(seed, out_features * in_features)
}

fn deterministic_values(seed: u64, count: usize) -> Vec<f32> {
    // SplitMix64 stream mapped to [-0.5, 0.5); fast, reproducible, and
    // independent of the `rand` crate's version-specific stream.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64 - 0.5) as f32
        })
        .collect()
}

fn apply_activation(activation: Activation, v: f32) -> f32 {
    match activation {
        Activation::None => v,
        Activation::Relu => v.max(0.0),
    }
}

/// Dense / grouped 2-D convolution with explicit weights.
#[must_use]
pub fn conv2d(input: &TensorData, params: &Conv2dParams, weights: &[f32]) -> TensorData {
    let in_shape = input.shape;
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, params.out_channels, oh, ow);
    let mut out = TensorData::zeros(out_shape);
    let in_c_per_group = in_shape.channels / params.groups;
    let out_c_per_group = params.out_channels / params.groups;
    let (kh, kw) = params.kernel;
    for n in 0..in_shape.batch {
        for oc in 0..params.out_channels {
            let group = oc / out_c_per_group;
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..in_c_per_group {
                        let in_channel = group * in_c_per_group + ic;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy =
                                    (y * params.stride.0 + ky) as isize - params.padding.0 as isize;
                                let ix =
                                    (x * params.stride.1 + kx) as isize - params.padding.1 as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= in_shape.height as isize
                                    || ix >= in_shape.width as isize
                                {
                                    continue;
                                }
                                let w = weights[((oc * in_c_per_group + ic) * kh + ky) * kw + kx];
                                acc += w * input.at(n, in_channel, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(n, oc, y, x, apply_activation(params.activation, acc));
                }
            }
        }
    }
    out
}

/// Depthwise-separable convolution: ReLU on the input, depthwise k×k, then
/// pointwise 1×1 (the "Relu-SepConv" unit).
#[must_use]
pub fn sep_conv2d(input: &TensorData, params: &Conv2dParams, seed: u64) -> TensorData {
    let dw_weights = conv_weights(seed ^ 0xD17, input.shape.channels, 1, params.kernel);
    let pw_weights = conv_weights(
        seed ^ 0x0009_0117,
        params.out_channels,
        input.shape.channels,
        (1, 1),
    );
    sep_conv2d_with(input, params, &dw_weights, &pw_weights)
}

/// [`sep_conv2d`] with explicit depthwise and pointwise weights.
#[must_use]
pub fn sep_conv2d_with(
    input: &TensorData,
    params: &Conv2dParams,
    dw_weights: &[f32],
    pw_weights: &[f32],
) -> TensorData {
    // Pre-activation.
    let mut activated = input.clone();
    for v in &mut activated.data {
        *v = v.max(0.0);
    }
    // Depthwise pass: groups = channels, one output channel per input channel.
    let dw_params = Conv2dParams {
        out_channels: input.shape.channels,
        kernel: params.kernel,
        stride: params.stride,
        padding: params.padding,
        groups: input.shape.channels,
        activation: Activation::None,
    };
    let depthwise = conv2d(&activated, &dw_params, dw_weights);
    // Pointwise 1×1.
    let pw_params = Conv2dParams {
        out_channels: params.out_channels,
        kernel: (1, 1),
        stride: (1, 1),
        padding: (0, 0),
        groups: 1,
        activation: Activation::None,
    };
    conv2d(&depthwise, &pw_params, pw_weights)
}

/// Pooling.
#[must_use]
pub fn pool(input: &TensorData, params: &PoolParams) -> TensorData {
    let in_shape = input.shape;
    match params.kind {
        PoolKind::GlobalAvg => {
            let out_shape = TensorShape::new(in_shape.batch, in_shape.channels, 1, 1);
            let mut out = TensorData::zeros(out_shape);
            let hw = (in_shape.height * in_shape.width) as f32;
            for n in 0..in_shape.batch {
                for c in 0..in_shape.channels {
                    let mut acc = 0.0;
                    for h in 0..in_shape.height {
                        for w in 0..in_shape.width {
                            acc += input.at(n, c, h, w);
                        }
                    }
                    out.set(n, c, 0, 0, acc / hw);
                }
            }
            out
        }
        PoolKind::Max | PoolKind::Avg => {
            let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
            let out_shape = TensorShape::new(in_shape.batch, in_shape.channels, oh, ow);
            let mut out = TensorData::zeros(out_shape);
            for n in 0..in_shape.batch {
                for c in 0..in_shape.channels {
                    for y in 0..oh {
                        for x in 0..ow {
                            let mut acc: f32 = if params.kind == PoolKind::Max {
                                f32::NEG_INFINITY
                            } else {
                                0.0
                            };
                            let mut count = 0usize;
                            for ky in 0..params.kernel.0 {
                                for kx in 0..params.kernel.1 {
                                    let iy = (y * params.stride.0 + ky) as isize
                                        - params.padding.0 as isize;
                                    let ix = (x * params.stride.1 + kx) as isize
                                        - params.padding.1 as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= in_shape.height as isize
                                        || ix >= in_shape.width as isize
                                    {
                                        continue;
                                    }
                                    let v = input.at(n, c, iy as usize, ix as usize);
                                    if params.kind == PoolKind::Max {
                                        acc = acc.max(v);
                                    } else {
                                        acc += v;
                                    }
                                    count += 1;
                                }
                            }
                            let value = if params.kind == PoolKind::Max {
                                acc
                            } else {
                                acc / count.max(1) as f32
                            };
                            out.set(n, c, y, x, value);
                        }
                    }
                }
            }
            out
        }
    }
}

/// Fully connected layer.
#[must_use]
pub fn matmul(input: &TensorData, params: &MatMulParams, weights: &[f32]) -> TensorData {
    let in_features = input.shape.elements_per_item();
    let out_shape = TensorShape::vector(input.shape.batch, params.out_features);
    let mut out = TensorData::zeros(out_shape);
    for n in 0..input.shape.batch {
        let row = &input.data[n * in_features..(n + 1) * in_features];
        for o in 0..params.out_features {
            let w = &weights[o * in_features..(o + 1) * in_features];
            let acc: f32 = row.iter().zip(w).map(|(a, b)| a * b).sum();
            out.data[n * params.out_features + o] = apply_activation(params.activation, acc);
        }
    }
    out
}

/// Channel-wise concatenation.
#[must_use]
pub fn concat(inputs: &[&TensorData]) -> TensorData {
    let first = inputs[0].shape;
    let channels: usize = inputs.iter().map(|t| t.shape.channels).sum();
    let out_shape = TensorShape::new(first.batch, channels, first.height, first.width);
    let mut out = TensorData::zeros(out_shape);
    for n in 0..first.batch {
        let mut c_off = 0;
        for t in inputs {
            for c in 0..t.shape.channels {
                for h in 0..first.height {
                    for w in 0..first.width {
                        out.set(n, c_off + c, h, w, t.at(n, c, h, w));
                    }
                }
            }
            c_off += t.shape.channels;
        }
    }
    out
}

/// Element-wise addition of all inputs.
#[must_use]
pub fn add(inputs: &[&TensorData]) -> TensorData {
    let mut out = inputs[0].clone();
    for t in &inputs[1..] {
        for (o, v) in out.data.iter_mut().zip(&t.data) {
            *o += v;
        }
    }
    out
}

/// Standalone ReLU.
#[must_use]
pub fn relu(input: &TensorData) -> TensorData {
    let mut out = input.clone();
    for v in &mut out.data {
        *v = v.max(0.0);
    }
    out
}

/// Executes one operator given its resolved inputs, using deterministic
/// weights derived from `weight_seed`.
#[must_use]
pub fn execute_op(op: &Op, inputs: &[&TensorData], weight_seed: u64) -> TensorData {
    match &op.kind {
        OpKind::Conv2d(p) => {
            let in_c_per_group = inputs[0].shape.channels / p.groups;
            let w = conv_weights(weight_seed, p.out_channels, in_c_per_group, p.kernel);
            conv2d(inputs[0], p, &w)
        }
        OpKind::SepConv2d(p) => sep_conv2d(inputs[0], p, weight_seed),
        OpKind::Pool(p) => pool(inputs[0], p),
        OpKind::MatMul(p) => {
            let w = matmul_weights(
                weight_seed,
                p.out_features,
                inputs[0].shape.elements_per_item(),
            );
            matmul(inputs[0], p, &w)
        }
        OpKind::Concat => concat(inputs),
        OpKind::Add => add(inputs),
        OpKind::Relu => relu(inputs[0]),
        OpKind::Identity => inputs[0].clone(),
    }
}

/// Executes one weighted operator with precomputed weights. Bit-identical
/// to [`execute_op`] when the weights come from
/// [`crate::batch::BlockWeights::precompute`].
///
/// # Panics
///
/// Panics if the weight kind does not match the operator kind.
#[must_use]
pub fn execute_op_with_weights(
    op: &Op,
    inputs: &[&TensorData],
    weights: &crate::batch::OpWeights,
) -> TensorData {
    use crate::batch::OpWeights;
    match (&op.kind, weights) {
        (OpKind::Conv2d(p), OpWeights::Conv(w)) => conv2d(inputs[0], p, w),
        (
            OpKind::SepConv2d(p),
            OpWeights::SepConv {
                depthwise,
                pointwise,
            },
        ) => sep_conv2d_with(inputs[0], p, depthwise, pointwise),
        (OpKind::MatMul(p), OpWeights::MatMul(w)) => matmul(inputs[0], p, w),
        (kind, _) => panic!("mismatched precomputed weights for operator kind {kind:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // A 1×1 convolution with an identity-like weight copies channels.
        let input = TensorData::random(TensorShape::new(1, 2, 3, 3), 1);
        let params = Conv2dParams::plain(2, (1, 1), (1, 1), (0, 0));
        // weights[oc][ic]: identity matrix.
        let weights = vec![1.0, 0.0, 0.0, 1.0];
        let out = conv2d(&input, &params, &weights);
        assert_eq!(out.shape, input.shape);
        for i in 0..input.data.len() {
            assert!((out.data[i] - input.data[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn conv2d_relu_clamps_negatives() {
        let input = TensorData::random(TensorShape::new(1, 3, 5, 5), 2);
        let params = Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1));
        let w = conv_weights(3, 4, 3, (3, 3));
        let out = conv2d(&input, &params, &w);
        assert!(out.data.iter().all(|v| *v >= 0.0));
        assert_eq!(out.shape, TensorShape::new(1, 4, 5, 5));
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let input = TensorData::random(TensorShape::new(1, 2, 8, 8), 4);
        let params = Conv2dParams::plain(2, (3, 3), (2, 2), (1, 1));
        let w = conv_weights(5, 2, 2, (3, 3));
        let out = conv2d(&input, &params, &w);
        assert_eq!(out.shape, TensorShape::new(1, 2, 4, 4));
    }

    #[test]
    fn max_pool_picks_maximum() {
        let mut input = TensorData::zeros(TensorShape::new(1, 1, 4, 4));
        input.set(0, 0, 1, 1, 5.0);
        input.set(0, 0, 2, 3, -2.0);
        let out = pool(&input, &PoolParams::max((2, 2), (2, 2), (0, 0)));
        assert_eq!(out.shape, TensorShape::new(1, 1, 2, 2));
        assert_eq!(out.at(0, 0, 0, 0), 5.0);
        assert_eq!(out.at(0, 0, 1, 1), 0.0);
    }

    #[test]
    fn global_avg_pool_averages() {
        let input = TensorData {
            shape: TensorShape::new(1, 1, 2, 2),
            data: vec![1.0, 2.0, 3.0, 6.0],
        };
        let out = pool(&input, &PoolParams::global_avg());
        assert_eq!(out.at(0, 0, 0, 0), 3.0);
    }

    #[test]
    fn concat_and_add_and_relu() {
        let a = TensorData {
            shape: TensorShape::new(1, 1, 1, 2),
            data: vec![1.0, -2.0],
        };
        let b = TensorData {
            shape: TensorShape::new(1, 1, 1, 2),
            data: vec![3.0, 4.0],
        };
        let cat = concat(&[&a, &b]);
        assert_eq!(cat.shape.channels, 2);
        assert_eq!(cat.data, vec![1.0, -2.0, 3.0, 4.0]);
        let sum = add(&[&a, &b]);
        assert_eq!(sum.data, vec![4.0, 2.0]);
        let r = relu(&a);
        assert_eq!(r.data, vec![1.0, 0.0]);
    }

    #[test]
    fn matmul_matches_manual_computation() {
        let input = TensorData {
            shape: TensorShape::vector(1, 2),
            data: vec![2.0, 3.0],
        };
        let weights = vec![1.0, 0.0, 1.0, 1.0]; // [[1,0],[1,1]]
        let params = MatMulParams {
            out_features: 2,
            activation: Activation::None,
        };
        let out = matmul(&input, &params, &weights);
        assert_eq!(out.data, vec![2.0, 5.0]);
    }

    #[test]
    fn sepconv_output_shape_and_determinism() {
        let input = TensorData::random(TensorShape::new(1, 4, 6, 6), 9);
        let params = Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1));
        let a = sep_conv2d(&input, &params, 11);
        let b = sep_conv2d(&input, &params, 11);
        assert_eq!(a.shape, TensorShape::new(1, 8, 6, 6));
        assert_eq!(a, b);
        let c = sep_conv2d(&input, &params, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_weights_are_stable_and_seed_dependent() {
        let a = conv_weights(1, 2, 2, (3, 3));
        let b = conv_weights(1, 2, 2, (3, 3));
        let c = conv_weights(2, 2, 2, (3, 3));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 2 * 2 * 9);
        assert!(a.iter().all(|v| v.abs() <= 0.5));
    }
}
