//! CPU implementations of the IR operators.
//!
//! Weights are generated deterministically from a seed derived from the
//! operator id, so that two different execution strategies of the same graph
//! (e.g. the original convolutions vs. their merged counterpart) see the
//! same parameters and must produce the same outputs.
//!
//! Two convolution paths exist: [`conv2d_naive`], the obviously-correct
//! 7-deep reference loop, and [`conv2d`], the im2col + register-blocked GEMM
//! engine ([`crate::gemm`]) that is several times faster and **bit-identical**
//! — it preserves the reference's `(ic, ky, kx)` accumulation order per
//! output element (verified by proptests in `tests/bit_exact.rs`). The GEMM
//! tile dispatches through [`crate::simd`] at runtime (explicit AVX2
//! kernels on capable hosts, the auto-vectorized tile elsewhere); every
//! tier computes the same bits, so the oracle relationship is ISA-free.
//! The blocked [`matmul`] reduction, by contrast, stays on the
//! auto-vectorized path only: its dot products accumulate along `k`, and
//! vectorizing across `k` would reorder the sum and break bit-exactness.
//! Every
//! operator has a `*_pooled` variant drawing scratch and output storage from
//! a [`ScratchPool`] so steady-state serving allocates nothing in the op
//! loop; the plain variants use the process-global pool.

use crate::arena::{global_pool, Arena};
use crate::gemm::{quantize_value, requantize, sample_scale, ConvEpilogue, QuantizedFilter};
use crate::tensor_data::TensorData;
use ios_ir::{
    Activation, Conv2dParams, MatMulParams, Op, OpKind, PoolKind, PoolParams, TensorShape,
};

/// Deterministic weight tensor for a convolution: layout
/// `[out_c][in_c_per_group][kh][kw]`, values derived from `seed`.
#[must_use]
pub fn conv_weights(
    seed: u64,
    out_c: usize,
    in_c_per_group: usize,
    kernel: (usize, usize),
) -> Vec<f32> {
    let count = out_c * in_c_per_group * kernel.0 * kernel.1;
    deterministic_values(seed, count)
}

/// Deterministic weight matrix for a fully connected layer: `[out][in]`.
#[must_use]
pub fn matmul_weights(seed: u64, out_features: usize, in_features: usize) -> Vec<f32> {
    deterministic_values(seed, out_features * in_features)
}

fn deterministic_values(seed: u64, count: usize) -> Vec<f32> {
    // SplitMix64 stream mapped to [-0.5, 0.5); fast, reproducible, and
    // independent of the `rand` crate's version-specific stream.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64 - 0.5) as f32
        })
        .collect()
}

fn apply_activation(activation: Activation, v: f32) -> f32 {
    match activation {
        Activation::None => v,
        Activation::Relu => v.max(0.0),
    }
}

/// Dense / grouped 2-D convolution with explicit weights — the im2col +
/// blocked-GEMM fast path, bit-identical to [`conv2d_naive`].
#[must_use]
pub fn conv2d(input: &TensorData, params: &Conv2dParams, weights: &[f32]) -> TensorData {
    conv2d_pooled(input, params, weights, global_pool())
}

/// [`conv2d`] with scratch and output storage drawn from `arena`.
#[must_use]
pub fn conv2d_pooled(
    input: &TensorData,
    params: &Conv2dParams,
    weights: &[f32],
    arena: &impl Arena,
) -> TensorData {
    crate::gemm::conv2d_im2col(input, params, weights, arena)
}

/// [`conv2d`] reading the filter from its pre-packed tile-major layout
/// ([`crate::gemm::PackedFilter`]) — the serving fast path, bit-identical
/// to [`conv2d`] and [`conv2d_naive`].
///
/// # Panics
///
/// Panics if the packed filter does not match the convolution's geometry.
#[must_use]
pub fn conv2d_packed(
    input: &TensorData,
    params: &Conv2dParams,
    packed: &crate::gemm::PackedFilter,
) -> TensorData {
    conv2d_packed_pooled(input, params, packed, global_pool())
}

/// [`conv2d_packed`] with scratch and output storage drawn from `arena`.
///
/// # Panics
///
/// Panics if the packed filter does not match the convolution's geometry.
#[must_use]
pub fn conv2d_packed_pooled(
    input: &TensorData,
    params: &Conv2dParams,
    packed: &crate::gemm::PackedFilter,
    arena: &impl Arena,
) -> TensorData {
    crate::gemm::conv2d_im2col_packed(input, params, packed, arena)
}

/// Int8 quantized convolution reading [`QuantizedFilter`] weights —
/// per-sample input scales, i32 accumulation, requantize in the tile
/// writeback. Byte-identical to [`conv2d_naive_quant`].
///
/// # Panics
///
/// Panics if the quantized filter does not match the convolution's
/// geometry.
#[must_use]
pub fn conv2d_quant_pooled(
    input: &TensorData,
    params: &Conv2dParams,
    quant: &QuantizedFilter,
    arena: &impl Arena,
) -> TensorData {
    crate::gemm::conv2d_im2col_quant(input, params, quant, arena)
}

/// The naive int8 reference: quantizes the sample and reads the filter's
/// integers exactly as the fast path does ([`sample_scale`],
/// [`QuantizedFilter::weight`]), accumulates in `i32` over the reference
/// `(ic, ky, kx)` order, requantizes and applies the epilogue per
/// element. Integer sums are order-independent, so every fast path —
/// scalar, SSE2, AVX2, blocked, pipelined — must be **byte-identical** to
/// this oracle.
///
/// # Panics
///
/// Panics if the quantized filter does not match the convolution's
/// geometry.
#[must_use]
pub fn conv2d_naive_quant(
    input: &TensorData,
    params: &Conv2dParams,
    quant: &QuantizedFilter,
    ep: &ConvEpilogue<'_>,
) -> TensorData {
    let in_shape = input.shape;
    let in_c_per_group = in_shape.channels / params.groups;
    let k_len = in_c_per_group * params.kernel.0 * params.kernel.1;
    assert!(
        quant.matches(params.out_channels, params.groups, k_len),
        "quantized filter geometry does not match the convolution"
    );
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, params.out_channels, oh, ow);
    let mut out = TensorData::zeros(out_shape);
    let out_c_per_group = params.out_channels / params.groups;
    let (kh, kw) = params.kernel;
    let relu = params.activation == Activation::Relu || ep.relu;
    let per_item = in_shape.elements_per_item();
    for n in 0..in_shape.batch {
        let s_in = sample_scale(&input.data[n * per_item..(n + 1) * per_item], ep.input_relu);
        for oc in 0..params.out_channels {
            let group = oc / out_c_per_group;
            let w_scale = quant.scales()[oc];
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0i32;
                    let mut k = 0usize;
                    for ic in 0..in_c_per_group {
                        let in_channel = group * in_c_per_group + ic;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy =
                                    (y * params.stride.0 + ky) as isize - params.padding.0 as isize;
                                let ix =
                                    (x * params.stride.1 + kx) as isize - params.padding.1 as isize;
                                let in_bounds = iy >= 0
                                    && ix >= 0
                                    && iy < in_shape.height as isize
                                    && ix < in_shape.width as isize;
                                if in_bounds {
                                    let mut v = input.at(n, in_channel, iy as usize, ix as usize);
                                    if ep.input_relu {
                                        v = v.max(0.0);
                                    }
                                    let q = i32::from(quantize_value(v, s_in));
                                    acc += i32::from(quant.weight(oc, k)) * q;
                                }
                                k += 1;
                            }
                        }
                    }
                    // The exact epilogue expression of the fused store:
                    // (v + bias) + residual, then max(0, ·); absent terms
                    // are skipped, never added as 0.0.
                    let mut v = requantize(acc, s_in, w_scale);
                    if let Some(bias) = ep.bias {
                        v += bias[oc];
                    }
                    if let Some(res) = ep.residual {
                        v += res.at(n, oc, y, x);
                    }
                    if relu {
                        v = v.max(0.0);
                    }
                    out.set(n, oc, y, x, v);
                }
            }
        }
    }
    out
}

/// The naive 7-deep reference convolution: one scalar accumulator per
/// output element, walked over `(ic, ky, kx)` with per-element bounds
/// checks. Kept as the numerics oracle the fast path is verified against.
#[must_use]
pub fn conv2d_naive(input: &TensorData, params: &Conv2dParams, weights: &[f32]) -> TensorData {
    let in_shape = input.shape;
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, params.out_channels, oh, ow);
    let mut out = TensorData::zeros(out_shape);
    let in_c_per_group = in_shape.channels / params.groups;
    let out_c_per_group = params.out_channels / params.groups;
    let (kh, kw) = params.kernel;
    for n in 0..in_shape.batch {
        for oc in 0..params.out_channels {
            let group = oc / out_c_per_group;
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..in_c_per_group {
                        let in_channel = group * in_c_per_group + ic;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy =
                                    (y * params.stride.0 + ky) as isize - params.padding.0 as isize;
                                let ix =
                                    (x * params.stride.1 + kx) as isize - params.padding.1 as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= in_shape.height as isize
                                    || ix >= in_shape.width as isize
                                {
                                    continue;
                                }
                                let w = weights[((oc * in_c_per_group + ic) * kh + ky) * kw + kx];
                                acc += w * input.at(n, in_channel, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(n, oc, y, x, apply_activation(params.activation, acc));
                }
            }
        }
    }
    out
}

/// The depthwise and pointwise weight seeds a separable convolution
/// derives from its operator seed — the single source of truth shared by
/// the seeded execution paths and [`crate::batch::BlockWeights`], so the
/// regenerating and precomputed paths can never drift apart.
#[must_use]
pub fn sep_conv_seeds(seed: u64) -> (u64, u64) {
    (seed ^ 0xD17, seed ^ 0x0009_0117)
}

/// Depthwise-separable convolution: ReLU on the input, depthwise k×k, then
/// pointwise 1×1 (the "Relu-SepConv" unit).
#[must_use]
pub fn sep_conv2d(input: &TensorData, params: &Conv2dParams, seed: u64) -> TensorData {
    let (dw_seed, pw_seed) = sep_conv_seeds(seed);
    let dw_weights = conv_weights(dw_seed, input.shape.channels, 1, params.kernel);
    let pw_weights = conv_weights(pw_seed, params.out_channels, input.shape.channels, (1, 1));
    sep_conv2d_with(input, params, &dw_weights, &pw_weights)
}

/// [`sep_conv2d`] with explicit depthwise and pointwise weights.
#[must_use]
pub fn sep_conv2d_with(
    input: &TensorData,
    params: &Conv2dParams,
    dw_weights: &[f32],
    pw_weights: &[f32],
) -> TensorData {
    sep_conv2d_pooled(input, params, dw_weights, pw_weights, global_pool())
}

/// The depthwise convolution parameters a separable unit derives from its
/// own: groups = channels, one output channel per input channel.
fn sep_conv_dw_params(input_channels: usize, params: &Conv2dParams) -> Conv2dParams {
    Conv2dParams {
        out_channels: input_channels,
        kernel: params.kernel,
        stride: params.stride,
        padding: params.padding,
        groups: input_channels,
        activation: Activation::None,
    }
}

/// The pointwise 1×1 convolution parameters of a separable unit.
fn sep_conv_pw_params(params: &Conv2dParams) -> Conv2dParams {
    Conv2dParams {
        out_channels: params.out_channels,
        kernel: (1, 1),
        stride: (1, 1),
        padding: (0, 0),
        groups: 1,
        activation: Activation::None,
    }
}

/// The epilogue the depthwise stage of a separable unit runs with: the
/// unit's input ReLU is fused into the im2col load instead of
/// materializing an activated copy of the input first. Values entering
/// the GEMM are identical, so the fused form is bit-identical to the
/// former separate activation pass.
fn sep_conv_dw_epilogue() -> ConvEpilogue<'static> {
    ConvEpilogue {
        input_relu: true,
        ..ConvEpilogue::default()
    }
}

/// [`sep_conv2d_with`] with pooled scratch; the input ReLU is fused into
/// the depthwise im2col and the depthwise intermediate is recycled before
/// returning.
#[must_use]
pub fn sep_conv2d_pooled(
    input: &TensorData,
    params: &Conv2dParams,
    dw_weights: &[f32],
    pw_weights: &[f32],
    arena: &impl Arena,
) -> TensorData {
    let dw_params = sep_conv_dw_params(input.shape.channels, params);
    let depthwise = crate::gemm::conv2d_im2col_fused(
        input,
        &dw_params,
        dw_weights,
        &sep_conv_dw_epilogue(),
        arena,
    );
    let pw_params = sep_conv_pw_params(params);
    let out = conv2d_pooled(&depthwise, &pw_params, pw_weights, arena);
    arena.recycle_tensor(depthwise);
    out
}

/// [`sep_conv2d_pooled`] reading both filters from their pre-packed
/// tile-major layouts — bit-identical to the unpacked path.
///
/// # Panics
///
/// Panics if either packed filter does not match its convolution geometry.
#[must_use]
pub fn sep_conv2d_packed_pooled(
    input: &TensorData,
    params: &Conv2dParams,
    dw_packed: &crate::gemm::PackedFilter,
    pw_packed: &crate::gemm::PackedFilter,
    arena: &impl Arena,
) -> TensorData {
    let dw_params = sep_conv_dw_params(input.shape.channels, params);
    let depthwise = crate::gemm::conv2d_im2col_packed_fused(
        input,
        &dw_params,
        dw_packed,
        &sep_conv_dw_epilogue(),
        arena,
    );
    let pw_params = sep_conv_pw_params(params);
    let out = conv2d_packed_pooled(&depthwise, &pw_params, pw_packed, arena);
    arena.recycle_tensor(depthwise);
    out
}

/// [`sep_conv2d_packed_pooled`] with the pointwise stage quantized to
/// int8: the depthwise stage stays f32 (its reduction is only `kh·kw`
/// values deep — quantization overhead would dominate), the pointwise
/// 1×1 — where the unit's compute lives — runs the integer kernel.
///
/// # Panics
///
/// Panics if either filter does not match its convolution geometry.
#[must_use]
pub fn sep_conv2d_quant_pooled(
    input: &TensorData,
    params: &Conv2dParams,
    dw_packed: &crate::gemm::PackedFilter,
    pw_quant: &QuantizedFilter,
    arena: &impl Arena,
) -> TensorData {
    let dw_params = sep_conv_dw_params(input.shape.channels, params);
    let depthwise = crate::gemm::conv2d_im2col_packed_fused(
        input,
        &dw_params,
        dw_packed,
        &sep_conv_dw_epilogue(),
        arena,
    );
    let pw_params = sep_conv_pw_params(params);
    let out = conv2d_quant_pooled(&depthwise, &pw_params, pw_quant, arena);
    arena.recycle_tensor(depthwise);
    out
}

/// Pooling.
#[must_use]
pub fn pool(input: &TensorData, params: &PoolParams) -> TensorData {
    pool_pooled(input, params, global_pool())
}

/// [`pool`] with pooled output storage. The window loops run over the
/// precomputed valid `(ky, kx)` ranges of each output position, so the
/// interior of the plane pays no per-element bounds checks; visit order
/// (and the average's divisor) match the reference loop exactly.
#[must_use]
pub fn pool_pooled(input: &TensorData, params: &PoolParams, arena: &impl Arena) -> TensorData {
    let in_shape = input.shape;
    let (h, w) = (in_shape.height, in_shape.width);
    let plane = h * w;
    match params.kind {
        PoolKind::GlobalAvg => {
            let out_shape = TensorShape::new(in_shape.batch, in_shape.channels, 1, 1);
            let mut out = arena.take_tensor(out_shape);
            let hw = plane as f32;
            for n in 0..in_shape.batch {
                for c in 0..in_shape.channels {
                    let start = (n * in_shape.channels + c) * plane;
                    // Slice iteration adds in the same (h, w) order as the
                    // reference double loop.
                    let acc: f32 = input.data[start..start + plane].iter().sum();
                    out.data[n * in_shape.channels + c] = acc / hw;
                }
            }
            out
        }
        PoolKind::Max | PoolKind::Avg => {
            let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
            let out_shape = TensorShape::new(in_shape.batch, in_shape.channels, oh, ow);
            let mut out = arena.take_tensor(out_shape);
            let (kh, kw) = params.kernel;
            let (sh, sw) = params.stride;
            let (ph, pw) = params.padding;
            let is_max = params.kind == PoolKind::Max;
            for n in 0..in_shape.batch {
                for c in 0..in_shape.channels {
                    let ch_start = (n * in_shape.channels + c) * plane;
                    let ch = &input.data[ch_start..ch_start + plane];
                    let out_start = (n * in_shape.channels + c) * oh * ow;
                    for y in 0..oh {
                        let base_y = (y * sh) as isize - ph as isize;
                        let ky_lo = (-base_y).max(0) as usize;
                        let ky_hi = ((h as isize - base_y).max(0) as usize).min(kh);
                        let out_row = &mut out.data[out_start + y * ow..out_start + (y + 1) * ow];
                        for (x, slot) in out_row.iter_mut().enumerate() {
                            let base_x = (x * sw) as isize - pw as isize;
                            let kx_lo = (-base_x).max(0) as usize;
                            let kx_hi = ((w as isize - base_x).max(0) as usize).min(kw);
                            let mut acc: f32 = if is_max { f32::NEG_INFINITY } else { 0.0 };
                            for ky in ky_lo..ky_hi {
                                let iy = (base_y + ky as isize) as usize;
                                let row = &ch[iy * w..(iy + 1) * w];
                                for kx in kx_lo..kx_hi {
                                    let v = row[(base_x + kx as isize) as usize];
                                    if is_max {
                                        acc = acc.max(v);
                                    } else {
                                        acc += v;
                                    }
                                }
                            }
                            let count =
                                (ky_hi.saturating_sub(ky_lo)) * (kx_hi.saturating_sub(kx_lo));
                            *slot = if is_max {
                                acc
                            } else {
                                acc / count.max(1) as f32
                            };
                        }
                    }
                }
            }
            out
        }
    }
}

/// Fully connected layer.
#[must_use]
pub fn matmul(input: &TensorData, params: &MatMulParams, weights: &[f32]) -> TensorData {
    matmul_pooled(input, params, weights, global_pool())
}

/// [`matmul`] with pooled output storage. Outputs are computed four at a
/// time so the input row is read once per quadruple; every accumulator
/// still sums in ascending feature order, bit-identical to the reference.
#[must_use]
pub fn matmul_pooled(
    input: &TensorData,
    params: &MatMulParams,
    weights: &[f32],
    arena: &impl Arena,
) -> TensorData {
    let in_features = input.shape.elements_per_item();
    let out_features = params.out_features;
    let out_shape = TensorShape::vector(input.shape.batch, out_features);
    let mut out = arena.take_tensor(out_shape);
    for n in 0..input.shape.batch {
        let row = &input.data[n * in_features..(n + 1) * in_features];
        let out_row = &mut out.data[n * out_features..(n + 1) * out_features];
        let mut o = 0;
        while o + 4 <= out_features {
            let w0 = &weights[o * in_features..(o + 1) * in_features];
            let w1 = &weights[(o + 1) * in_features..(o + 2) * in_features];
            let w2 = &weights[(o + 2) * in_features..(o + 3) * in_features];
            let w3 = &weights[(o + 3) * in_features..(o + 4) * in_features];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for ((((&x, &u0), &u1), &u2), &u3) in row.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
                a0 += x * u0;
                a1 += x * u1;
                a2 += x * u2;
                a3 += x * u3;
            }
            out_row[o] = apply_activation(params.activation, a0);
            out_row[o + 1] = apply_activation(params.activation, a1);
            out_row[o + 2] = apply_activation(params.activation, a2);
            out_row[o + 3] = apply_activation(params.activation, a3);
            o += 4;
        }
        for (oo, slot) in out_row.iter_mut().enumerate().skip(o) {
            let w = &weights[oo * in_features..(oo + 1) * in_features];
            let acc: f32 = row.iter().zip(w).map(|(a, b)| a * b).sum();
            *slot = apply_activation(params.activation, acc);
        }
    }
    out
}

/// Channel-wise concatenation.
#[must_use]
pub fn concat(inputs: &[&TensorData]) -> TensorData {
    concat_pooled(inputs, global_pool())
}

/// [`concat`] with pooled output storage: each input contributes one
/// contiguous `channels × h × w` block per sample, copied with a single
/// memcpy instead of per-element indexing.
#[must_use]
pub fn concat_pooled(inputs: &[&TensorData], arena: &impl Arena) -> TensorData {
    let first = inputs[0].shape;
    let channels: usize = inputs.iter().map(|t| t.shape.channels).sum();
    let out_shape = TensorShape::new(first.batch, channels, first.height, first.width);
    let mut out = arena.take_tensor(out_shape);
    let plane = first.height * first.width;
    let out_item = channels * plane;
    for n in 0..first.batch {
        let mut offset = n * out_item;
        for t in inputs {
            debug_assert_eq!((t.shape.height, t.shape.width), (first.height, first.width));
            let cpi = t.shape.channels * plane;
            out.data[offset..offset + cpi].copy_from_slice(&t.data[n * cpi..(n + 1) * cpi]);
            offset += cpi;
        }
    }
    out
}

/// Element-wise addition of all inputs.
#[must_use]
pub fn add(inputs: &[&TensorData]) -> TensorData {
    add_pooled(inputs, global_pool())
}

/// [`add`] with pooled output storage.
#[must_use]
pub fn add_pooled(inputs: &[&TensorData], arena: &impl Arena) -> TensorData {
    let mut out = arena.take_tensor(inputs[0].shape);
    out.data.copy_from_slice(&inputs[0].data);
    for t in &inputs[1..] {
        for (o, v) in out.data.iter_mut().zip(&t.data) {
            *o += v;
        }
    }
    out
}

/// Standalone ReLU.
#[must_use]
pub fn relu(input: &TensorData) -> TensorData {
    relu_pooled(input, global_pool())
}

/// [`relu`] with pooled output storage.
#[must_use]
pub fn relu_pooled(input: &TensorData, arena: &impl Arena) -> TensorData {
    let mut out = arena.take_tensor(input.shape);
    for (o, v) in out.data.iter_mut().zip(&input.data) {
        *o = v.max(0.0);
    }
    out
}

/// Executes one operator given its resolved inputs, using deterministic
/// weights derived from `weight_seed`.
#[must_use]
pub fn execute_op(op: &Op, inputs: &[&TensorData], weight_seed: u64) -> TensorData {
    execute_op_pooled(op, inputs, weight_seed, global_pool())
}

/// [`execute_op`] with pooled scratch and output storage.
#[must_use]
pub fn execute_op_pooled(
    op: &Op,
    inputs: &[&TensorData],
    weight_seed: u64,
    arena: &impl Arena,
) -> TensorData {
    match &op.kind {
        OpKind::Conv2d(p) => {
            let in_c_per_group = inputs[0].shape.channels / p.groups;
            let w = conv_weights(weight_seed, p.out_channels, in_c_per_group, p.kernel);
            conv2d_pooled(inputs[0], p, &w, arena)
        }
        OpKind::SepConv2d(p) => {
            let (dw_seed, pw_seed) = sep_conv_seeds(weight_seed);
            let dw = conv_weights(dw_seed, inputs[0].shape.channels, 1, p.kernel);
            let pw = conv_weights(pw_seed, p.out_channels, inputs[0].shape.channels, (1, 1));
            sep_conv2d_pooled(inputs[0], p, &dw, &pw, arena)
        }
        OpKind::Pool(p) => pool_pooled(inputs[0], p, arena),
        OpKind::MatMul(p) => {
            let w = matmul_weights(
                weight_seed,
                p.out_features,
                inputs[0].shape.elements_per_item(),
            );
            matmul_pooled(inputs[0], p, &w, arena)
        }
        OpKind::Concat => concat_pooled(inputs, arena),
        OpKind::Add => add_pooled(inputs, arena),
        OpKind::Relu => relu_pooled(inputs[0], arena),
        OpKind::Identity => {
            let mut out = arena.take_tensor(inputs[0].shape);
            out.data.copy_from_slice(&inputs[0].data);
            out
        }
    }
}

/// Executes one weighted operator with precomputed weights. Bit-identical
/// to [`execute_op`] when the weights come from
/// [`crate::batch::BlockWeights::precompute`].
///
/// # Panics
///
/// Panics if the weight kind does not match the operator kind.
#[must_use]
pub fn execute_op_with_weights(
    op: &Op,
    inputs: &[&TensorData],
    weights: &crate::batch::OpWeights,
) -> TensorData {
    execute_op_with_weights_pooled(op, inputs, weights, global_pool())
}

/// [`execute_op_with_weights`] with pooled scratch and output storage.
///
/// # Panics
///
/// Panics if the weight kind does not match the operator kind.
#[must_use]
pub fn execute_op_with_weights_pooled(
    op: &Op,
    inputs: &[&TensorData],
    weights: &crate::batch::OpWeights,
    arena: &impl Arena,
) -> TensorData {
    use crate::batch::OpWeights;
    match (&op.kind, weights) {
        (
            OpKind::Conv2d(p),
            OpWeights::Conv {
                packed, quantized, ..
            },
        ) => match (quantized, packed) {
            (Some(quant), _) => conv2d_quant_pooled(inputs[0], p, quant, arena),
            (None, Some(packed)) => conv2d_packed_pooled(inputs[0], p, packed, arena),
            (None, None) => unreachable!("precomputed conv weights carry packed or quantized"),
        },
        (
            OpKind::SepConv2d(p),
            OpWeights::SepConv {
                depthwise_packed,
                pointwise_packed,
                pointwise_quant,
            },
        ) => match (pointwise_quant, pointwise_packed) {
            (Some(quant), _) => {
                sep_conv2d_quant_pooled(inputs[0], p, depthwise_packed, quant, arena)
            }
            (None, Some(pw)) => sep_conv2d_packed_pooled(inputs[0], p, depthwise_packed, pw, arena),
            (None, None) => unreachable!("precomputed sepconv weights carry a pointwise stage"),
        },
        (OpKind::MatMul(p), OpWeights::MatMul(w)) => matmul_pooled(inputs[0], p, w, arena),
        (kind, _) => panic!("mismatched precomputed weights for operator kind {kind:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // A 1×1 convolution with an identity-like weight copies channels.
        let input = TensorData::random(TensorShape::new(1, 2, 3, 3), 1);
        let params = Conv2dParams::plain(2, (1, 1), (1, 1), (0, 0));
        // weights[oc][ic]: identity matrix.
        let weights = vec![1.0, 0.0, 0.0, 1.0];
        let out = conv2d(&input, &params, &weights);
        assert_eq!(out.shape, input.shape);
        for i in 0..input.data.len() {
            assert!((out.data[i] - input.data[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn conv2d_relu_clamps_negatives() {
        let input = TensorData::random(TensorShape::new(1, 3, 5, 5), 2);
        let params = Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1));
        let w = conv_weights(3, 4, 3, (3, 3));
        let out = conv2d(&input, &params, &w);
        assert!(out.data.iter().all(|v| *v >= 0.0));
        assert_eq!(out.shape, TensorShape::new(1, 4, 5, 5));
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let input = TensorData::random(TensorShape::new(1, 2, 8, 8), 4);
        let params = Conv2dParams::plain(2, (3, 3), (2, 2), (1, 1));
        let w = conv_weights(5, 2, 2, (3, 3));
        let out = conv2d(&input, &params, &w);
        assert_eq!(out.shape, TensorShape::new(1, 2, 4, 4));
    }

    #[test]
    fn gemm_conv_is_bit_identical_to_naive_across_shapes() {
        // Shapes chosen to hit the pointwise fast path, strides, padding
        // larger than the kernel reach, grouped and depthwise cases.
        let cases: Vec<(TensorShape, Conv2dParams)> = vec![
            (
                TensorShape::new(2, 8, 9, 7),
                Conv2dParams::relu(12, (3, 3), (1, 1), (1, 1)),
            ),
            (
                TensorShape::new(1, 6, 11, 11),
                Conv2dParams::plain(10, (5, 3), (2, 2), (2, 1)),
            ),
            (
                TensorShape::new(1, 16, 6, 6),
                Conv2dParams::plain(8, (1, 1), (1, 1), (0, 0)),
            ),
            (
                TensorShape::new(1, 12, 8, 8),
                Conv2dParams {
                    out_channels: 24,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: (1, 1),
                    groups: 4,
                    activation: Activation::Relu,
                },
            ),
            (
                TensorShape::new(1, 7, 10, 10),
                Conv2dParams {
                    out_channels: 7,
                    kernel: (3, 3),
                    stride: (2, 2),
                    padding: (1, 1),
                    groups: 7,
                    activation: Activation::None,
                },
            ),
            // Padding wider than the input: the window can miss entirely.
            (
                TensorShape::new(1, 3, 4, 4),
                Conv2dParams::plain(5, (3, 3), (3, 3), (3, 3)),
            ),
        ];
        for (i, (shape, params)) in cases.iter().enumerate() {
            let input = TensorData::random(*shape, 1000 + i as u64);
            let w = conv_weights(
                2000 + i as u64,
                params.out_channels,
                shape.channels / params.groups,
                params.kernel,
            );
            let fast = conv2d(&input, params, &w);
            let reference = conv2d_naive(&input, params, &w);
            assert_eq!(fast, reference, "case {i} must be bit-identical");
        }
    }

    #[test]
    fn max_pool_picks_maximum() {
        let mut input = TensorData::zeros(TensorShape::new(1, 1, 4, 4));
        input.set(0, 0, 1, 1, 5.0);
        input.set(0, 0, 2, 3, -2.0);
        let out = pool(&input, &PoolParams::max((2, 2), (2, 2), (0, 0)));
        assert_eq!(out.shape, TensorShape::new(1, 1, 2, 2));
        assert_eq!(out.at(0, 0, 0, 0), 5.0);
        assert_eq!(out.at(0, 0, 1, 1), 0.0);
    }

    #[test]
    fn padded_max_pool_ignores_out_of_bounds() {
        let input = TensorData::random(TensorShape::new(1, 2, 5, 5), 77);
        let out = pool(&input, &PoolParams::max((3, 3), (2, 2), (1, 1)));
        assert_eq!(out.shape, TensorShape::new(1, 2, 3, 3));
        // The corner window sees only the 2×2 in-bounds values.
        let expected = input
            .at(0, 0, 0, 0)
            .max(input.at(0, 0, 0, 1))
            .max(input.at(0, 0, 1, 0))
            .max(input.at(0, 0, 1, 1));
        assert_eq!(out.at(0, 0, 0, 0), expected);
    }

    #[test]
    fn global_avg_pool_averages() {
        let input = TensorData {
            shape: TensorShape::new(1, 1, 2, 2),
            data: vec![1.0, 2.0, 3.0, 6.0],
        };
        let out = pool(&input, &PoolParams::global_avg());
        assert_eq!(out.at(0, 0, 0, 0), 3.0);
    }

    #[test]
    fn concat_and_add_and_relu() {
        let a = TensorData {
            shape: TensorShape::new(1, 1, 1, 2),
            data: vec![1.0, -2.0],
        };
        let b = TensorData {
            shape: TensorShape::new(1, 1, 1, 2),
            data: vec![3.0, 4.0],
        };
        let cat = concat(&[&a, &b]);
        assert_eq!(cat.shape.channels, 2);
        assert_eq!(cat.data, vec![1.0, -2.0, 3.0, 4.0]);
        let sum = add(&[&a, &b]);
        assert_eq!(sum.data, vec![4.0, 2.0]);
        let r = relu(&a);
        assert_eq!(r.data, vec![1.0, 0.0]);
    }

    #[test]
    fn matmul_matches_manual_computation() {
        let input = TensorData {
            shape: TensorShape::vector(1, 2),
            data: vec![2.0, 3.0],
        };
        let weights = vec![1.0, 0.0, 1.0, 1.0]; // [[1,0],[1,1]]
        let params = MatMulParams {
            out_features: 2,
            activation: Activation::None,
        };
        let out = matmul(&input, &params, &weights);
        assert_eq!(out.data, vec![2.0, 5.0]);
    }

    #[test]
    fn blocked_matmul_handles_remainder_outputs() {
        // 6 outputs exercises the 4-wide block plus a 2-wide tail.
        let input = TensorData::random(TensorShape::vector(3, 10), 5);
        let params = MatMulParams {
            out_features: 6,
            activation: Activation::Relu,
        };
        let w = matmul_weights(9, 6, 10);
        let out = matmul(&input, &params, &w);
        for n in 0..3 {
            for o in 0..6 {
                let expected: f32 = (0..10)
                    .map(|k| input.data[n * 10 + k] * w[o * 10 + k])
                    .fold(0.0, |acc, v| acc + v)
                    .max(0.0);
                assert_eq!(out.data[n * 6 + o], expected);
            }
        }
    }

    #[test]
    fn sepconv_output_shape_and_determinism() {
        let input = TensorData::random(TensorShape::new(1, 4, 6, 6), 9);
        let params = Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1));
        let a = sep_conv2d(&input, &params, 11);
        let b = sep_conv2d(&input, &params, 11);
        assert_eq!(a.shape, TensorShape::new(1, 8, 6, 6));
        assert_eq!(a, b);
        let c = sep_conv2d(&input, &params, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_weights_are_stable_and_seed_dependent() {
        let a = conv_weights(1, 2, 2, (3, 3));
        let b = conv_weights(1, 2, 2, (3, 3));
        let c = conv_weights(2, 2, 2, (3, 3));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 2 * 2 * 9);
        assert!(a.iter().all(|v| v.abs() <= 0.5));
    }
}
