//! Scratch-buffer arena: a thread-safe pool of `f32` buffers reused across
//! operator executions.
//!
//! The hot serving loop runs the same network shapes for every batch, so the
//! executor's working set — im2col patch matrices, activation copies, op
//! output tensors that die at the end of their block — is identical from
//! request to request. [`ScratchPool`] recycles those buffers: once the pool
//! has seen one batch of a given shape profile, steady-state execution
//! performs zero heap allocation in the op loop. Counters distinguish fresh
//! heap allocations from pool reuses so tests can assert the steady state.
//!
//! Buffers handed out by [`ScratchPool::take`] have *unspecified contents*
//! (they may hold data from a previous use); every caller in this crate
//! fully overwrites what it takes. Use [`ScratchPool::take_zeroed`] when
//! zero-initialized memory is required.

use crate::tensor_data::TensorData;
use ios_ir::TensorShape;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A thread-safe pool of reusable `Vec<f32>` scratch buffers.
///
/// `take`/`recycle` are cheap (one short mutex hold each — the free list is
/// kept sorted by capacity, so acquisition is a binary search); the pool is
/// shared by the scoped worker threads of concurrent-stage and batched
/// execution.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<FreeList>,
    fresh: AtomicU64,
    reused: AtomicU64,
}

/// The pooled buffers plus a running total of their capacities.
#[derive(Debug, Default)]
struct FreeList {
    /// Free buffers, sorted ascending by capacity.
    bufs: Vec<Vec<f32>>,
    /// Sum of the pooled buffers' capacities, in elements.
    elements: usize,
}

/// An upper bound on retained buffers; beyond it, recycled buffers are
/// dropped instead of pooled so a pathological workload cannot grow the
/// pool without bound.
const MAX_POOLED_BUFFERS: usize = 256;

/// An upper bound on total retained capacity (64 MiB of `f32`s); the pool
/// backs the process-global convenience entry points, so the cap limits
/// how much a one-shot large execution can leave pinned for the process
/// lifetime.
const MAX_POOLED_ELEMENTS: usize = 16 << 20;

impl ScratchPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Takes a buffer of length `len` with unspecified contents, reusing
    /// the smallest pooled buffer with enough capacity (so big buffers stay
    /// available for the big requests that need them).
    #[must_use]
    pub fn take(&self, len: usize) -> Vec<f32> {
        let recycled = {
            let mut free = self.free.lock().expect("scratch pool lock");
            // The list is sorted by capacity: the first fit is the best fit.
            let i = free.bufs.partition_point(|buf| buf.capacity() < len);
            (i < free.bufs.len()).then(|| {
                let buf = free.bufs.remove(i);
                free.elements -= buf.capacity();
                buf
            })
        };
        match recycled {
            Some(mut buf) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        }
    }

    /// Takes a zero-filled buffer of length `len`.
    #[must_use]
    pub fn take_zeroed(&self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer to the pool for future reuse. Dropped instead of
    /// retained when the pool is at its buffer-count or total-capacity cap.
    pub fn recycle(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().expect("scratch pool lock");
        if free.bufs.len() >= MAX_POOLED_BUFFERS
            || free.elements + buf.capacity() > MAX_POOLED_ELEMENTS
        {
            return;
        }
        let i = free.bufs.partition_point(|b| b.capacity() < buf.capacity());
        free.elements += buf.capacity();
        free.bufs.insert(i, buf);
    }

    /// Takes a tensor of `shape` whose element contents are unspecified;
    /// callers must overwrite every element.
    #[must_use]
    pub fn take_tensor(&self, shape: TensorShape) -> TensorData {
        TensorData {
            shape,
            data: self.take(shape.num_elements()),
        }
    }

    /// Takes a zero-filled tensor of `shape`.
    #[must_use]
    pub fn take_tensor_zeroed(&self, shape: TensorShape) -> TensorData {
        TensorData {
            shape,
            data: self.take_zeroed(shape.num_elements()),
        }
    }

    /// Returns a tensor's storage to the pool.
    pub fn recycle_tensor(&self, tensor: TensorData) {
        self.recycle(tensor.data);
    }

    /// Number of buffers allocated fresh from the heap (pool misses).
    #[must_use]
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Number of buffers served from the pool (pool hits).
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Buffers currently sitting in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("scratch pool lock").bufs.len()
    }

    /// Total capacity currently retained by the pool, in `f32` elements.
    #[must_use]
    pub fn pooled_elements(&self) -> usize {
        self.free.lock().expect("scratch pool lock").elements
    }
}

/// The process-wide pool backing the convenience entry points
/// ([`crate::execute_graph`] and friends) that do not thread an explicit
/// pool. Long-running processes reuse its buffers across calls.
#[must_use]
pub fn global_pool() -> &'static ScratchPool {
    static GLOBAL: std::sync::OnceLock<ScratchPool> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(ScratchPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        let pool = ScratchPool::new();
        let a = pool.take(1024);
        assert_eq!(a.len(), 1024);
        assert_eq!(pool.fresh_allocations(), 1);
        pool.recycle(a);
        let b = pool.take(512);
        assert_eq!(b.len(), 512);
        assert_eq!(pool.fresh_allocations(), 1, "shrinking take must reuse");
        assert_eq!(pool.reuses(), 1);
        pool.recycle(b);
        // A bigger request than any pooled capacity allocates fresh.
        let c = pool.take(4096);
        assert_eq!(pool.fresh_allocations(), 2);
        pool.recycle(c);
    }

    #[test]
    fn take_prefers_smallest_fitting_buffer() {
        let pool = ScratchPool::new();
        let small = pool.take(16);
        let big = pool.take(1 << 20);
        pool.recycle(big);
        pool.recycle(small);
        let again = pool.take(8);
        assert!(
            again.capacity() < 1 << 20,
            "an 8-element take must not consume the megabyte buffer"
        );
    }

    #[test]
    fn capacity_cap_drops_oversized_recycles() {
        let pool = ScratchPool::new();
        let huge = pool.take(MAX_POOLED_ELEMENTS + 1);
        pool.recycle(huge);
        assert_eq!(pool.pooled(), 0, "an over-cap buffer must not be retained");
        assert_eq!(pool.pooled_elements(), 0);
        let small = pool.take(64);
        pool.recycle(small);
        assert_eq!(pool.pooled(), 1);
        assert!(pool.pooled_elements() >= 64);
    }

    #[test]
    fn zeroed_take_clears_recycled_contents() {
        let pool = ScratchPool::new();
        let mut a = pool.take(8);
        a.fill(7.0);
        pool.recycle(a);
        let b = pool.take_zeroed(8);
        assert!(b.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn tensor_round_trip() {
        let pool = ScratchPool::new();
        let shape = TensorShape::new(1, 2, 3, 4);
        let t = pool.take_tensor_zeroed(shape);
        assert_eq!(t.shape, shape);
        assert_eq!(t.data.len(), 24);
        pool.recycle_tensor(t);
        let u = pool.take_tensor(shape);
        assert_eq!(pool.reuses(), 1);
        pool.recycle_tensor(u);
    }
}
