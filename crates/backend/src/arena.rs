//! Scratch-buffer arena: a thread-safe pool of `f32` buffers reused across
//! operator executions.
//!
//! The hot serving loop runs the same network shapes for every batch, so the
//! executor's working set — im2col patch matrices, activation copies, op
//! output tensors that die at the end of their block — is identical from
//! request to request. [`ScratchPool`] recycles those buffers: once the pool
//! has seen one batch of a given shape profile, steady-state execution
//! performs zero heap allocation in the op loop. Counters distinguish fresh
//! heap allocations from pool reuses so tests can assert the steady state.
//!
//! Buffers handed out by [`ScratchPool::take`] have *unspecified contents*
//! (they may hold data from a previous use); every caller in this crate
//! fully overwrites what it takes. Use [`ScratchPool::take_zeroed`] when
//! zero-initialized memory is required.
//!
//! Operators are generic over the [`Arena`] capability rather than the
//! concrete pool, so a schedule-stage group worker can route its scratch
//! through a [`ScratchScope`] — an uncontended thread-local free list that
//! falls back to (and drains back into) the shared [`ScratchPool`] — and
//! the hot op loop stops taking the shared mutex for every intermediate
//! buffer.

use crate::tensor_data::TensorData;
use ios_ir::TensorShape;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The scratch-allocation capability the operator kernels draw from: take
/// a buffer, give it back. Implemented by the shared, thread-safe
/// [`ScratchPool`] and by the single-threaded [`ScratchScope`] wrapper a
/// group worker holds; both hand out plain `Vec<f32>` buffers, so tensors
/// taken from a scope may be recycled into any pool (and vice versa).
pub trait Arena {
    /// Takes a buffer of length `len` with unspecified contents.
    fn take(&self, len: usize) -> Vec<f32>;

    /// Returns a buffer for future reuse.
    fn recycle(&self, buf: Vec<f32>);

    /// Takes a zero-filled buffer of length `len`.
    fn take_zeroed(&self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Takes a tensor of `shape` with unspecified element contents.
    fn take_tensor(&self, shape: TensorShape) -> TensorData {
        TensorData {
            shape,
            data: self.take(shape.num_elements()),
        }
    }

    /// Takes a zero-filled tensor of `shape`.
    fn take_tensor_zeroed(&self, shape: TensorShape) -> TensorData {
        TensorData {
            shape,
            data: self.take_zeroed(shape.num_elements()),
        }
    }

    /// Returns a tensor's storage for future reuse.
    fn recycle_tensor(&self, tensor: TensorData) {
        self.recycle(tensor.data);
    }
}

impl<A: Arena + ?Sized> Arena for &A {
    fn take(&self, len: usize) -> Vec<f32> {
        (**self).take(len)
    }

    fn recycle(&self, buf: Vec<f32>) {
        (**self).recycle(buf);
    }
}

/// A thread-safe pool of reusable `Vec<f32>` scratch buffers.
///
/// `take`/`recycle` are cheap (one short mutex hold each — the free list is
/// kept sorted by capacity, so acquisition is a binary search); the pool is
/// shared by the scoped worker threads of concurrent-stage and batched
/// execution.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<FreeList>,
    fresh: AtomicU64,
    reused: AtomicU64,
}

/// The pooled buffers plus a running total of their capacities.
#[derive(Debug, Default)]
struct FreeList {
    /// Free buffers, sorted ascending by capacity.
    bufs: Vec<Vec<f32>>,
    /// Sum of the pooled buffers' capacities, in elements.
    elements: usize,
}

/// An upper bound on retained buffers; beyond it, recycled buffers are
/// dropped instead of pooled so a pathological workload cannot grow the
/// pool without bound.
const MAX_POOLED_BUFFERS: usize = 256;

/// An upper bound on total retained capacity (64 MiB of `f32`s); the pool
/// backs the process-global convenience entry points, so the cap limits
/// how much a one-shot large execution can leave pinned for the process
/// lifetime.
const MAX_POOLED_ELEMENTS: usize = 16 << 20;

impl ScratchPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Takes a buffer of length `len` with unspecified contents, reusing
    /// the smallest pooled buffer with enough capacity (so big buffers stay
    /// available for the big requests that need them).
    #[must_use]
    pub fn take(&self, len: usize) -> Vec<f32> {
        let recycled = {
            let mut free = self.free.lock().expect("scratch pool lock");
            // The list is sorted by capacity: the first fit is the best fit.
            let i = free.bufs.partition_point(|buf| buf.capacity() < len);
            (i < free.bufs.len()).then(|| {
                let buf = free.bufs.remove(i);
                free.elements -= buf.capacity();
                buf
            })
        };
        match recycled {
            Some(mut buf) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        }
    }

    /// Takes a zero-filled buffer of length `len`.
    #[must_use]
    pub fn take_zeroed(&self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer to the pool for future reuse. Dropped instead of
    /// retained when the pool is at its buffer-count or total-capacity cap.
    pub fn recycle(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().expect("scratch pool lock");
        if free.bufs.len() >= MAX_POOLED_BUFFERS
            || free.elements + buf.capacity() > MAX_POOLED_ELEMENTS
        {
            return;
        }
        let i = free.bufs.partition_point(|b| b.capacity() < buf.capacity());
        free.elements += buf.capacity();
        free.bufs.insert(i, buf);
    }

    /// Takes a tensor of `shape` whose element contents are unspecified;
    /// callers must overwrite every element.
    #[must_use]
    pub fn take_tensor(&self, shape: TensorShape) -> TensorData {
        TensorData {
            shape,
            data: self.take(shape.num_elements()),
        }
    }

    /// Takes a zero-filled tensor of `shape`.
    #[must_use]
    pub fn take_tensor_zeroed(&self, shape: TensorShape) -> TensorData {
        TensorData {
            shape,
            data: self.take_zeroed(shape.num_elements()),
        }
    }

    /// Returns a tensor's storage to the pool.
    pub fn recycle_tensor(&self, tensor: TensorData) {
        self.recycle(tensor.data);
    }

    /// Number of buffers allocated fresh from the heap (pool misses).
    #[must_use]
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Number of buffers served from the pool (pool hits).
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Buffers currently sitting in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("scratch pool lock").bufs.len()
    }

    /// Total capacity currently retained by the pool, in `f32` elements.
    #[must_use]
    pub fn pooled_elements(&self) -> usize {
        self.free.lock().expect("scratch pool lock").elements
    }
}

impl Arena for ScratchPool {
    fn take(&self, len: usize) -> Vec<f32> {
        ScratchPool::take(self, len)
    }

    fn recycle(&self, buf: Vec<f32>) {
        ScratchPool::recycle(self, buf);
    }
}

/// A per-worker scratch scope: an uncontended free list in front of a
/// shared [`ScratchPool`].
///
/// Each schedule-stage group worker creates one scope for its op loop.
/// `take` serves from the local list first (counted as a reuse on the
/// parent so the fresh/reuse accounting stays in one place) and falls back
/// to the parent pool on a miss; `recycle` keeps the buffer local. When the
/// scope drops — at the end of the group — every retained buffer drains
/// back into the parent, so nothing is stranded and the parent's
/// steady-state "no fresh allocations" invariant is preserved across any
/// worker-to-buffer assignment.
///
/// The scope is intentionally **not** `Sync`: it belongs to one worker
/// thread. Cross-thread sharing goes through the parent pool.
#[derive(Debug)]
pub struct ScratchScope<'a> {
    parent: &'a ScratchPool,
    /// Local free buffers, sorted ascending by capacity (like the parent).
    local: RefCell<Vec<Vec<f32>>>,
}

impl<'a> ScratchScope<'a> {
    /// A new, empty scope draining into `parent` on drop.
    #[must_use]
    pub fn new(parent: &'a ScratchPool) -> Self {
        ScratchScope {
            parent,
            local: RefCell::new(Vec::new()),
        }
    }

    /// The shared pool this scope falls back to and drains into.
    #[must_use]
    pub fn parent(&self) -> &'a ScratchPool {
        self.parent
    }

    /// Buffers currently held locally by this scope.
    #[must_use]
    pub fn held(&self) -> usize {
        self.local.borrow().len()
    }
}

impl Arena for ScratchScope<'_> {
    fn take(&self, len: usize) -> Vec<f32> {
        let recycled = {
            let mut local = self.local.borrow_mut();
            let i = local.partition_point(|buf| buf.capacity() < len);
            (i < local.len()).then(|| local.remove(i))
        };
        match recycled {
            Some(mut buf) => {
                // A local hit is still a pool reuse: count it on the parent
                // so fresh/reuse accounting has a single source of truth.
                self.parent.reused.fetch_add(1, Ordering::Relaxed);
                buf.resize(len, 0.0);
                buf
            }
            None => self.parent.take(len),
        }
    }

    fn recycle(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut local = self.local.borrow_mut();
        let i = local.partition_point(|b| b.capacity() < buf.capacity());
        local.insert(i, buf);
    }
}

impl Drop for ScratchScope<'_> {
    fn drop(&mut self) {
        for buf in self.local.borrow_mut().drain(..) {
            self.parent.recycle(buf);
        }
    }
}

/// The process-wide pool backing the convenience entry points
/// ([`crate::execute_graph`] and friends) that do not thread an explicit
/// pool. Long-running processes reuse its buffers across calls.
#[must_use]
pub fn global_pool() -> &'static ScratchPool {
    static GLOBAL: std::sync::OnceLock<ScratchPool> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(ScratchPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        let pool = ScratchPool::new();
        let a = pool.take(1024);
        assert_eq!(a.len(), 1024);
        assert_eq!(pool.fresh_allocations(), 1);
        pool.recycle(a);
        let b = pool.take(512);
        assert_eq!(b.len(), 512);
        assert_eq!(pool.fresh_allocations(), 1, "shrinking take must reuse");
        assert_eq!(pool.reuses(), 1);
        pool.recycle(b);
        // A bigger request than any pooled capacity allocates fresh.
        let c = pool.take(4096);
        assert_eq!(pool.fresh_allocations(), 2);
        pool.recycle(c);
    }

    #[test]
    fn take_prefers_smallest_fitting_buffer() {
        let pool = ScratchPool::new();
        let small = pool.take(16);
        let big = pool.take(1 << 20);
        pool.recycle(big);
        pool.recycle(small);
        let again = pool.take(8);
        assert!(
            again.capacity() < 1 << 20,
            "an 8-element take must not consume the megabyte buffer"
        );
    }

    #[test]
    fn capacity_cap_drops_oversized_recycles() {
        let pool = ScratchPool::new();
        let huge = pool.take(MAX_POOLED_ELEMENTS + 1);
        pool.recycle(huge);
        assert_eq!(pool.pooled(), 0, "an over-cap buffer must not be retained");
        assert_eq!(pool.pooled_elements(), 0);
        let small = pool.take(64);
        pool.recycle(small);
        assert_eq!(pool.pooled(), 1);
        assert!(pool.pooled_elements() >= 64);
    }

    #[test]
    fn zeroed_take_clears_recycled_contents() {
        let pool = ScratchPool::new();
        let mut a = pool.take(8);
        a.fill(7.0);
        pool.recycle(a);
        let b = pool.take_zeroed(8);
        assert!(b.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn scope_serves_locally_and_drains_to_parent() {
        let pool = ScratchPool::new();
        // Warm the parent with one buffer.
        pool.recycle(pool.take(256));
        let (fresh0, reused0) = (pool.fresh_allocations(), pool.reuses());
        {
            let scope = ScratchScope::new(&pool);
            // Miss locally, hit the parent: a parent reuse, no fresh alloc.
            let a = Arena::take(&scope, 128);
            assert_eq!(pool.fresh_allocations(), fresh0);
            assert_eq!(pool.reuses(), reused0 + 1);
            Arena::recycle(&scope, a);
            assert_eq!(scope.held(), 1);
            assert_eq!(pool.pooled(), 0, "the buffer stays local to the scope");
            // Local hit: counted as a parent reuse, parent untouched.
            let b = Arena::take(&scope, 64);
            assert_eq!(pool.reuses(), reused0 + 2);
            assert_eq!(pool.fresh_allocations(), fresh0);
            Arena::recycle(&scope, b);
            // A take larger than anything pooled allocates fresh (through
            // the parent, so the counter advances there).
            let big = Arena::take(&scope, 4096);
            assert_eq!(pool.fresh_allocations(), fresh0 + 1);
            Arena::recycle(&scope, big);
            assert_eq!(scope.held(), 2);
        }
        // Scope dropped: both buffers drained back to the parent.
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn scope_prefers_smallest_fitting_local_buffer() {
        let pool = ScratchPool::new();
        let scope = ScratchScope::new(&pool);
        let big = Arena::take(&scope, 1 << 16);
        let little = Arena::take(&scope, 32);
        Arena::recycle(&scope, big);
        Arena::recycle(&scope, little);
        let small = Arena::take(&scope, 8);
        assert!(
            small.capacity() < 1 << 16,
            "an 8-element take must not consume the 64K buffer"
        );
    }

    #[test]
    fn scope_drains_to_parent_on_panic() {
        // The drain is Drop-based, so it runs during unwinding too: a
        // panicking stage worker cannot strand the buffers its scope
        // retained. (Buffers the worker itself still holds at panic time
        // are the executor's responsibility — see its GroupOutputs guard.)
        let pool = ScratchPool::new();
        pool.recycle(pool.take(256));
        let fresh = pool.fresh_allocations();
        for round in 0..3 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let scope = ScratchScope::new(&pool);
                let a = Arena::take(&scope, 200);
                Arena::recycle(&scope, a);
                assert_eq!(pool.pooled(), 0, "the buffer is held locally");
                panic!("injected worker fault");
            }));
            assert!(result.is_err());
            assert_eq!(
                pool.pooled(),
                1,
                "round {round}: the scope must drain its buffer on unwind"
            );
            assert_eq!(
                pool.fresh_allocations(),
                fresh,
                "round {round}: repeat panics must not grow the pool"
            );
        }
    }

    #[test]
    fn tensor_round_trip() {
        let pool = ScratchPool::new();
        let shape = TensorShape::new(1, 2, 3, 4);
        let t = pool.take_tensor_zeroed(shape);
        assert_eq!(t.shape, shape);
        assert_eq!(t.data.len(), 24);
        pool.recycle_tensor(t);
        let u = pool.take_tensor(shape);
        assert_eq!(pool.reuses(), 1);
        pool.recycle_tensor(u);
    }
}
