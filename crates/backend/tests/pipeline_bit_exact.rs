//! Property tests pinning down the cross-block pipeline's bit-exactness:
//! for random multi-block networks (RandWire-style random DAG blocks with
//! random wiring, branch counts and channel widths), random batch sizes
//! 1–8 and every kind of segment split — the degenerate single-segment
//! plan, the one-segment-per-block plan, and random interior boundaries —
//! pipelined execution must be **bit-identical** (`assert_eq!`, no
//! tolerances) to flat batched execution and to per-sample solo runs,
//! with and without an IOS schedule.

use ios_backend::{
    execute_network, execute_network_batched, execute_network_pipelined, split_batch, stack_batch,
    NetworkWeights, ScratchPool, TensorData,
};
use ios_core::{optimize_network, SchedulerConfig, SimCostModel};
use ios_ir::{
    Block, Conv2dParams, GraphBuilder, Network, PoolParams, SegmentPlan, TensorShape, Value,
};
use ios_sim::{DeviceKind, Simulator};
use proptest::prelude::*;

/// Per-operator recipe of a random block, packed into one byte: the low
/// bits pick the operator kind and which earlier value feeds it, the high
/// bits the channel width — so the generated DAGs are randomly wired like
/// a RandWire stage (every op reads a random predecessor; sinks are
/// aggregated at the end).
type OpSpec = u8;

/// Builds one random block from its recipe. All generated operators
/// preserve the spatial extent, so any pair of values stays concatenable
/// regardless of wiring.
fn random_block(name: &str, input_shapes: Vec<TensorShape>, spec: &[OpSpec]) -> Block {
    let mut b = GraphBuilder::with_inputs(name, input_shapes.clone());
    let mut values: Vec<Value> = (0..input_shapes.len()).map(|i| b.input(i)).collect();
    let mut used = vec![false; values.len()];
    for (i, &byte) in spec.iter().enumerate() {
        let source_index = (byte >> 2) as usize % values.len();
        let source = values[source_index];
        used[source_index] = true;
        let channels = 2 + (byte >> 4) as usize % 5;
        let value = match byte % 3 {
            0 => b.conv2d(
                format!("{name}_conv3_{i}"),
                source,
                Conv2dParams::relu(channels, (3, 3), (1, 1), (1, 1)),
            ),
            1 => b.conv2d(
                format!("{name}_conv1_{i}"),
                source,
                Conv2dParams::plain(channels, (1, 1), (1, 1), (0, 0)),
            ),
            _ => b.pool(
                format!("{name}_pool_{i}"),
                source,
                PoolParams::max((3, 3), (1, 1), (1, 1)),
            ),
        };
        values.push(value);
        used.push(false);
    }
    // Aggregate the sinks (values nothing consumed) into the block output,
    // like a RandWire stage aggregates its sink nodes.
    let sinks: Vec<Value> = values
        .iter()
        .zip(&used)
        .filter(|(_, used)| !**used)
        .map(|(v, _)| *v)
        .collect();
    let out = if sinks.len() > 1 {
        b.concat(format!("{name}_out"), &sinks)
    } else {
        sinks[0]
    };
    Block::new(b.build(vec![out]))
}

/// Chains random blocks into a network (block `i + 1` consumes block `i`'s
/// output).
fn random_network(block_specs: &[Vec<OpSpec>]) -> Network {
    let input = TensorShape::new(1, 4, 6, 6);
    let mut shapes = vec![input];
    let mut blocks = Vec::new();
    for (i, spec) in block_specs.iter().enumerate() {
        let block = random_block(&format!("prop_pipe_b{i}"), shapes, spec);
        shapes = block.graph.output_shapes();
        blocks.push(block);
    }
    Network::new("prop_pipe", input, blocks)
}

/// Every segment plan exercised for a network: the two degenerate plans
/// plus one derived from the random cut mask.
fn plans_under_test(num_blocks: usize, cut_mask: u8) -> Vec<SegmentPlan> {
    let mut starts = vec![0usize];
    for block in 1..num_blocks {
        if cut_mask & (1 << (block - 1)) != 0 {
            starts.push(block);
        }
    }
    vec![
        SegmentPlan::single(num_blocks),
        SegmentPlan::per_block(num_blocks),
        SegmentPlan::from_starts(num_blocks, starts).expect("cut mask yields valid starts"),
    ]
}

fn block_specs_strategy() -> impl Strategy<Value = Vec<Vec<OpSpec>>> {
    collection::vec(collection::vec(any::<u8>(), 1..4), 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pipelined_execution_is_bit_identical_for_any_split(
        specs in block_specs_strategy(),
        batch in 1usize..9,
        cut_mask in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let net = random_network(&specs);
        let weights = NetworkWeights::precompute(&net);
        let samples: Vec<TensorData> = (0..batch)
            .map(|i| TensorData::random(net.input_shape, seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = stack_batch(&refs);

        let arena = ScratchPool::new();
        let flat = execute_network_batched(&net, None, &weights, std::slice::from_ref(&stacked), &arena);
        for plan in plans_under_test(net.blocks.len(), cut_mask) {
            let piped = execute_network_pipelined(&net, None, &weights, std::slice::from_ref(&stacked), &plan);
            prop_assert_eq!(
                &piped, &flat,
                "plan {} diverged from flat batched execution", plan
            );
        }

        // Flat batched (and therefore every pipelined run) matches solo
        // per-sample execution bit for bit.
        let per_output: Vec<Vec<TensorData>> = flat.iter().map(split_batch).collect();
        for (i, sample) in samples.iter().enumerate() {
            let solo = execute_network(&net, std::slice::from_ref(sample));
            for (o, solo_out) in solo.iter().enumerate() {
                prop_assert_eq!(&per_output[o][i], solo_out);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pipelined_execution_is_bit_identical_under_ios_schedules(
        specs in block_specs_strategy(),
        batch in 1usize..5,
        cut_mask in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let net = random_network(&specs);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let schedule =
            optimize_network(&net, &cost, &SchedulerConfig::paper_default()).schedule;
        let weights = NetworkWeights::precompute(&net);
        let samples: Vec<TensorData> = (0..batch)
            .map(|i| TensorData::random(net.input_shape, seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = stack_batch(&refs);

        let arena = ScratchPool::new();
        let flat = execute_network_batched(
            &net,
            Some(&schedule),
            &weights,
            std::slice::from_ref(&stacked),
            &arena,
        );
        for plan in plans_under_test(net.blocks.len(), cut_mask) {
            let piped = execute_network_pipelined(
                &net,
                Some(&schedule),
                &weights,
                std::slice::from_ref(&stacked),
                &plan,
            );
            prop_assert_eq!(
                &piped, &flat,
                "scheduled plan {} diverged from flat batched execution", plan
            );
        }
    }
}
