//! Property tests pinning down the execution engine's bit-exactness
//! guarantees: the im2col + blocked-GEMM convolution, the pool/matmul
//! interior fast paths, the arena-backed executor and the parallel batched
//! network path must all be **bit-identical** (`assert_eq!`, no tolerances)
//! to the naive reference across randomized shapes, strides, padding,
//! groups, batch sizes — and SIMD ISAs: the dispatch module's forced-ISA
//! hook pins every supported tier to the same bits.

use ios_backend::gemm::{
    conv2d_im2col_fused, conv2d_im2col_packed_fused, conv2d_im2col_quant_fused,
};
use ios_backend::ops_cpu::{
    conv2d, conv2d_naive, conv2d_naive_quant, conv2d_packed, conv_weights, matmul, matmul_weights,
    pool,
};
use ios_backend::{
    execute_graph, execute_graph_pooled, execute_graph_uncached, execute_network,
    execute_network_batched, execute_network_batched_capped, execute_network_pipelined,
    sample_scale, split_batch, BlockWeights, ConvEpilogue, NetworkWeights, PackedFilter,
    QuantizedFilter, ScratchPool, TensorData, WeightPrecision,
};
use ios_ir::{
    Activation, Block, Conv2dParams, GraphBuilder, MatMulParams, Network, PoolKind, PoolParams,
    SegmentPlan, TensorShape,
};
use proptest::prelude::*;

/// The original per-element reference pooling loop, preserved verbatim as
/// the oracle for the clamped-range fast path.
fn pool_reference(input: &TensorData, params: &PoolParams) -> TensorData {
    let in_shape = input.shape;
    let (oh, ow) = in_shape.conv_output_hw(params.kernel, params.stride, params.padding);
    let out_shape = TensorShape::new(in_shape.batch, in_shape.channels, oh, ow);
    let mut out = TensorData::zeros(out_shape);
    for n in 0..in_shape.batch {
        for c in 0..in_shape.channels {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc: f32 = if params.kind == PoolKind::Max {
                        f32::NEG_INFINITY
                    } else {
                        0.0
                    };
                    let mut count = 0usize;
                    for ky in 0..params.kernel.0 {
                        for kx in 0..params.kernel.1 {
                            let iy =
                                (y * params.stride.0 + ky) as isize - params.padding.0 as isize;
                            let ix =
                                (x * params.stride.1 + kx) as isize - params.padding.1 as isize;
                            if iy < 0
                                || ix < 0
                                || iy >= in_shape.height as isize
                                || ix >= in_shape.width as isize
                            {
                                continue;
                            }
                            let v = input.at(n, c, iy as usize, ix as usize);
                            if params.kind == PoolKind::Max {
                                acc = acc.max(v);
                            } else {
                                acc += v;
                            }
                            count += 1;
                        }
                    }
                    let value = if params.kind == PoolKind::Max {
                        acc
                    } else {
                        acc / count.max(1) as f32
                    };
                    out.set(n, c, y, x, value);
                }
            }
        }
    }
    out
}

/// The original row-times-matrix reference for the blocked matmul.
fn matmul_reference(input: &TensorData, params: &MatMulParams, weights: &[f32]) -> TensorData {
    let in_features = input.shape.elements_per_item();
    let out_shape = TensorShape::vector(input.shape.batch, params.out_features);
    let mut out = TensorData::zeros(out_shape);
    for n in 0..input.shape.batch {
        let row = &input.data[n * in_features..(n + 1) * in_features];
        for o in 0..params.out_features {
            let w = &weights[o * in_features..(o + 1) * in_features];
            let acc: f32 = row.iter().zip(w).map(|(a, b)| a * b).sum();
            let v = match params.activation {
                Activation::None => acc,
                Activation::Relu => acc.max(0.0),
            };
            out.data[n * params.out_features + o] = v;
        }
    }
    out
}

/// A tiny two-block network used by the executor/batched properties.
fn tiny_network() -> Network {
    let input = TensorShape::new(1, 6, 9, 9);
    let mut b = GraphBuilder::new("prop_tiny_b0", input);
    let x = b.input(0);
    let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let c = b.conv2d("c", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
    let p = b.pool("p", x, PoolParams::max((2, 2), (2, 2), (0, 0)));
    let cat = b.concat("cat", &[a, c]);
    let block0 = Block::new(b.build(vec![cat, p]));

    let shapes = block0.graph.output_shapes();
    let mut b = GraphBuilder::with_inputs("prop_tiny_b1", shapes);
    let x0 = b.input(0);
    let x1 = b.input(1);
    let d = b.conv2d("d", x0, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
    let e = b.conv2d("e", x0, Conv2dParams::plain(6, (1, 1), (1, 1), (0, 0)));
    let s = b.add_op("s", &[d, e]);
    let f = b.conv2d("f", x1, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
    let block1 = Block::new(b.build(vec![s, f]));
    Network::new("prop_tiny", input, vec![block0, block1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_conv_is_bit_identical_to_naive(
        seed in any::<u64>(),
        batch in 1usize..3,
        group_case in 0usize..3,
        channels_per_group in 1usize..5,
        out_per_group in 1usize..5,
        height in 1usize..11,
        width in 1usize..11,
        kh in 1usize..5,
        kw in 1usize..5,
        sh in 1usize..4,
        sw in 1usize..4,
        ph in 0usize..4,
        pw in 0usize..4,
        relu in any::<bool>(),
    ) {
        let groups = [1usize, 2, 3][group_case];
        let in_c = channels_per_group * groups;
        let out_c = out_per_group * groups;
        // The IR requires the padded input to cover the kernel.
        let h = height.max(kh.saturating_sub(2 * ph));
        let w = width.max(kw.saturating_sub(2 * pw));
        let shape = TensorShape::new(batch, in_c, h, w);
        let params = Conv2dParams {
            out_channels: out_c,
            kernel: (kh, kw),
            stride: (sh, sw),
            padding: (ph, pw),
            groups,
            activation: if relu { Activation::Relu } else { Activation::None },
        };
        let input = TensorData::random(shape, seed);
        let weights = conv_weights(seed ^ 0xC0DE, out_c, channels_per_group, (kh, kw));
        let fast = conv2d(&input, &params, &weights);
        let reference = conv2d_naive(&input, &params, &weights);
        prop_assert_eq!(&fast, &reference);
        // The tile-major packed layout must consume exactly the same weight
        // values in the same per-element order: bit-identical to both the
        // unpacked GEMM and the naive oracle.
        let packed = PackedFilter::pack(&weights, out_c, groups, channels_per_group * kh * kw);
        let packed_out = conv2d_packed(&input, &params, &packed);
        prop_assert_eq!(&packed_out, &fast);
        prop_assert_eq!(&packed_out, &reference);
    }

    #[test]
    fn pool_fast_path_is_bit_identical_to_reference(
        seed in any::<u64>(),
        batch in 1usize..3,
        channels in 1usize..5,
        height in 2usize..12,
        width in 2usize..12,
        kh in 1usize..4,
        kw in 1usize..4,
        sh in 1usize..3,
        sw in 1usize..3,
        ph in 0usize..2,
        pw in 0usize..2,
        is_max in any::<bool>(),
    ) {
        let h = height.max(kh.saturating_sub(2 * ph));
        let w = width.max(kw.saturating_sub(2 * pw));
        let input = TensorData::random(TensorShape::new(batch, channels, h, w), seed);
        let params = if is_max {
            PoolParams::max((kh, kw), (sh, sw), (ph, pw))
        } else {
            PoolParams::avg((kh, kw), (sh, sw), (ph, pw))
        };
        prop_assert_eq!(pool(&input, &params), pool_reference(&input, &params));
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_reference(
        seed in any::<u64>(),
        batch in 1usize..4,
        in_features in 1usize..33,
        out_features in 1usize..19,
        relu in any::<bool>(),
    ) {
        let input = TensorData::random(TensorShape::vector(batch, in_features), seed);
        let params = MatMulParams {
            out_features,
            activation: if relu { Activation::Relu } else { Activation::None },
        };
        let weights = matmul_weights(seed ^ 0xFEED, out_features, in_features);
        prop_assert_eq!(
            matmul(&input, &params, &weights),
            matmul_reference(&input, &params, &weights)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_conv_epilogue_is_bit_identical_to_separate_passes(
        seed in any::<u64>(),
        batch in 1usize..3,
        group_case in 0usize..3,
        channels_per_group in 1usize..4,
        out_per_group in 1usize..4,
        height in 1usize..9,
        width in 1usize..9,
        kh in 1usize..4,
        kw in 1usize..4,
        sh in 1usize..3,
        sw in 1usize..3,
        ph in 0usize..3,
        pw in 0usize..3,
        conv_relu in any::<bool>(),
        input_relu in any::<bool>(),
        use_bias in any::<bool>(),
        use_residual in any::<bool>(),
        ep_relu in any::<bool>(),
    ) {
        let groups = [1usize, 2, 3][group_case];
        let in_c = channels_per_group * groups;
        let out_c = out_per_group * groups;
        let h = height.max(kh.saturating_sub(2 * ph));
        let w = width.max(kw.saturating_sub(2 * pw));
        let shape = TensorShape::new(batch, in_c, h, w);
        let params = Conv2dParams {
            out_channels: out_c,
            kernel: (kh, kw),
            stride: (sh, sw),
            padding: (ph, pw),
            groups,
            activation: if conv_relu { Activation::Relu } else { Activation::None },
        };
        let input = TensorData::random(shape, seed);
        let weights = conv_weights(seed ^ 0xC0DE, out_c, channels_per_group, (kh, kw));

        // Separate-pass reference: an input-ReLU copy, the convolution with
        // the activation deferred, then bias / residual / ReLU as
        // whole-tensor passes in the epilogue's order.
        let mut pre = input.clone();
        if input_relu {
            for v in &mut pre.data {
                *v = v.max(0.0);
            }
        }
        let plain = Conv2dParams { activation: Activation::None, ..params };
        let mut reference = conv2d(&pre, &plain, &weights);
        let out_shape = reference.shape;
        let plane = out_shape.height * out_shape.width;
        let bias = conv_weights(seed ^ 0xB1A5, out_c, 1, (1, 1));
        let residual = TensorData::random(out_shape, seed ^ 0x9E5);
        if use_bias {
            for n in 0..out_shape.batch {
                for (oc, &bv) in bias.iter().enumerate() {
                    let start = (n * out_c + oc) * plane;
                    for v in &mut reference.data[start..start + plane] {
                        *v += bv;
                    }
                }
            }
        }
        if use_residual {
            for (v, r) in reference.data.iter_mut().zip(&residual.data) {
                *v += r;
            }
        }
        if conv_relu || ep_relu {
            for v in &mut reference.data {
                *v = v.max(0.0);
            }
        }

        let ep = ConvEpilogue {
            input_relu,
            bias: use_bias.then_some(bias.as_slice()),
            residual: use_residual.then_some(&residual),
            relu: ep_relu,
        };
        let arena = ScratchPool::new();
        let fused = conv2d_im2col_fused(&input, &params, &weights, &ep, &arena);
        prop_assert_eq!(&fused, &reference);
        let packed = PackedFilter::pack(&weights, out_c, groups, channels_per_group * kh * kw);
        let packed_fused = conv2d_im2col_packed_fused(&input, &params, &packed, &ep, &arena);
        prop_assert_eq!(&packed_fused, &reference);
    }

    #[test]
    fn f32_kernels_are_bit_identical_across_isas(
        seed in any::<u64>(),
        batch in 1usize..3,
        group_case in 0usize..3,
        channels_per_group in 1usize..4,
        out_per_group in 1usize..6,
        height in 1usize..9,
        width in 1usize..12,
        kh in 1usize..4,
        kw in 1usize..4,
        sh in 1usize..3,
        sw in 1usize..3,
        ph in 0usize..3,
        pw in 0usize..3,
        input_relu in any::<bool>(),
        use_bias in any::<bool>(),
        use_residual in any::<bool>(),
        ep_relu in any::<bool>(),
    ) {
        // The explicit AVX2 f32 tiles (mirroring the int8 "avx2 must match
        // scalar" pin): both GEMM paths must produce bit-identical outputs
        // under every ISA the host supports, across random shapes — edge
        // tiles (partial mr/nr) included via the free-ranging out_c and
        // spatial extents — and every epilogue combination.
        use ios_backend::simd::{self, Isa};
        let groups = [1usize, 2, 3][group_case];
        let in_c = channels_per_group * groups;
        let out_c = out_per_group * groups;
        let h = height.max(kh.saturating_sub(2 * ph));
        let w = width.max(kw.saturating_sub(2 * pw));
        let shape = TensorShape::new(batch, in_c, h, w);
        let params = Conv2dParams {
            out_channels: out_c,
            kernel: (kh, kw),
            stride: (sh, sw),
            padding: (ph, pw),
            groups,
            activation: Activation::None,
        };
        let input = TensorData::random(shape, seed);
        let weights = conv_weights(seed ^ 0xC0DE, out_c, channels_per_group, (kh, kw));
        let packed = PackedFilter::pack(&weights, out_c, groups, channels_per_group * kh * kw);
        let arena = ScratchPool::new();
        let probe = conv2d_im2col_fused(&input, &params, &weights, &ConvEpilogue::default(), &arena);
        let bias = conv_weights(seed ^ 0xB1A5, out_c, 1, (1, 1));
        let residual = TensorData::random(probe.shape, seed ^ 0x9E5);
        let ep = ConvEpilogue {
            input_relu,
            bias: use_bias.then_some(bias.as_slice()),
            residual: use_residual.then_some(&residual),
            relu: ep_relu,
        };
        let run = |isa: Isa| {
            simd::with_forced_isa(isa, || {
                (
                    conv2d_im2col_fused(&input, &params, &weights, &ep, &arena),
                    conv2d_im2col_packed_fused(&input, &params, &packed, &ep, &arena),
                )
            })
        };
        let (ref_unpacked, ref_packed) = run(Isa::Scalar);
        for isa in [Isa::Sse2, Isa::Avx2] {
            if isa > simd::detected_isa() {
                continue;
            }
            let (unpacked, packed_out) = run(isa);
            prop_assert_eq!(&unpacked, &ref_unpacked, "unpacked f32 path differs on {}", isa);
            prop_assert_eq!(&packed_out, &ref_packed, "packed f32 path differs on {}", isa);
        }
    }

    #[test]
    fn quantized_conv_matches_its_oracle_and_stays_calibrated(
        seed in any::<u64>(),
        batch in 1usize..3,
        group_case in 0usize..3,
        channels_per_group in 1usize..4,
        out_per_group in 1usize..4,
        height in 2usize..9,
        width in 2usize..9,
        kh in 1usize..4,
        kw in 1usize..4,
        sh in 1usize..3,
        sw in 1usize..3,
        ph in 0usize..3,
        pw in 0usize..3,
        conv_relu in any::<bool>(),
        input_relu in any::<bool>(),
        use_bias in any::<bool>(),
        use_residual in any::<bool>(),
    ) {
        let groups = [1usize, 2, 3][group_case];
        let in_c = channels_per_group * groups;
        let out_c = out_per_group * groups;
        let h = height.max(kh.saturating_sub(2 * ph));
        let w = width.max(kw.saturating_sub(2 * pw));
        let shape = TensorShape::new(batch, in_c, h, w);
        let params = Conv2dParams {
            out_channels: out_c,
            kernel: (kh, kw),
            stride: (sh, sw),
            padding: (ph, pw),
            groups,
            activation: if conv_relu { Activation::Relu } else { Activation::None },
        };
        let input = TensorData::random(shape, seed);
        let weights = conv_weights(seed ^ 0xC0DE, out_c, channels_per_group, (kh, kw));
        let k_len = channels_per_group * kh * kw;
        let quant = QuantizedFilter::quantize(&weights, out_c, groups, k_len);

        let arena = ScratchPool::new();
        let probe = conv2d_im2col_fused(&input, &params, &weights, &ConvEpilogue::default(), &arena);
        let bias = conv_weights(seed ^ 0xB1A5, out_c, 1, (1, 1));
        let residual = TensorData::random(probe.shape, seed ^ 0x9E5);
        let ep = ConvEpilogue {
            input_relu,
            bias: use_bias.then_some(bias.as_slice()),
            residual: use_residual.then_some(&residual),
            relu: false,
        };

        // Byte-identity: every int8 fast path must equal the naive integer
        // oracle exactly — integer accumulation is order-exact.
        let fast = conv2d_im2col_quant_fused(&input, &params, &quant, &ep, &arena);
        let oracle = conv2d_naive_quant(&input, &params, &quant, &ep);
        prop_assert_eq!(&fast, &oracle);

        // Calibration: against the fused f32 kernel, each element stays
        // within the documented k_len · s_in · s_w[oc] · 128 bound (one
        // half-step rounding per quantized operand, no clamping by
        // construction of the scales).
        let f32_out = conv2d_im2col_fused(&input, &params, &weights, &ep, &arena);
        let per_item = input.shape.elements_per_item();
        let plane = f32_out.shape.height * f32_out.shape.width;
        for n in 0..f32_out.shape.batch {
            let s_in = sample_scale(&input.data[n * per_item..(n + 1) * per_item], input_relu);
            for oc in 0..out_c {
                let bound = k_len as f32 * s_in * quant.scales()[oc] * 128.0 + 1e-5;
                let start = (n * out_c + oc) * plane;
                for i in 0..plane {
                    let d = (fast.data[start + i] - f32_out.data[start + i]).abs();
                    prop_assert!(d <= bound, "calibration error {} exceeds bound {}", d, bound);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn int8_network_execution_is_byte_identical_across_strategies(
        seed in any::<u64>(),
        batch in 1usize..5,
    ) {
        let net = tiny_network();
        let weights = NetworkWeights::precompute_as(&net, WeightPrecision::Int8);
        let samples: Vec<TensorData> = (0..batch)
            .map(|i| TensorData::random(net.input_shape, seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = ios_backend::stack_batch(&refs);
        let arena = ScratchPool::new();
        let serial = execute_network_batched_capped(
            &net, None, &weights, std::slice::from_ref(&stacked), &arena, 1);
        let threaded = execute_network_batched_capped(
            &net, None, &weights, std::slice::from_ref(&stacked), &arena, 4);
        prop_assert_eq!(&serial, &threaded, "worker count must not change int8 bytes");
        for plan in [SegmentPlan::single(2), SegmentPlan::per_block(2)] {
            let piped = execute_network_pipelined(
                &net, None, &weights, std::slice::from_ref(&stacked), &plan);
            prop_assert_eq!(&serial, &piped, "segmentation must not change int8 bytes");
        }
    }

    #[test]
    fn arena_backed_executor_is_bit_identical(seed in any::<u64>()) {
        let net = tiny_network();
        let graph = &net.blocks[0].graph;
        let inputs = vec![TensorData::random(net.input_shape, seed)];
        let reference = execute_graph_uncached(graph, &inputs);
        prop_assert_eq!(&execute_graph(graph, &inputs), &reference);
        let weights = BlockWeights::precompute(graph);
        let arena = ScratchPool::new();
        let pooled = execute_graph_pooled(graph, &inputs, Some(&weights), &arena);
        prop_assert_eq!(&pooled, &reference);
    }

    #[test]
    fn parallel_batched_execution_is_bit_identical_per_sample(
        seed in any::<u64>(),
        batch in 1usize..6,
    ) {
        let net = tiny_network();
        let weights = NetworkWeights::precompute(&net);
        let samples: Vec<TensorData> = (0..batch)
            .map(|i| TensorData::random(net.input_shape, seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&TensorData> = samples.iter().collect();
        let stacked = ios_backend::stack_batch(&refs);
        let arena = ScratchPool::new();
        let batched = execute_network_batched(&net, None, &weights, &[stacked], &arena);
        let per_output: Vec<Vec<TensorData>> = batched.iter().map(split_batch).collect();
        for (i, sample) in samples.iter().enumerate() {
            let solo = execute_network(&net, std::slice::from_ref(sample));
            for (o, solo_out) in solo.iter().enumerate() {
                prop_assert_eq!(&per_output[o][i], solo_out);
            }
        }
    }
}

/// The steady-state guarantee of the full serving boundary: after one
/// warm-up batch, repeat batches of the same shape profile perform zero
/// fresh heap allocations inside the execution engine — including the
/// stacked *output* tensors, which now draw from the arena and return to
/// it when the caller recycles them. A single sample worker makes the
/// pool's take/recycle sequence fully deterministic (a multi-worker pool's
/// *peak simultaneous* demand depends on thread interleaving); the
/// parallel path's numerics are covered by the proptest above.
#[test]
fn batched_execution_boundary_is_allocation_free_in_steady_state() {
    let net = tiny_network();
    let weights = NetworkWeights::precompute(&net);
    let samples: Vec<TensorData> = (0..4)
        .map(|i| TensorData::random(net.input_shape, 90 + i as u64))
        .collect();
    let refs: Vec<&TensorData> = samples.iter().collect();
    let stacked = ios_backend::stack_batch(&refs);
    let run = |arena: &ScratchPool| {
        ios_backend::execute_network_batched_capped(
            &net,
            None,
            &weights,
            std::slice::from_ref(&stacked),
            arena,
            1,
        )
    };

    let arena = ScratchPool::new();
    let warmup = run(&arena);
    // Keep heap copies as the reference; the arena-drawn originals return
    // to the pool like a serving runtime's response leases would.
    let first: Vec<TensorData> = warmup.to_vec();
    for t in warmup {
        arena.recycle_tensor(t);
    }
    let warmed = arena.fresh_allocations();
    assert!(warmed > 0, "the warm-up batch fills the pool");
    for round in 0..3 {
        let again = run(&arena);
        assert_eq!(again, first, "repeat batches are deterministic");
        for t in again {
            arena.recycle_tensor(t);
        }
        assert_eq!(
            arena.fresh_allocations(),
            warmed,
            "round {round}: the steady-state serving boundary must not allocate"
        );
        assert!(arena.reuses() > 0);
    }
    // The parallel fan-out shares the same pool and produces the same
    // stacked outputs (its allocation count depends on interleaving).
    let parallel =
        execute_network_batched(&net, None, &weights, std::slice::from_ref(&stacked), &arena);
    assert_eq!(parallel, first);
}
