//! The dynamic batching queue.
//!
//! Single-sample requests accumulate in a FIFO; worker threads take
//! coalesced batches with the classic dynamic-batching policy: dispatch as
//! soon as `max_batch` requests are queued, or when the *oldest* queued
//! request has waited `max_wait`, whichever comes first. Under a deep queue
//! every dispatch is a full batch (maximum device efficiency); under trickle
//! load the wait bound keeps tail latency in check.

use crate::request::Pending;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<Pending>,
    closed: bool,
}

/// A thread-safe dynamic batching queue.
#[derive(Debug, Default)]
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl BatchQueue {
    pub fn new() -> Self {
        BatchQueue::default()
    }

    /// Enqueues a request. Returns `false` (dropping the request) if the
    /// queue is closed.
    pub fn push(&self, pending: Pending) -> bool {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return false;
        }
        state.queue.push_back(pending);
        // Wake one worker; it re-checks the batching condition itself.
        self.available.notify_one();
        true
    }

    /// Number of requests currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").queue.len()
    }

    /// Closes the queue: pending requests are still handed out, further
    /// `push` calls are rejected, and workers receive `None` once drained.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Takes the next batch according to the dynamic batching policy, or
    /// `None` when the queue is closed and drained.
    ///
    /// Blocks while the queue is empty (and open), or while a partial batch
    /// is still inside the oldest request's `max_wait` window.
    pub fn next_batch(
        &self,
        max_batch: usize,
        max_wait: std::time::Duration,
    ) -> Option<Vec<Pending>> {
        // The span covers the whole wait: on a trace timeline it is the
        // gap between a worker going idle and its next batch forming.
        let mut span = ios_telemetry::tracer().span("batcher.next_batch", "serve");
        let batch = self.wait_for_batch(max_batch, max_wait);
        if let Some(batch) = &batch {
            span.set_arg(batch.len() as u64);
        }
        batch
    }

    fn wait_for_batch(
        &self,
        max_batch: usize,
        max_wait: std::time::Duration,
    ) -> Option<Vec<Pending>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.queue.len() >= max_batch {
                return Some(drain(&mut state.queue, max_batch));
            }
            if state.closed {
                if state.queue.is_empty() {
                    return None;
                }
                return Some(drain(&mut state.queue, max_batch));
            }
            if let Some(oldest) = state.queue.front() {
                let deadline = oldest.enqueued_at + max_wait;
                let now = Instant::now();
                if now >= deadline {
                    return Some(drain(&mut state.queue, max_batch));
                }
                let (guard, _) = self
                    .available
                    .wait_timeout(state, deadline - now)
                    .expect("queue lock");
                state = guard;
            } else {
                state = self.available.wait(state).expect("queue lock");
            }
        }
    }
}

fn drain(queue: &mut VecDeque<Pending>, max_batch: usize) -> Vec<Pending> {
    let take = queue.len().min(max_batch);
    queue.drain(..take).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{InferenceResponse, RequestId};
    use ios_backend::TensorData;
    use ios_ir::TensorShape;
    use std::sync::mpsc;
    use std::time::Duration;

    fn pending(id: u64) -> (Pending, mpsc::Receiver<InferenceResponse>) {
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            id: RequestId(id),
            input: TensorData::zeros(TensorShape::new(1, 1, 1, 1)),
            enqueued_at: Instant::now(),
            respond_to: tx,
        };
        (pending, rx)
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        for i in 0..5 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let batch = queue
            .next_batch(4, Duration::from_secs(60))
            .expect("open queue");
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].id, RequestId(0));
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn partial_batch_waits_for_the_deadline() {
        let queue = BatchQueue::new();
        let (p, _rx) = pending(0);
        queue.push(p);
        let start = Instant::now();
        let batch = queue
            .next_batch(8, Duration::from_millis(30))
            .expect("open queue");
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "dispatched after {:?}, before the wait bound",
            start.elapsed()
        );
    }

    #[test]
    fn lone_request_flushes_on_its_deadline_while_a_worker_waits() {
        // The deadline flush with a *blocked* worker: the worker is already
        // waiting inside `next_batch` when the single request arrives, and
        // must wake on the push, sleep out the request's own deadline, and
        // dispatch a batch of exactly one.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_millis(25)))
        };
        std::thread::sleep(Duration::from_millis(15));
        let start = Instant::now();
        let (p, _rx) = pending(0);
        assert!(queue.push(p));
        let batch = worker.join().expect("worker").expect("open queue");
        assert_eq!(batch.len(), 1);
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(20),
            "the deadline is measured from the request's enqueue ({waited:?})"
        );
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn exact_max_batch_boundary_dispatches_immediately_and_exactly() {
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        for i in 0..4 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        // Exactly max_batch queued: dispatch now (the 60 s deadline must
        // not be involved), exactly max_batch handed out, nothing left.
        let start = Instant::now();
        let batch = queue
            .next_batch(4, Duration::from_secs(60))
            .expect("open queue");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a full batch must not wait for the deadline"
        );
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.last().unwrap().id, RequestId(3));
        assert_eq!(queue.depth(), 0, "exactly the boundary: queue drained");
        // One more request: it alone must not ride along retroactively.
        let (p, _rx) = pending(4);
        queue.push(p);
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn close_flushes_queued_requests_without_waiting_for_deadlines() {
        // Shutdown with requests still queued: the close must hand them
        // out immediately (no 60 s deadline hang) as one final batch.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_secs(60)))
        };
        std::thread::sleep(Duration::from_millis(10));
        let mut receivers = Vec::new();
        for i in 0..3 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let start = Instant::now();
        queue.close();
        let batch = worker.join().expect("worker").expect("drains before None");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "close must flush immediately, not wait out the deadline"
        );
        assert_eq!(batch.len(), 3);
        assert!(queue.next_batch(8, Duration::from_secs(60)).is_none());
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = BatchQueue::new();
        let (p, _rx) = pending(0);
        queue.push(p);
        queue.close();
        let batch = queue
            .next_batch(8, Duration::from_secs(60))
            .expect("drains first");
        assert_eq!(batch.len(), 1);
        assert!(queue.next_batch(8, Duration::from_secs(60)).is_none());
        let (p, _rx) = pending(1);
        assert!(!queue.push(p), "closed queue rejects new requests");
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_secs(60)))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(worker.join().expect("worker").is_none());
    }
}
