//! The dynamic batching queue, with per-tenant weighted-fair admission.
//!
//! Single-sample requests accumulate in per-tenant FIFO lanes; worker
//! threads take coalesced batches with the classic dynamic-batching
//! policy: dispatch as soon as `max_batch` requests are queued (across all
//! lanes), or when the *oldest* queued request has waited `max_wait`,
//! whichever comes first. Under a deep queue every dispatch is a full
//! batch (maximum device efficiency); under trickle load the wait bound
//! keeps tail latency in check.
//!
//! **Weighted-fair dequeue.** Lanes are drained by virtual-time weighted
//! fair queuing: each arrival is stamped with a virtual finish tag
//! (`start + 1/weight`, where `start` continues the lane's previous tag or
//! the queue's virtual clock, whichever is later), and the next request
//! popped is always the smallest head tag across lanes. A single tenant
//! degenerates to plain FIFO — tags ascend in arrival order — so the
//! single-tenant engine behaves exactly as before. With several tenants,
//! one tenant's burst cannot starve another's trickle: the burst only
//! advances its own lane's tags, and the trickle's next request keeps the
//! smallest tag.
//!
//! **Admission** happens entirely inside the queue lock, so every bound is
//! exact even with racing submitters:
//!
//! * **token buckets** — a tenant configured with a rate limit spends one
//!   token per accepted request ([`PushResult::RateLimited`] when dry);
//! * **bounded admission** — a hard queue-depth capacity across all lanes;
//! * **tenant-aware shedding** — in shed mode each tenant may hold at most
//!   its weighted share `max(1, cap·w/W)` of the shed capacity (`W` = sum
//!   of weights of lanes with queued work, the submitter included), so the
//!   over-quota tenant is shed first while an under-share tenant is still
//!   admitted. With a single tenant the share equals the full capacity —
//!   the pre-tenant shed semantics.
//!
//! Two runtime-adaptation extensions ride on the same dispatch policy:
//!
//! * **deadline-aware flush** — when queued requests carry deadlines, the
//!   effective wait bound shrinks so the batch dispatches while the most
//!   urgent request still has `predicted_exec` of slack left (a full batch
//!   always dispatches immediately and therefore beats an imminent
//!   deadline flush). The tightest queued deadline is maintained
//!   incrementally (a multiset updated on push/drain), not rescanned per
//!   condvar wakeup;
//! * **bounded admission** above replaces nothing: `push` without a bound
//!   still serves the tests.

use crate::config::{TenantConfig, TenantsConfig};
use crate::request::{Pending, TenantId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Slack reserved on top of `predicted_exec` when a deadline tightens the
/// flush bound: covers condvar wakeup overshoot and batch assembly on a
/// loaded machine, so a deadline flush lands *before* the expiry check,
/// not in a race with it. A deadline closer than this dispatches
/// immediately.
const DISPATCH_MARGIN: Duration = Duration::from_millis(20);

/// A tenant's token-bucket rate limiter, refilled lazily from elapsed
/// wall clock on each offer. Mutated only under the queue lock, so token
/// accounting is exact under racing submitters.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    rate_per_sec: f64,
    burst: f64,
    refilled_at: Instant,
}

impl TokenBucket {
    fn new(rate_per_sec: f64, burst: f64) -> Self {
        TokenBucket {
            // Start full: a tenant's first burst up to `burst` is admitted.
            tokens: burst,
            rate_per_sec,
            burst,
            refilled_at: Instant::now(),
        }
    }

    /// Refills from the elapsed wall clock, then spends one token if
    /// available.
    fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now
            .saturating_duration_since(self.refilled_at)
            .as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.burst);
        self.refilled_at = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One tenant's FIFO sub-queue plus its WFQ and quota state. Lanes persist
/// once created (the virtual-time continuity and bucket level survive the
/// lane draining empty).
#[derive(Debug)]
struct TenantLane {
    /// Queued requests with their virtual finish tags, in arrival order.
    queue: VecDeque<(f64, Pending)>,
    /// Virtual finish tag of the lane's most recent arrival.
    last_finish: f64,
    weight: u32,
    bucket: Option<TokenBucket>,
}

impl TenantLane {
    fn from_config(config: &TenantConfig) -> Self {
        TenantLane {
            queue: VecDeque::new(),
            last_finish: 0.0,
            weight: config.weight.max(1),
            bucket: config
                .rate
                .map(|rate_per_sec| TokenBucket::new(rate_per_sec, config.burst)),
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    /// Per-tenant lanes, keyed by tenant id (ordered, so iteration — and
    /// therefore WFQ tie-breaking — is deterministic).
    lanes: BTreeMap<TenantId, TenantLane>,
    /// The WFQ virtual clock: the largest finish tag dispatched so far.
    /// Newly active lanes start from here, so an idle tenant cannot bank
    /// credit while away.
    virtual_clock: f64,
    /// Requests queued across all lanes.
    total: usize,
    /// Multiset of queued deadlines: the tightest is `first_key_value()`,
    /// maintained on push/drain instead of rescanned per condvar wakeup.
    deadlines: BTreeMap<Instant, u32>,
    closed: bool,
}

impl QueueState {
    /// Stamps the request with its virtual finish tag and queues it on its
    /// tenant's lane. The lane must already exist.
    fn enqueue(&mut self, pending: Pending) {
        let lane = self.lanes.get_mut(&pending.tenant).expect("lane exists");
        let start = self.virtual_clock.max(lane.last_finish);
        let finish = start + 1.0 / f64::from(lane.weight);
        lane.last_finish = finish;
        if let Some(deadline) = pending.deadline {
            *self.deadlines.entry(deadline).or_insert(0) += 1;
        }
        lane.queue.push_back((finish, pending));
        self.total += 1;
    }

    /// Pops the request with the smallest head finish tag across lanes
    /// (ties break toward the lexicographically first tenant).
    fn pop_next(&mut self) -> Option<Pending> {
        let mut next: Option<(TenantId, f64)> = None;
        for (tenant, lane) in &self.lanes {
            if let Some((finish, _)) = lane.queue.front() {
                if next.as_ref().is_none_or(|(_, best)| *finish < *best) {
                    next = Some((tenant.clone(), *finish));
                }
            }
        }
        let (tenant, finish) = next?;
        let lane = self.lanes.get_mut(&tenant).expect("lane exists");
        let (_, pending) = lane.queue.pop_front().expect("non-empty lane");
        self.virtual_clock = self.virtual_clock.max(finish);
        if let Some(deadline) = pending.deadline {
            if let Some(count) = self.deadlines.get_mut(&deadline) {
                *count -= 1;
                if *count == 0 {
                    self.deadlines.remove(&deadline);
                }
            }
        }
        self.total -= 1;
        Some(pending)
    }

    fn drain(&mut self, max_batch: usize) -> Vec<Pending> {
        let take = self.total.min(max_batch);
        (0..take).filter_map(|_| self.pop_next()).collect()
    }

    /// Enqueue time of the oldest queued request (each lane is FIFO, so
    /// the global oldest is the oldest lane head).
    fn oldest_enqueued(&self) -> Option<Instant> {
        self.lanes
            .values()
            .filter_map(|lane| lane.queue.front().map(|(_, p)| p.enqueued_at))
            .min()
    }

    /// The tightest queued deadline, from the incremental multiset.
    fn min_deadline(&self) -> Option<Instant> {
        self.deadlines
            .first_key_value()
            .map(|(deadline, _)| *deadline)
    }

    /// `tenant`'s share of a shed-mode capacity: `max(1, cap·w/W)` over
    /// the lanes with queued work (the submitter counts as active even
    /// with an empty lane). A lone tenant's share is the full capacity.
    fn tenant_share(&self, tenant: &TenantId, capacity: usize) -> usize {
        let mut weight_total: u64 = 0;
        let mut weight_self: u64 = 0;
        for (id, lane) in &self.lanes {
            if !lane.queue.is_empty() || id == tenant {
                weight_total += u64::from(lane.weight);
                if id == tenant {
                    weight_self = u64::from(lane.weight);
                }
            }
        }
        if weight_total == 0 {
            return capacity.max(1);
        }
        usize::try_from((capacity as u64 * weight_self) / weight_total)
            .unwrap_or(capacity)
            .max(1)
    }
}

/// Result of offering a request to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushResult {
    /// The request is queued.
    Accepted,
    /// The queue is closed (engine shutting down); the request was dropped.
    Closed,
    /// The queue (or, in shed mode, the tenant's weighted share of it) is
    /// at its admission capacity; the request was dropped.
    Full,
    /// The tenant's token bucket is dry; the request was dropped.
    RateLimited,
}

/// A thread-safe dynamic batching queue with per-tenant weighted-fair
/// admission.
#[derive(Debug, Default)]
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    tenants: TenantsConfig,
}

impl BatchQueue {
    #[cfg(test)]
    pub fn new() -> Self {
        BatchQueue::default()
    }

    /// A queue admitting per the given tenant configuration (weights, rate
    /// limits); unknown tenants get the fallback.
    pub fn with_tenants(tenants: TenantsConfig) -> Self {
        BatchQueue {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            tenants,
        }
    }

    /// Enqueues a request. Returns `false` (dropping the request) if the
    /// queue is closed. (The engine always offers through
    /// [`BatchQueue::push_bounded`]; this unbounded form serves the tests.)
    #[cfg(test)]
    pub fn push(&self, pending: Pending) -> bool {
        self.push_bounded(pending, None, false) == PushResult::Accepted
    }

    /// Offers a request subject to the tenant's token bucket and an
    /// optional depth capacity. Every check happens under the queue lock,
    /// so the bounds are exact even with racing submitters.
    ///
    /// With `shedding` set, the capacity is applied per tenant as a
    /// weighted share (see [`QueueState::tenant_share`]) instead of as one
    /// shared total, so the over-quota tenant is rejected first.
    pub fn push_bounded(
        &self,
        pending: Pending,
        capacity: Option<usize>,
        shedding: bool,
    ) -> PushResult {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return PushResult::Closed;
        }
        if !state.lanes.contains_key(&pending.tenant) {
            let config = self.tenants.for_tenant(pending.tenant.name());
            state
                .lanes
                .insert(pending.tenant.clone(), TenantLane::from_config(config));
        }
        if let Some(cap) = capacity {
            if shedding {
                let share = state.tenant_share(&pending.tenant, cap);
                let queued = state.lanes[&pending.tenant].queue.len();
                if queued >= share {
                    return PushResult::Full;
                }
            } else if state.total >= cap {
                return PushResult::Full;
            }
        }
        let now = Instant::now();
        let lane = state.lanes.get_mut(&pending.tenant).expect("lane exists");
        if let Some(bucket) = &mut lane.bucket {
            if !bucket.try_take(now) {
                return PushResult::RateLimited;
            }
        }
        state.enqueue(pending);
        // Wake one worker; it re-checks the batching condition itself.
        self.available.notify_one();
        PushResult::Accepted
    }

    /// Number of requests currently queued, across all tenants.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").total
    }

    /// Closes the queue: pending requests are still handed out, further
    /// `push` calls are rejected, and workers receive `None` once drained.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Takes the next batch according to the dynamic batching policy, or
    /// `None` when the queue is closed and drained.
    ///
    /// Blocks while the queue is empty (and open), or while a partial batch
    /// is still inside the oldest request's `max_wait` window *and* no
    /// queued request's deadline is closer than `predicted_exec` — the
    /// caller's estimate of assembly + device time for the batch about to
    /// form. A request with deadline `d` must dispatch by `d -
    /// predicted_exec` to have any chance of completing in time, so the
    /// most urgent such bound tightens the flush deadline. A full batch
    /// still dispatches immediately: at exactly `max_batch` queued the
    /// deadline machinery is never consulted.
    pub fn next_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
        predicted_exec: Duration,
    ) -> Option<Vec<Pending>> {
        // The span covers the whole wait: on a trace timeline it is the
        // gap between a worker going idle and its next batch forming.
        let mut span = ios_telemetry::tracer().span("batcher.next_batch", "serve");
        let batch = self.wait_for_batch(max_batch, max_wait, predicted_exec);
        if let Some(batch) = &batch {
            span.set_arg(batch.len() as u64);
        }
        batch
    }

    fn wait_for_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
        predicted_exec: Duration,
    ) -> Option<Vec<Pending>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.total >= max_batch {
                return Some(state.drain(max_batch));
            }
            if state.closed {
                if state.total == 0 {
                    return None;
                }
                return Some(state.drain(max_batch));
            }
            if let Some(oldest) = state.oldest_enqueued() {
                let mut flush_at = oldest + max_wait;
                // The tightest queued deadline may be closer than the
                // oldest request's wait bound; dispatch early enough that
                // it still has predicted_exec of slack, plus a fixed margin
                // for condvar wakeup and assembly jitter — without it a
                // cold engine (predicted_exec zero) would flush a lone
                // request exactly at its deadline and lose the race
                // against its own expiry check. The minimum is maintained
                // incrementally on push/drain, not rescanned per wakeup.
                if let Some(deadline) = state.min_deadline() {
                    let reserve = predicted_exec + DISPATCH_MARGIN;
                    flush_at =
                        flush_at.min(deadline.checked_sub(reserve).unwrap_or_else(Instant::now));
                }
                let now = Instant::now();
                if now >= flush_at {
                    return Some(state.drain(max_batch));
                }
                let (guard, _) = self
                    .available
                    .wait_timeout(state, flush_at - now)
                    .expect("queue lock");
                state = guard;
            } else {
                state = self.available.wait(state).expect("queue lock");
            }
        }
    }

    /// The incrementally-maintained tightest queued deadline (test hook).
    #[cfg(test)]
    fn min_deadline_incremental(&self) -> Option<Instant> {
        self.state.lock().expect("queue lock").min_deadline()
    }

    /// The tightest queued deadline recomputed by a full scan — the
    /// reference the incremental multiset must agree with (test hook).
    #[cfg(test)]
    fn min_deadline_scan(&self) -> Option<Instant> {
        let state = self.state.lock().expect("queue lock");
        state
            .lanes
            .values()
            .flat_map(|lane| lane.queue.iter().filter_map(|(_, p)| p.deadline))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Outcome, RequestId};
    use ios_backend::TensorData;
    use ios_ir::TensorShape;
    use std::sync::mpsc;
    use std::time::Duration;

    fn pending(id: u64) -> (Pending, mpsc::Receiver<Outcome>) {
        pending_with_deadline(id, None)
    }

    fn pending_for(id: u64, tenant: &str) -> (Pending, mpsc::Receiver<Outcome>) {
        let (mut p, rx) = pending(id);
        p.tenant = TenantId::from(tenant);
        (p, rx)
    }

    fn pending_with_deadline(
        id: u64,
        deadline: Option<Instant>,
    ) -> (Pending, mpsc::Receiver<Outcome>) {
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            id: RequestId(id),
            tenant: TenantId::default_tenant(),
            input: TensorData::zeros(TensorShape::new(1, 1, 1, 1)),
            enqueued_at: Instant::now(),
            deadline,
            respond_to: tx,
        };
        (pending, rx)
    }

    const NO_EXEC: Duration = Duration::ZERO;

    #[test]
    fn full_batch_dispatches_immediately() {
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        for i in 0..5 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let batch = queue
            .next_batch(4, Duration::from_secs(60), NO_EXEC)
            .expect("open queue");
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].id, RequestId(0));
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn partial_batch_waits_for_the_deadline() {
        let queue = BatchQueue::new();
        let (p, _rx) = pending(0);
        queue.push(p);
        let start = Instant::now();
        let batch = queue
            .next_batch(8, Duration::from_millis(30), NO_EXEC)
            .expect("open queue");
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "dispatched after {:?}, before the wait bound",
            start.elapsed()
        );
    }

    #[test]
    fn lone_request_flushes_on_its_deadline_while_a_worker_waits() {
        // The deadline flush with a *blocked* worker: the worker is already
        // waiting inside `next_batch` when the single request arrives, and
        // must wake on the push, sleep out the request's own deadline, and
        // dispatch a batch of exactly one.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_millis(25), NO_EXEC))
        };
        std::thread::sleep(Duration::from_millis(15));
        let start = Instant::now();
        let (p, _rx) = pending(0);
        assert!(queue.push(p));
        let batch = worker.join().expect("worker").expect("open queue");
        assert_eq!(batch.len(), 1);
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(20),
            "the deadline is measured from the request's enqueue ({waited:?})"
        );
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn exact_max_batch_boundary_dispatches_immediately_and_exactly() {
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        for i in 0..4 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        // Exactly max_batch queued: dispatch now (the 60 s deadline must
        // not be involved), exactly max_batch handed out, nothing left.
        let start = Instant::now();
        let batch = queue
            .next_batch(4, Duration::from_secs(60), NO_EXEC)
            .expect("open queue");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a full batch must not wait for the deadline"
        );
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.last().unwrap().id, RequestId(3));
        assert_eq!(queue.depth(), 0, "exactly the boundary: queue drained");
        // One more request: it alone must not ride along retroactively.
        let (p, _rx) = pending(4);
        queue.push(p);
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn close_flushes_queued_requests_without_waiting_for_deadlines() {
        // Shutdown with requests still queued: the close must hand them
        // out immediately (no 60 s deadline hang) as one final batch.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_secs(60), NO_EXEC))
        };
        std::thread::sleep(Duration::from_millis(10));
        let mut receivers = Vec::new();
        for i in 0..3 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let start = Instant::now();
        queue.close();
        let batch = worker.join().expect("worker").expect("drains before None");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "close must flush immediately, not wait out the deadline"
        );
        assert_eq!(batch.len(), 3);
        assert!(queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .is_none());
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = BatchQueue::new();
        let (p, _rx) = pending(0);
        queue.push(p);
        queue.close();
        let batch = queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .expect("drains first");
        assert_eq!(batch.len(), 1);
        assert!(queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .is_none());
        let (p, _rx) = pending(1);
        assert!(!queue.push(p), "closed queue rejects new requests");
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_secs(60), NO_EXEC))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(worker.join().expect("worker").is_none());
    }

    #[test]
    fn request_deadline_tightens_the_flush_bound() {
        // One queued request whose deadline (150 ms out, with 10 ms of
        // predicted exec) is far tighter than the 60 s max_wait: the batch
        // must flush at deadline - predicted_exec - margin, not at
        // max_wait.
        let queue = BatchQueue::new();
        let (p, _rx) = pending_with_deadline(0, Some(Instant::now() + Duration::from_millis(150)));
        queue.push(p);
        let start = Instant::now();
        let batch = queue
            .next_batch(8, Duration::from_secs(60), Duration::from_millis(10))
            .expect("open queue");
        assert_eq!(batch.len(), 1);
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(60) && waited < Duration::from_secs(5),
            "flushed at deadline - predicted_exec - margin, got {waited:?}"
        );
    }

    #[test]
    fn already_expired_deadline_flushes_immediately() {
        // A request whose slack is already gone must not make the worker
        // wait at all; expiry itself is handled downstream at assembly.
        let queue = BatchQueue::new();
        let (p, _rx) = pending_with_deadline(0, Some(Instant::now() - Duration::from_millis(5)));
        queue.push(p);
        let start = Instant::now();
        let batch = queue
            .next_batch(8, Duration::from_secs(60), Duration::from_millis(10))
            .expect("open queue");
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "expired deadline must flush without waiting"
        );
    }

    #[test]
    fn exact_max_batch_arrival_beats_an_imminent_deadline_flush() {
        // max_batch requests are queued and the oldest carries a deadline
        // about to force a flush: the full-batch condition wins — the
        // dispatch is a full batch of max_batch, immediately, and the
        // deadline never truncates it to a partial batch.
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        let (p, rx) = pending_with_deadline(0, Some(Instant::now() + Duration::from_millis(30)));
        queue.push(p);
        receivers.push(rx);
        for i in 1..4 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let start = Instant::now();
        let batch = queue
            .next_batch(4, Duration::from_secs(60), Duration::from_millis(25))
            .expect("open queue");
        assert_eq!(batch.len(), 4, "the full batch dispatches whole");
        assert!(
            start.elapsed() < Duration::from_millis(20),
            "a full batch dispatches immediately, not on the deadline flush"
        );
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn bounded_push_is_exact_under_racing_submitters() {
        // 8 threads race 25 offers each at a capacity-10 queue with no
        // consumer. Exactly 10 are accepted and the rest are Full —
        // the bound is enforced under the queue lock, not approximately.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let accepted = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let full = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let queue = std::sync::Arc::clone(&queue);
                let accepted = std::sync::Arc::clone(&accepted);
                let full = std::sync::Arc::clone(&full);
                scope.spawn(move || {
                    for i in 0..25 {
                        let (p, _rx) = pending(t * 100 + i);
                        match queue.push_bounded(p, Some(10), false) {
                            PushResult::Accepted => {
                                accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            }
                            PushResult::Full => {
                                full.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            }
                            PushResult::Closed | PushResult::RateLimited => {
                                panic!("queue is open and unlimited")
                            }
                        };
                    }
                });
            }
        });
        let accepted = accepted.load(std::sync::atomic::Ordering::Relaxed);
        let full = full.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(accepted, 10, "exactly capacity requests admitted");
        assert_eq!(accepted + full, 200, "every offer got a verdict");
        assert_eq!(queue.depth(), 10);
    }

    fn two_tenant_queue(alpha_weight: u32, beta_weight: u32) -> BatchQueue {
        BatchQueue::with_tenants(
            TenantsConfig::default()
                .with_tenant("alpha", TenantConfig::default().with_weight(alpha_weight))
                .with_tenant("beta", TenantConfig::default().with_weight(beta_weight)),
        )
    }

    #[test]
    fn wfq_interleaves_equal_weight_tenants_despite_a_burst() {
        // Tenant alpha bursts 6 requests before beta's 2 arrive; dequeue
        // must still alternate while both lanes have work — beta's trickle
        // is not stuck behind alpha's burst.
        let queue = two_tenant_queue(1, 1);
        let mut receivers = Vec::new();
        for i in 0..6 {
            let (p, rx) = pending_for(i, "alpha");
            assert_eq!(queue.push_bounded(p, None, false), PushResult::Accepted);
            receivers.push(rx);
        }
        for i in 10..12 {
            let (p, rx) = pending_for(i, "beta");
            assert_eq!(queue.push_bounded(p, None, false), PushResult::Accepted);
            receivers.push(rx);
        }
        let batch = queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .expect("open queue");
        let order: Vec<u64> = batch.iter().map(|p| p.id.0).collect();
        assert_eq!(
            order,
            vec![0, 10, 1, 11, 2, 3, 4, 5],
            "equal weights alternate while both lanes are busy"
        );
    }

    #[test]
    fn wfq_serves_tenants_in_proportion_to_their_weights() {
        // alpha weight 3, beta weight 1, both keep 8 queued: a full batch
        // of 8 carries 6 alpha and 2 beta requests.
        let queue = two_tenant_queue(3, 1);
        let mut receivers = Vec::new();
        for i in 0..8 {
            let (p, rx) = pending_for(i, "alpha");
            queue.push_bounded(p, None, false);
            receivers.push(rx);
            let (p, rx) = pending_for(100 + i, "beta");
            queue.push_bounded(p, None, false);
            receivers.push(rx);
        }
        let batch = queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .expect("open queue");
        let alpha = batch.iter().filter(|p| p.tenant.name() == "alpha").count();
        let beta = batch.iter().filter(|p| p.tenant.name() == "beta").count();
        assert_eq!((alpha, beta), (6, 2), "3:1 weights → 6:2 of a batch of 8");
        // Within each tenant the order is still FIFO.
        let alpha_ids: Vec<u64> = batch
            .iter()
            .filter(|p| p.tenant.name() == "alpha")
            .map(|p| p.id.0)
            .collect();
        assert_eq!(alpha_ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_tenant_wfq_degenerates_to_fifo() {
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        for i in 0..10 {
            let (p, rx) = pending(i);
            queue.push(p);
            receivers.push(rx);
        }
        let batch = queue
            .next_batch(10, Duration::from_secs(60), NO_EXEC)
            .expect("open queue");
        let order: Vec<u64> = batch.iter().map(|p| p.id.0).collect();
        assert_eq!(order, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn token_bucket_is_exact_under_racing_submitters() {
        // A tenant with burst 5 and a (practically) zero refill rate: 8
        // threads race 10 offers each; exactly 5 are admitted, the rest
        // are RateLimited — token accounting under the queue lock.
        let queue = std::sync::Arc::new(BatchQueue::with_tenants(
            TenantsConfig::default()
                .with_tenant("limited", TenantConfig::default().with_rate(1e-9, 5.0)),
        ));
        let accepted = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let limited = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let queue = std::sync::Arc::clone(&queue);
                let accepted = std::sync::Arc::clone(&accepted);
                let limited = std::sync::Arc::clone(&limited);
                scope.spawn(move || {
                    for i in 0..10 {
                        let (p, _rx) = pending_for(t * 100 + i, "limited");
                        match queue.push_bounded(p, None, false) {
                            PushResult::Accepted => {
                                accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            }
                            PushResult::RateLimited => {
                                limited.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            }
                            other => panic!("unexpected verdict {other:?}"),
                        };
                    }
                });
            }
        });
        let accepted = accepted.load(std::sync::atomic::Ordering::Relaxed);
        let limited = limited.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(accepted, 5, "exactly the burst is admitted");
        assert_eq!(accepted + limited, 80, "every offer got a verdict");
        assert_eq!(queue.depth(), 5);
    }

    #[test]
    fn rate_limit_only_throttles_its_own_tenant() {
        let queue = BatchQueue::with_tenants(
            TenantsConfig::default()
                .with_tenant("limited", TenantConfig::default().with_rate(1e-9, 2.0)),
        );
        let mut receivers = Vec::new();
        for i in 0..5 {
            let (p, rx) = pending_for(i, "limited");
            let verdict = queue.push_bounded(p, None, false);
            receivers.push(rx);
            if i < 2 {
                assert_eq!(verdict, PushResult::Accepted);
            } else {
                assert_eq!(verdict, PushResult::RateLimited);
            }
        }
        for i in 10..15 {
            let (p, rx) = pending_for(i, "free");
            assert_eq!(queue.push_bounded(p, None, false), PushResult::Accepted);
            receivers.push(rx);
        }
        assert_eq!(queue.depth(), 7);
    }

    #[test]
    fn shed_mode_limits_each_tenant_to_its_weighted_share() {
        // Shed capacity 4, equal weights. Alpha alone may fill the whole
        // capacity (single-tenant share = cap, the pre-tenant semantics);
        // once beta queues work, each tenant's share is 2 — beta still
        // gets its slice in, and over-share alpha is the one rejected.
        let queue = two_tenant_queue(1, 1);
        let mut receivers = Vec::new();
        for i in 0..4 {
            let (p, rx) = pending_for(i, "alpha");
            assert_eq!(queue.push_bounded(p, Some(4), true), PushResult::Accepted);
            receivers.push(rx);
        }
        // Beta's share is max(1, 4·1/2) = 2: two in, the third rejected.
        for i in 10..12 {
            let (p, rx) = pending_for(i, "beta");
            assert_eq!(queue.push_bounded(p, Some(4), true), PushResult::Accepted);
            receivers.push(rx);
        }
        let (p, _rx) = pending_for(12, "beta");
        assert_eq!(queue.push_bounded(p, Some(4), true), PushResult::Full);
        // Alpha is over its share of 2 now that beta is active.
        let (p, _rx) = pending_for(4, "alpha");
        assert_eq!(queue.push_bounded(p, Some(4), true), PushResult::Full);
        assert_eq!(queue.depth(), 6);
    }

    #[test]
    fn incremental_min_deadline_matches_a_scan_on_randomized_push_drain() {
        // Randomized push/drain sequences over three tenants with a mix of
        // deadline-free and deadline-carrying requests: after every
        // operation the incrementally-maintained minimum deadline must
        // equal a full scan over all lanes.
        let queue = BatchQueue::new();
        let base = Instant::now();
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // xorshift64*: deterministic, no external crates.
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng = rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
            rng
        };
        let mut receivers = Vec::new();
        for op in 0..2000u64 {
            let r = next();
            if r % 100 < 70 {
                let tenant = ["alpha", "beta", "gamma"][(r / 100 % 3) as usize];
                let deadline = if r % 2 == 0 {
                    Some(base + Duration::from_millis(next() % 10_000))
                } else {
                    None
                };
                let (mut p, rx) = pending_with_deadline(op, deadline);
                p.tenant = TenantId::from(tenant);
                queue.push_bounded(p, None, false);
                receivers.push(rx);
            } else {
                let take = (r / 1000 % 4) as usize + 1;
                let mut state = queue.state.lock().expect("queue lock");
                let _ = state.drain(take);
            }
            assert_eq!(
                queue.min_deadline_incremental(),
                queue.min_deadline_scan(),
                "incremental min deadline diverged from the scan at op {op}"
            );
        }
    }
}
