//! The dynamic batching queue.
//!
//! Single-sample requests accumulate in a FIFO; worker threads take
//! coalesced batches with the classic dynamic-batching policy: dispatch as
//! soon as `max_batch` requests are queued, or when the *oldest* queued
//! request has waited `max_wait`, whichever comes first. Under a deep queue
//! every dispatch is a full batch (maximum device efficiency); under trickle
//! load the wait bound keeps tail latency in check.
//!
//! Two runtime-adaptation extensions ride on the same policy:
//!
//! * **deadline-aware flush** — when queued requests carry deadlines, the
//!   effective wait bound shrinks so the batch dispatches while the most
//!   urgent request still has `predicted_exec` of slack left (a full batch
//!   always dispatches immediately and therefore beats an imminent
//!   deadline flush);
//! * **bounded admission** — [`BatchQueue::push_bounded`] enforces a hard
//!   queue-depth capacity *inside* the queue lock, so the bound is exact
//!   even with racing submitters.

use crate::request::Pending;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Slack reserved on top of `predicted_exec` when a deadline tightens the
/// flush bound: covers condvar wakeup overshoot and batch assembly on a
/// loaded machine, so a deadline flush lands *before* the expiry check,
/// not in a race with it. A deadline closer than this dispatches
/// immediately.
const DISPATCH_MARGIN: Duration = Duration::from_millis(20);

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<Pending>,
    closed: bool,
}

/// Result of offering a request to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushResult {
    /// The request is queued.
    Accepted,
    /// The queue is closed (engine shutting down); the request was dropped.
    Closed,
    /// The queue is at its admission capacity; the request was dropped.
    Full,
}

/// A thread-safe dynamic batching queue.
#[derive(Debug, Default)]
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl BatchQueue {
    pub fn new() -> Self {
        BatchQueue::default()
    }

    /// Enqueues a request. Returns `false` (dropping the request) if the
    /// queue is closed. (The engine always offers through
    /// [`BatchQueue::push_bounded`]; this unbounded form serves the tests.)
    #[cfg(test)]
    pub fn push(&self, pending: Pending) -> bool {
        self.push_bounded(pending, None) == PushResult::Accepted
    }

    /// Enqueues a request subject to an optional depth capacity. The
    /// capacity check happens under the queue lock, so the queue never
    /// exceeds `capacity` even with racing submitters.
    pub fn push_bounded(&self, pending: Pending, capacity: Option<usize>) -> PushResult {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return PushResult::Closed;
        }
        if let Some(cap) = capacity {
            if state.queue.len() >= cap {
                return PushResult::Full;
            }
        }
        state.queue.push_back(pending);
        // Wake one worker; it re-checks the batching condition itself.
        self.available.notify_one();
        PushResult::Accepted
    }

    /// Number of requests currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").queue.len()
    }

    /// Closes the queue: pending requests are still handed out, further
    /// `push` calls are rejected, and workers receive `None` once drained.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Takes the next batch according to the dynamic batching policy, or
    /// `None` when the queue is closed and drained.
    ///
    /// Blocks while the queue is empty (and open), or while a partial batch
    /// is still inside the oldest request's `max_wait` window *and* no
    /// queued request's deadline is closer than `predicted_exec` — the
    /// caller's estimate of assembly + device time for the batch about to
    /// form. A request with deadline `d` must dispatch by `d -
    /// predicted_exec` to have any chance of completing in time, so the
    /// most urgent such bound tightens the flush deadline. A full batch
    /// still dispatches immediately: at exactly `max_batch` queued the
    /// deadline machinery is never consulted.
    pub fn next_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
        predicted_exec: Duration,
    ) -> Option<Vec<Pending>> {
        // The span covers the whole wait: on a trace timeline it is the
        // gap between a worker going idle and its next batch forming.
        let mut span = ios_telemetry::tracer().span("batcher.next_batch", "serve");
        let batch = self.wait_for_batch(max_batch, max_wait, predicted_exec);
        if let Some(batch) = &batch {
            span.set_arg(batch.len() as u64);
        }
        batch
    }

    fn wait_for_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
        predicted_exec: Duration,
    ) -> Option<Vec<Pending>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.queue.len() >= max_batch {
                return Some(drain(&mut state.queue, max_batch));
            }
            if state.closed {
                if state.queue.is_empty() {
                    return None;
                }
                return Some(drain(&mut state.queue, max_batch));
            }
            if let Some(oldest) = state.queue.front() {
                let mut flush_at = oldest.enqueued_at + max_wait;
                // Any queued request's deadline may be tighter than the
                // oldest request's wait bound; dispatch early enough that
                // the most urgent one still has predicted_exec of slack,
                // plus a fixed margin for condvar wakeup and assembly
                // jitter — without it a cold engine (predicted_exec zero)
                // would flush a lone request exactly at its deadline and
                // lose the race against its own expiry check.
                let reserve = predicted_exec + DISPATCH_MARGIN;
                for p in &state.queue {
                    if let Some(d) = p.deadline {
                        flush_at =
                            flush_at.min(d.checked_sub(reserve).unwrap_or_else(Instant::now));
                    }
                }
                let now = Instant::now();
                if now >= flush_at {
                    return Some(drain(&mut state.queue, max_batch));
                }
                let (guard, _) = self
                    .available
                    .wait_timeout(state, flush_at - now)
                    .expect("queue lock");
                state = guard;
            } else {
                state = self.available.wait(state).expect("queue lock");
            }
        }
    }
}

fn drain(queue: &mut VecDeque<Pending>, max_batch: usize) -> Vec<Pending> {
    let take = queue.len().min(max_batch);
    queue.drain(..take).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Outcome, RequestId};
    use ios_backend::TensorData;
    use ios_ir::TensorShape;
    use std::sync::mpsc;
    use std::time::Duration;

    fn pending(id: u64) -> (Pending, mpsc::Receiver<Outcome>) {
        pending_with_deadline(id, None)
    }

    fn pending_with_deadline(
        id: u64,
        deadline: Option<Instant>,
    ) -> (Pending, mpsc::Receiver<Outcome>) {
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            id: RequestId(id),
            input: TensorData::zeros(TensorShape::new(1, 1, 1, 1)),
            enqueued_at: Instant::now(),
            deadline,
            respond_to: tx,
        };
        (pending, rx)
    }

    const NO_EXEC: Duration = Duration::ZERO;

    #[test]
    fn full_batch_dispatches_immediately() {
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        for i in 0..5 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let batch = queue
            .next_batch(4, Duration::from_secs(60), NO_EXEC)
            .expect("open queue");
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].id, RequestId(0));
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn partial_batch_waits_for_the_deadline() {
        let queue = BatchQueue::new();
        let (p, _rx) = pending(0);
        queue.push(p);
        let start = Instant::now();
        let batch = queue
            .next_batch(8, Duration::from_millis(30), NO_EXEC)
            .expect("open queue");
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "dispatched after {:?}, before the wait bound",
            start.elapsed()
        );
    }

    #[test]
    fn lone_request_flushes_on_its_deadline_while_a_worker_waits() {
        // The deadline flush with a *blocked* worker: the worker is already
        // waiting inside `next_batch` when the single request arrives, and
        // must wake on the push, sleep out the request's own deadline, and
        // dispatch a batch of exactly one.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_millis(25), NO_EXEC))
        };
        std::thread::sleep(Duration::from_millis(15));
        let start = Instant::now();
        let (p, _rx) = pending(0);
        assert!(queue.push(p));
        let batch = worker.join().expect("worker").expect("open queue");
        assert_eq!(batch.len(), 1);
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(20),
            "the deadline is measured from the request's enqueue ({waited:?})"
        );
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn exact_max_batch_boundary_dispatches_immediately_and_exactly() {
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        for i in 0..4 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        // Exactly max_batch queued: dispatch now (the 60 s deadline must
        // not be involved), exactly max_batch handed out, nothing left.
        let start = Instant::now();
        let batch = queue
            .next_batch(4, Duration::from_secs(60), NO_EXEC)
            .expect("open queue");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a full batch must not wait for the deadline"
        );
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.last().unwrap().id, RequestId(3));
        assert_eq!(queue.depth(), 0, "exactly the boundary: queue drained");
        // One more request: it alone must not ride along retroactively.
        let (p, _rx) = pending(4);
        queue.push(p);
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn close_flushes_queued_requests_without_waiting_for_deadlines() {
        // Shutdown with requests still queued: the close must hand them
        // out immediately (no 60 s deadline hang) as one final batch.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_secs(60), NO_EXEC))
        };
        std::thread::sleep(Duration::from_millis(10));
        let mut receivers = Vec::new();
        for i in 0..3 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let start = Instant::now();
        queue.close();
        let batch = worker.join().expect("worker").expect("drains before None");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "close must flush immediately, not wait out the deadline"
        );
        assert_eq!(batch.len(), 3);
        assert!(queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .is_none());
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = BatchQueue::new();
        let (p, _rx) = pending(0);
        queue.push(p);
        queue.close();
        let batch = queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .expect("drains first");
        assert_eq!(batch.len(), 1);
        assert!(queue
            .next_batch(8, Duration::from_secs(60), NO_EXEC)
            .is_none());
        let (p, _rx) = pending(1);
        assert!(!queue.push(p), "closed queue rejects new requests");
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let queue = std::sync::Arc::new(BatchQueue::new());
        let worker = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch(8, Duration::from_secs(60), NO_EXEC))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(worker.join().expect("worker").is_none());
    }

    #[test]
    fn request_deadline_tightens_the_flush_bound() {
        // One queued request whose deadline (150 ms out, with 10 ms of
        // predicted exec) is far tighter than the 60 s max_wait: the batch
        // must flush at deadline - predicted_exec - margin, not at
        // max_wait.
        let queue = BatchQueue::new();
        let (p, _rx) = pending_with_deadline(0, Some(Instant::now() + Duration::from_millis(150)));
        queue.push(p);
        let start = Instant::now();
        let batch = queue
            .next_batch(8, Duration::from_secs(60), Duration::from_millis(10))
            .expect("open queue");
        assert_eq!(batch.len(), 1);
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(60) && waited < Duration::from_secs(5),
            "flushed at deadline - predicted_exec - margin, got {waited:?}"
        );
    }

    #[test]
    fn already_expired_deadline_flushes_immediately() {
        // A request whose slack is already gone must not make the worker
        // wait at all; expiry itself is handled downstream at assembly.
        let queue = BatchQueue::new();
        let (p, _rx) = pending_with_deadline(0, Some(Instant::now() - Duration::from_millis(5)));
        queue.push(p);
        let start = Instant::now();
        let batch = queue
            .next_batch(8, Duration::from_secs(60), Duration::from_millis(10))
            .expect("open queue");
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "expired deadline must flush without waiting"
        );
    }

    #[test]
    fn exact_max_batch_arrival_beats_an_imminent_deadline_flush() {
        // max_batch requests are queued and the oldest carries a deadline
        // about to force a flush: the full-batch condition wins — the
        // dispatch is a full batch of max_batch, immediately, and the
        // deadline never truncates it to a partial batch.
        let queue = BatchQueue::new();
        let mut receivers = Vec::new();
        let (p, rx) = pending_with_deadline(0, Some(Instant::now() + Duration::from_millis(30)));
        queue.push(p);
        receivers.push(rx);
        for i in 1..4 {
            let (p, rx) = pending(i);
            assert!(queue.push(p));
            receivers.push(rx);
        }
        let start = Instant::now();
        let batch = queue
            .next_batch(4, Duration::from_secs(60), Duration::from_millis(25))
            .expect("open queue");
        assert_eq!(batch.len(), 4, "the full batch dispatches whole");
        assert!(
            start.elapsed() < Duration::from_millis(20),
            "a full batch dispatches immediately, not on the deadline flush"
        );
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn bounded_push_is_exact_under_racing_submitters() {
        // 8 threads race 25 offers each at a capacity-10 queue with no
        // consumer. Exactly 10 are accepted and the rest are Full —
        // the bound is enforced under the queue lock, not approximately.
        let queue = std::sync::Arc::new(BatchQueue::new());
        let accepted = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let full = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let queue = std::sync::Arc::clone(&queue);
                let accepted = std::sync::Arc::clone(&accepted);
                let full = std::sync::Arc::clone(&full);
                scope.spawn(move || {
                    for i in 0..25 {
                        let (p, _rx) = pending(t * 100 + i);
                        match queue.push_bounded(p, Some(10)) {
                            PushResult::Accepted => {
                                accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            }
                            PushResult::Full => {
                                full.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            }
                            PushResult::Closed => panic!("queue is open"),
                        };
                    }
                });
            }
        });
        let accepted = accepted.load(std::sync::atomic::Ordering::Relaxed);
        let full = full.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(accepted, 10, "exactly capacity requests admitted");
        assert_eq!(accepted + full, 200, "every offer got a verdict");
        assert_eq!(queue.depth(), 10);
    }
}
