//! Requests, responses, the lease-based response buffer and the
//! client-side completion handle.

use ios_backend::{ScratchPool, TensorData};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Identifier of one inference request within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// The tenant a request is submitted on behalf of — the unit of admission
/// isolation: every tenant gets its own FIFO sub-queue (drained by
/// weighted-fair queuing), its own token-bucket rate limit and its own
/// completed/shed/queue-wait metrics. Anonymous traffic
/// ([`crate::ServeEngine::submit`]) maps to [`TenantId::DEFAULT`].
///
/// Cheap to clone (`Arc<str>` inside); build one from any string-ish via
/// `From`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Name of the tenant anonymous traffic maps to.
    pub const DEFAULT: &'static str = "default";

    /// The default tenant ([`TenantId::DEFAULT`]).
    #[must_use]
    pub fn default_tenant() -> Self {
        TenantId::from(TenantId::DEFAULT)
    }

    /// The tenant's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::default_tenant()
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        TenantId(Arc::from(name))
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> Self {
        TenantId(Arc::from(name.as_str()))
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// How the schedule that executed a request's batch was obtained — the
/// runtime face of the paper's Table 3 specialization study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSource {
    /// A schedule specialized for exactly this batch size was cached.
    Exact,
    /// No exact schedule was cached; the nearest cached batch size served
    /// the request (its stage structure is valid at any batch size).
    Nearest {
        /// The batch size the serving schedule was optimized for.
        optimized_for: usize,
    },
    /// Nothing usable was cached; the schedule was optimized synchronously
    /// before this batch could run (first-request warm-up cost).
    FreshlyOptimized,
}

/// A response tensor leased from the serving engine's scratch pool.
///
/// The engine fills each response from pooled storage instead of a fresh
/// heap tensor — the last steady-state allocation on the serving path.
/// Dropping the lease returns the buffer to the pool for the next
/// request; [`ResponseLease::into_tensor`] takes permanent ownership
/// instead (the buffer then leaves the pool for good). The lease derefs to
/// [`TensorData`], so `response.outputs[0].shape` etc. read naturally.
#[derive(Debug)]
pub struct ResponseLease {
    tensor: Option<TensorData>,
    pool: Option<Arc<ScratchPool>>,
}

impl ResponseLease {
    /// A lease that returns its buffer to `pool` when dropped.
    pub(crate) fn pooled(tensor: TensorData, pool: Arc<ScratchPool>) -> Self {
        ResponseLease {
            tensor: Some(tensor),
            pool: Some(pool),
        }
    }

    /// Wraps an ordinary heap tensor (nothing is returned anywhere on
    /// drop) — for detached copies and custom backends.
    #[must_use]
    pub fn from_tensor(tensor: TensorData) -> Self {
        ResponseLease {
            tensor: Some(tensor),
            pool: None,
        }
    }

    /// The leased tensor.
    #[must_use]
    pub fn tensor(&self) -> &TensorData {
        self.tensor.as_ref().expect("lease holds a tensor")
    }

    /// Takes permanent ownership of the tensor; its buffer will not return
    /// to the engine's pool.
    #[must_use]
    pub fn into_tensor(mut self) -> TensorData {
        self.tensor.take().expect("lease holds a tensor")
    }
}

impl std::ops::Deref for ResponseLease {
    type Target = TensorData;

    fn deref(&self) -> &TensorData {
        self.tensor()
    }
}

impl Drop for ResponseLease {
    fn drop(&mut self) {
        if let (Some(tensor), Some(pool)) = (self.tensor.take(), self.pool.as_ref()) {
            pool.recycle_tensor(tensor);
        }
    }
}

impl Clone for ResponseLease {
    /// Cloning detaches: the copy is a plain heap tensor that does not
    /// return to the pool (the original lease is unaffected).
    fn clone(&self) -> Self {
        ResponseLease::from_tensor(self.tensor().clone())
    }
}

impl PartialEq for ResponseLease {
    fn eq(&self, other: &Self) -> bool {
        self.tensor() == other.tensor()
    }
}

impl PartialEq<TensorData> for ResponseLease {
    fn eq(&self, other: &TensorData) -> bool {
        self.tensor() == other
    }
}

/// The completed result of one inference request.
#[derive(Debug, Clone)]
pub struct InferenceResponse {
    /// The request this response answers.
    pub id: RequestId,
    /// Per-output tensors of this sample (batch dimension 1), leased from
    /// the engine's response pool (returned on drop). Empty when the
    /// engine runs a backend that does not compute numerics (for example
    /// the simulated-device backend used for throughput studies).
    pub outputs: Vec<ResponseLease>,
    /// Size of the coalesced batch this request was executed in.
    pub batch_size: usize,
    /// How the batch's schedule was obtained.
    pub schedule_source: ScheduleSource,
    /// Whether the batch executed through the cross-block pipeline
    /// (`false` = flat batched execution).
    pub pipelined: bool,
    /// Time spent queued before dispatch, in µs of wall clock.
    pub queue_us: f64,
    /// Total time from submission to completion, in µs of wall clock.
    pub total_us: f64,
    /// This request's share of the batch's (simulated) device time, in µs.
    pub device_us: f64,
}

/// Why an accepted-or-offered request was completed *without* a result —
/// the typed rejections of the runtime adaptation loop. A rejected request
/// never reaches the device: it is either turned away at admission
/// ([`Rejected::Shed`]) or completed as expired at batch assembly
/// ([`Rejected::DeadlineExceeded`]) instead of being served a stale
/// result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The request's deadline passed before its batch dispatched; the
    /// engine completes it immediately rather than computing a result
    /// nobody can use.
    DeadlineExceeded,
    /// Admission control turned the request away: the bounded admission
    /// queue was full, or the engine was in shed mode (windowed p95 queue
    /// wait over the configured budget) with a batch's worth of requests
    /// already queued.
    Shed,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::DeadlineExceeded => {
                write!(f, "the request's deadline passed before dispatch")
            }
            Rejected::Shed => write!(f, "the request was shed by admission control"),
        }
    }
}

impl std::error::Error for Rejected {}

/// What the engine sends back for one request: a computed response, or a
/// typed rejection.
pub(crate) type Outcome = Result<InferenceResponse, Rejected>;

/// A pending request as carried through the batching queue.
#[derive(Debug)]
pub(crate) struct Pending {
    pub id: RequestId,
    /// The tenant this request was submitted on behalf of (the default
    /// tenant for anonymous traffic).
    pub tenant: TenantId,
    pub input: TensorData,
    pub enqueued_at: Instant,
    /// When set, the instant after which serving this request is useless;
    /// the batcher flushes early to make it, and assembly rejects it with
    /// [`Rejected::DeadlineExceeded`] once passed.
    pub deadline: Option<Instant>,
    pub respond_to: mpsc::Sender<Outcome>,
}

/// Client-side handle resolving to an [`InferenceResponse`].
#[derive(Debug)]
pub struct ResponseHandle {
    pub(crate) id: RequestId,
    pub(crate) receiver: mpsc::Receiver<Outcome>,
}

impl ResponseHandle {
    /// The id of the awaited request.
    #[must_use]
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the engine shut down without answering (a bug: the engine
    /// drains its queue before stopping), or if the request was rejected
    /// (deadline expired) — use [`ResponseHandle::wait_outcome`] when
    /// deadlines are in play.
    #[must_use]
    pub fn wait(self) -> InferenceResponse {
        let id = self.id;
        self.wait_outcome()
            .unwrap_or_else(|rejected| panic!("{id} was rejected: {rejected}"))
    }

    /// Blocks until the engine answers, with typed rejections — the form
    /// deadline-carrying clients should use.
    ///
    /// # Errors
    ///
    /// Returns the [`Rejected`] reason when the engine completed this
    /// request without a result (its deadline passed before dispatch).
    ///
    /// # Panics
    ///
    /// Panics if the engine shut down without answering (a bug: the engine
    /// drains its queue before stopping).
    pub fn wait_outcome(self) -> Result<InferenceResponse, Rejected> {
        self.receiver
            .recv()
            .expect("engine answered every accepted request")
    }

    /// Returns the outcome if it already arrived, or the handle back.
    ///
    /// # Errors
    ///
    /// Returns `self` unchanged while the outcome is still pending;
    /// `Ok(Err(rejected))` when the engine answered with a typed
    /// rejection.
    ///
    /// # Panics
    ///
    /// Panics (like [`ResponseHandle::wait`]) if the engine dropped the
    /// request without answering — e.g. its batch panicked inside a custom
    /// execution backend. Treating that as "still pending" would make a
    /// polling loop spin forever.
    pub fn try_wait(self) -> Result<Outcome, ResponseHandle> {
        match self.receiver.try_recv() {
            Ok(outcome) => Ok(outcome),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!(
                    "the engine dropped {} without answering (batch execution failed)",
                    self.id
                )
            }
        }
    }
}

/// Errors surfaced by [`crate::ServeEngine::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The submitted tensor does not match the network's per-sample input
    /// shape.
    WrongInputShape {
        /// The shape the engine expects (batch dimension 1).
        expected: ios_ir::TensorShape,
        /// The shape that was submitted.
        submitted: ios_ir::TensorShape,
    },
    /// Admission control rejected the request synchronously (load
    /// shedding / bounded queue) — the request never entered the queue.
    Rejected(Rejected),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "the serving engine is shutting down"),
            ServeError::WrongInputShape {
                expected,
                submitted,
            } => write!(
                f,
                "submitted input shape {submitted:?} does not match the network's per-sample \
                 input shape {expected:?}"
            ),
            ServeError::Rejected(rejected) => write!(f, "{rejected}"),
        }
    }
}

impl std::error::Error for ServeError {}
