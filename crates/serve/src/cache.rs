//! The specialized-schedule cache.
//!
//! Table 3 of the paper shows that an IOS schedule is only optimal for the
//! `(batch size, device)` it was profiled on. An online server sees many
//! batch sizes, so this cache materializes that insight as a runtime
//! policy: schedules are keyed by `(network name, batch size, device)`,
//! optimized lazily on first miss, and an exact-batch miss can be served by
//! the *nearest* cached batch size (schedule stage structure is valid at any
//! batch) while a background worker optimizes the exact one. Background
//! re-optimization runs against whatever cost model the engine was
//! configured with — with `CostModelKind::CpuProfiled` the schedule that
//! lands in the cache was *measured* on the serving backend, not simulated.

use ios_core::NetworkSchedule;
use ios_sim::DeviceKind;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key of one cached schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// Network name (schedules are structure-specific).
    pub network: String,
    /// Batch size the schedule was optimized for.
    pub batch: usize,
    /// Device the schedule was optimized for.
    pub device: DeviceKind,
}

impl ScheduleKey {
    /// Creates a key.
    #[must_use]
    pub fn new(network: impl Into<String>, batch: usize, device: DeviceKind) -> Self {
        ScheduleKey {
            network: network.into(),
            batch,
            device,
        }
    }
}

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Exact-key lookups that found a schedule.
    pub hits: u64,
    /// Exact-key lookups that found nothing.
    pub misses: u64,
    /// Batches served by a nearest-batch schedule while the exact one was
    /// missing.
    pub nearest_served: u64,
    /// Schedules inserted by background re-optimization.
    pub background_inserts: u64,
    /// Schedules evicted by the adaptation controller because their
    /// measured device time regretted the prediction past the configured
    /// threshold.
    pub evictions: u64,
    /// Number of schedules currently cached.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of exact lookups that hit, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe cache of batch/device-specialized network schedules.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    entries: Mutex<HashMap<ScheduleKey, Arc<NetworkSchedule>>>,
    in_flight: Mutex<HashSet<ScheduleKey>>,
    hits: AtomicU64,
    misses: AtomicU64,
    nearest_served: AtomicU64,
    background_inserts: AtomicU64,
    evictions: AtomicU64,
}

impl ScheduleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// Looks up the schedule specialized for exactly `key`, counting a hit
    /// or miss.
    #[must_use]
    pub fn lookup(&self, key: &ScheduleKey) -> Option<Arc<NetworkSchedule>> {
        let found = self.entries.lock().expect("cache lock").get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Like [`ScheduleCache::lookup`], but without touching the hit/miss
    /// counters — for double-checked paths that already counted the miss.
    #[must_use]
    pub fn peek(&self, key: &ScheduleKey) -> Option<Arc<NetworkSchedule>> {
        self.entries.lock().expect("cache lock").get(key).cloned()
    }

    /// Inserts a schedule under `key`.
    pub fn insert(&self, key: ScheduleKey, schedule: Arc<NetworkSchedule>) {
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key, schedule);
    }

    /// Inserts a schedule produced by background re-optimization and clears
    /// its in-flight marker.
    pub fn insert_background(&self, key: ScheduleKey, schedule: Arc<NetworkSchedule>) {
        self.background_inserts.fetch_add(1, Ordering::Relaxed);
        self.in_flight.lock().expect("in-flight lock").remove(&key);
        self.insert(key, schedule);
    }

    /// The cached schedule for the same network and device whose batch size
    /// is nearest to `key.batch` (ties prefer the smaller batch). Counts a
    /// nearest-serve when found.
    #[must_use]
    pub fn nearest_batch(&self, key: &ScheduleKey) -> Option<(usize, Arc<NetworkSchedule>)> {
        let entries = self.entries.lock().expect("cache lock");
        let best = entries
            .iter()
            .filter(|(k, _)| k.network == key.network && k.device == key.device)
            .min_by_key(|(k, _)| (k.batch.abs_diff(key.batch), k.batch))
            .map(|(k, v)| (k.batch, Arc::clone(v)));
        drop(entries);
        if best.is_some() {
            self.nearest_served.fetch_add(1, Ordering::Relaxed);
        }
        best
    }

    /// Atomically marks `key` as being optimized in the background. Returns
    /// `false` if an optimization for it is already in flight.
    pub fn claim_background(&self, key: &ScheduleKey) -> bool {
        self.in_flight
            .lock()
            .expect("in-flight lock")
            .insert(key.clone())
    }

    /// Evicts the schedule cached under `key` (regret-driven refresh: the
    /// prediction stopped describing measured reality). Counts an eviction
    /// only when something was actually removed; in-flight batches holding
    /// the schedule's `Arc` finish unaffected.
    pub fn evict(&self, key: &ScheduleKey) -> bool {
        let removed = self
            .entries
            .lock()
            .expect("cache lock")
            .remove(key)
            .is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            nearest_served: self.nearest_served.load(Ordering::Relaxed),
            background_inserts: self.background_inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock").len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_core::Schedule;

    fn schedule(batch: usize) -> Arc<NetworkSchedule> {
        Arc::new(NetworkSchedule {
            network_name: "net".to_string(),
            label: format!("batch{batch}"),
            block_schedules: vec![Schedule::new("g", vec![])],
            latency_us: batch as f64,
        })
    }

    fn key(batch: usize) -> ScheduleKey {
        ScheduleKey::new("net", batch, DeviceKind::TeslaV100)
    }

    #[test]
    fn exact_hits_and_misses_are_counted() {
        let cache = ScheduleCache::new();
        assert!(cache.lookup(&key(4)).is_none());
        cache.insert(key(4), schedule(4));
        assert_eq!(cache.lookup(&key(4)).unwrap().label, "batch4");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearest_batch_prefers_closest_then_smaller() {
        let cache = ScheduleCache::new();
        cache.insert(key(1), schedule(1));
        cache.insert(key(8), schedule(8));
        let (batch, _) = cache.nearest_batch(&key(6)).unwrap();
        assert_eq!(batch, 8);
        let (batch, _) = cache.nearest_batch(&key(3)).unwrap();
        assert_eq!(
            batch, 1,
            "equidistant from 1 and 8 minus... 3 is nearer to 1"
        );
        // Different device: no candidates.
        let other = ScheduleKey::new("net", 6, DeviceKind::TeslaK80);
        assert!(cache.nearest_batch(&other).is_none());
    }

    #[test]
    fn eviction_removes_the_entry_and_counts_once() {
        let cache = ScheduleCache::new();
        cache.insert(key(4), schedule(4));
        let held = cache.peek(&key(4)).expect("cached");
        assert!(cache.evict(&key(4)), "first eviction removes the entry");
        assert!(!cache.evict(&key(4)), "nothing left to evict");
        assert!(cache.peek(&key(4)).is_none());
        // An in-flight batch holding the Arc still reads its schedule.
        assert_eq!(held.label, "batch4");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn background_claims_deduplicate() {
        let cache = ScheduleCache::new();
        assert!(cache.claim_background(&key(16)));
        assert!(
            !cache.claim_background(&key(16)),
            "second claim must be rejected"
        );
        cache.insert_background(key(16), schedule(16));
        assert!(
            cache.claim_background(&key(16)),
            "claim reopens after the insert"
        );
        assert_eq!(cache.stats().background_inserts, 1);
    }
}
