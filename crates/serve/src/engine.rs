//! The serving engine: worker pool wiring the dynamic batcher, the
//! specialized-schedule cache and a batch execution backend together.

use crate::batcher::BatchQueue;
use crate::cache::{ScheduleCache, ScheduleKey};
use crate::config::{CostModelKind, ServeConfig};
use crate::exec::{BatchContext, BatchExecutor, CpuReferenceExecutor, SimulatedDeviceExecutor};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::request::{
    InferenceResponse, Pending, RequestId, ResponseHandle, ResponseLease, ScheduleSource,
    ServeError,
};
use ios_backend::{
    stack_batch_pooled, CpuStageProfiler, GroupMode, NetworkWeights, ScratchPool, TensorData,
};
use ios_core::{
    optimize_network, CachingCostModel, CostModel, NetworkSchedule, ProfiledCostModel, SimCostModel,
};
use ios_ir::{Network, TensorShape};
use ios_sim::Simulator;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// State shared between the engine handle, its workers and background
/// re-optimization threads.
struct Shared {
    /// The network at batch size 1 (instances for other batch sizes are
    /// derived lazily).
    base: Network,
    /// Per-sample input shape requests must match.
    sample_shape: TensorShape,
    config: ServeConfig,
    queue: BatchQueue,
    cache: ScheduleCache,
    /// One thread-safe cost model backs schedule optimization and
    /// background re-optimization (and, for the simulated backend, batch
    /// accounting). Selected by [`ServeConfig::cost_model`]: the analytical
    /// simulator, or stage latencies profiled on the CPU backend.
    cost: Arc<dyn CostModel + Send + Sync>,
    /// Weights are batch-size independent, so one table serves every batch.
    weights: Arc<NetworkWeights>,
    executor: Box<dyn BatchExecutor>,
    /// Pool backing the serving boundary: stacked batch inputs and leased
    /// response tensors. Buffers return here when a [`ResponseLease`]
    /// drops, so steady-state serving performs no fresh tensor allocation
    /// at the boundary.
    io_pool: Arc<ScratchPool>,
    metrics: ServeMetrics,
    instances: Mutex<HashMap<usize, Arc<Network>>>,
    background: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes cold-start synchronous schedule optimizations.
    sync_optimize: Mutex<()>,
    next_id: AtomicU64,
}

impl Shared {
    /// The network instance shaped for `batch`, built on first use.
    fn instance(&self, batch: usize) -> Arc<Network> {
        let mut instances = self.instances.lock().expect("instances lock");
        Arc::clone(
            instances
                .entry(batch)
                .or_insert_with(|| Arc::new(self.base.with_batch_size(batch))),
        )
    }

    fn key(&self, batch: usize) -> ScheduleKey {
        ScheduleKey::new(self.base.name.clone(), batch, self.config.device)
    }

    /// Optimizes a schedule specialized for `batch` (synchronously).
    fn optimize(&self, batch: usize) -> Arc<NetworkSchedule> {
        let network = self.instance(batch);
        Arc::new(optimize_network(&network, &self.cost, &self.config.scheduler).schedule)
    }

    /// The Table 3 runtime policy: exact specialized schedule if cached,
    /// else nearest cached batch (kicking off background re-optimization of
    /// the exact one), else optimize synchronously.
    fn resolve_schedule(self: &Arc<Self>, batch: usize) -> (Arc<NetworkSchedule>, ScheduleSource) {
        let key = self.key(batch);
        if let Some(schedule) = self.cache.lookup(&key) {
            return (schedule, ScheduleSource::Exact);
        }
        if let Some((optimized_for, schedule)) = self.cache.nearest_batch(&key) {
            if self.config.background_reoptimize && self.cache.claim_background(&key) {
                let shared = Arc::clone(self);
                let handle = std::thread::Builder::new()
                    .name(format!("ios-serve-reopt-b{batch}"))
                    .spawn(move || {
                        let schedule = shared.optimize(batch);
                        shared.cache.insert_background(shared.key(batch), schedule);
                    })
                    .expect("spawn background re-optimization thread");
                self.background
                    .lock()
                    .expect("background lock")
                    .push(handle);
            }
            return (schedule, ScheduleSource::Nearest { optimized_for });
        }
        // Nothing usable is cached. Serialize synchronous optimizations so
        // cold-starting workers don't all run the same expensive search;
        // whoever loses the race finds the winner's entry on re-check.
        let _only_one_optimizer = self.sync_optimize.lock().expect("sync-optimize lock");
        if let Some(schedule) = self.cache.peek(&key) {
            return (schedule, ScheduleSource::Exact);
        }
        let schedule = self.optimize(batch);
        self.cache.insert(key, Arc::clone(&schedule));
        (schedule, ScheduleSource::FreshlyOptimized)
    }

    /// One worker: take batches until the queue closes and drains.
    fn worker_loop(self: &Arc<Self>) {
        while let Some(batch) = self
            .queue
            .next_batch(self.config.max_batch, self.config.max_wait)
        {
            self.metrics.set_queue_depth(self.queue.depth());
            // A panicking batch (e.g. a custom executor bug) must not kill
            // the worker: its requests' senders drop (their handles see the
            // disconnect) and the worker moves on to the next batch.
            let shared = Arc::clone(self);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                shared.run_batch(batch);
            }));
            if let Err(panic) = result {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".to_string());
                eprintln!("ios-serve: batch execution panicked: {message}");
            }
        }
    }

    fn run_batch(self: &Arc<Self>, batch: Vec<Pending>) {
        let batch_size = batch.len();
        let (schedule, source) = self.resolve_schedule(batch_size);
        let network = self.instance(batch_size);
        let dispatched_at = Instant::now();

        let input_refs: Vec<&TensorData> = batch.iter().map(|p| &p.input).collect();
        let stacked = stack_batch_pooled(&input_refs, &self.io_pool);
        let outcome = self.executor.execute(&BatchContext {
            network: &network,
            schedule: &schedule,
            weights: &self.weights,
            inputs: std::slice::from_ref(&stacked),
        });
        self.io_pool.recycle_tensor(stacked);
        self.metrics
            .record_batch(batch_size, outcome.device_time_us);

        // Split the stacked outputs (one entry per network output) into
        // per-sample response leases drawn from the io pool; each lease's
        // buffer returns to the pool when the client drops it. The stacked
        // output tensors themselves go back to the backend's pool.
        let mut responses: Vec<Vec<ResponseLease>> = (0..batch_size)
            .map(|_| Vec::with_capacity(outcome.outputs.as_ref().map_or(0, Vec::len)))
            .collect();
        if let Some(outputs) = outcome.outputs {
            for stacked_out in &outputs {
                let per_item = stacked_out.shape.elements_per_item();
                let item_shape = ios_ir::TensorShape::new(
                    1,
                    stacked_out.shape.channels,
                    stacked_out.shape.height,
                    stacked_out.shape.width,
                );
                for (i, sample_outputs) in responses.iter_mut().enumerate() {
                    let mut leased = self.io_pool.take_tensor(item_shape);
                    leased
                        .data
                        .copy_from_slice(&stacked_out.data[i * per_item..(i + 1) * per_item]);
                    sample_outputs.push(ResponseLease::pooled(leased, Arc::clone(&self.io_pool)));
                }
            }
            self.executor.recycle_outputs(outputs);
        }
        let device_share_us = outcome.device_time_us / batch_size as f64;

        for (pending, outputs) in batch.into_iter().zip(responses) {
            let now = Instant::now();
            let total_us = (now - pending.enqueued_at).as_secs_f64() * 1e6;
            let queue_us = (dispatched_at - pending.enqueued_at).as_secs_f64() * 1e6;
            self.metrics.record_latency(total_us);
            // A dropped ResponseHandle is fine; the send just fails.
            let _ = pending.respond_to.send(InferenceResponse {
                id: pending.id,
                outputs,
                batch_size,
                schedule_source: source,
                queue_us,
                total_us,
                device_us: device_share_us,
            });
        }
    }
}

/// An online batched inference server for one network.
///
/// ```
/// use ios_serve::{ServeConfig, ServeEngine};
/// use ios_backend::TensorData;
/// # use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};
/// # let input = TensorShape::new(1, 4, 6, 6);
/// # let mut b = GraphBuilder::new("doc_tiny", input);
/// # let x = b.input(0);
/// # let a = b.conv2d("a", x, Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1)));
/// # let network = Network::new("doc_tiny", input, vec![Block::new(b.build(vec![a]))]);
///
/// // `network` is any single-input ios_ir::Network.
/// let engine = ServeEngine::start(network.clone(), ServeConfig::default().with_max_batch(4));
/// let input = TensorData::random(network.input_shape, 1);
/// let response = engine.infer(input).unwrap();
/// assert_eq!(response.outputs.len(), 1);
/// engine.shutdown();
/// ```
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts an engine computing real numerics on the CPU reference
    /// backend. The host's cores are split between the configured dispatch
    /// workers so concurrent batches do not oversubscribe the machine.
    #[must_use]
    pub fn start(network: Network, config: ServeConfig) -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let per_batch = cores.div_ceil(config.workers.max(1));
        Self::start_with_executor(
            network,
            config,
            Box::new(CpuReferenceExecutor::with_max_workers(per_batch)),
        )
    }

    /// Starts an engine that accounts batches on the analytical GPU
    /// simulator instead of computing numerics — the configuration for
    /// serving-throughput studies. The batch accounting shares the
    /// scheduling cost model, so [`ServeConfig::cost_model`] is ignored
    /// here: simulated execution is only meaningful against the simulator.
    #[must_use]
    pub fn start_simulated(network: Network, config: ServeConfig) -> Self {
        let cost = Arc::new(CachingCostModel::new(SimCostModel::new(Simulator::new(
            config.device,
        ))));
        let executor = SimulatedDeviceExecutor::new(Arc::clone(&cost));
        Self::build(network, config, cost, Box::new(executor))
    }

    /// Starts an engine with a custom execution backend, optimizing
    /// schedules against the cost model selected by
    /// [`ServeConfig::cost_model`].
    #[must_use]
    pub fn start_with_executor(
        network: Network,
        config: ServeConfig,
        executor: Box<dyn BatchExecutor>,
    ) -> Self {
        let cost = Self::cost_model_for(&config);
        Self::build(network, config, cost, executor)
    }

    /// The scheduling cost model [`ServeConfig::cost_model`] selects.
    fn cost_model_for(config: &ServeConfig) -> Arc<dyn CostModel + Send + Sync> {
        match config.cost_model {
            CostModelKind::Simulated => Arc::new(CachingCostModel::new(SimCostModel::new(
                Simulator::new(config.device),
            ))),
            // Profiled serving policy: 1 warmup + median of 3 — background
            // re-optimization shares the engine's cores with serving, so
            // optimization cost is bounded tighter than offline profiling;
            // the ProfiledCostModel caches per stage on its own.
            // `MatchServing` profiles each batch size the way the batched
            // executor will run it: batch-1 stages with threaded groups, and
            // batch>1 stages serially (inside per-sample batch workers the
            // cores are already busy and stage groups run serially).
            CostModelKind::CpuProfiled => Arc::new(ProfiledCostModel::with_policy(
                CpuStageProfiler::with_group_mode(GroupMode::MatchServing),
                1,
                3,
            )),
        }
    }

    fn build(
        network: Network,
        config: ServeConfig,
        cost: Arc<dyn CostModel + Send + Sync>,
        executor: Box<dyn BatchExecutor>,
    ) -> Self {
        assert!(!network.blocks.is_empty(), "cannot serve an empty network");
        assert_eq!(
            network.blocks[0].graph.input_shapes().len(),
            1,
            "the serving engine batches single-input networks"
        );
        let base = if network.input_shape.batch == 1 {
            network
        } else {
            network.with_batch_size(1)
        };
        let sample_shape = base.input_shape;
        let weights = Arc::new(NetworkWeights::precompute(&base));

        let shared = Arc::new(Shared {
            sample_shape,
            queue: BatchQueue::new(),
            cache: ScheduleCache::new(),
            cost,
            weights,
            executor,
            io_pool: Arc::new(ScratchPool::new()),
            metrics: ServeMetrics::new(),
            instances: Mutex::new(HashMap::new()),
            background: Mutex::new(Vec::new()),
            sync_optimize: Mutex::new(()),
            next_id: AtomicU64::new(0),
            base,
            config,
        });

        // Pre-warm the schedule cache: the configured batch sizes get their
        // specialized schedules before the first request arrives.
        for batch in shared.config.effective_prewarm_batches() {
            let schedule = shared.optimize(batch);
            shared.cache.insert(shared.key(batch), schedule);
        }

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ios-serve-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn serving worker")
            })
            .collect();

        ServeEngine { shared, workers }
    }

    /// Submits one single-sample request; the returned handle resolves to
    /// the response once its batch executed.
    ///
    /// # Errors
    ///
    /// [`ServeError::WrongInputShape`] if `input` does not match the
    /// network's per-sample input shape, [`ServeError::ShuttingDown`] after
    /// [`ServeEngine::shutdown`] began.
    pub fn submit(&self, input: TensorData) -> Result<ResponseHandle, ServeError> {
        if input.shape != self.shared.sample_shape {
            return Err(ServeError::WrongInputShape {
                expected: self.shared.sample_shape,
                submitted: input.shape,
            });
        }
        let id = RequestId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let (respond_to, receiver) = mpsc::channel();
        let pending = Pending {
            id,
            input,
            enqueued_at: Instant::now(),
            respond_to,
        };
        if !self.shared.queue.push(pending) {
            return Err(ServeError::ShuttingDown);
        }
        self.shared
            .metrics
            .set_queue_depth(self.shared.queue.depth());
        Ok(ResponseHandle { id, receiver })
    }

    /// Submits a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::submit`].
    pub fn infer(&self, input: TensorData) -> Result<InferenceResponse, ServeError> {
        Ok(self.submit(input)?.wait())
    }

    /// A snapshot of the serving metrics, including schedule-cache counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.cache.stats())
    }

    /// Counters of the engine's serving-boundary pool (stacked inputs and
    /// leased response buffers): `(fresh heap allocations, pool reuses)`.
    /// In steady state — every request shape seen before, leases returned
    /// — the fresh count stays flat.
    #[must_use]
    pub fn io_pool_stats(&self) -> (u64, u64) {
        (
            self.shared.io_pool.fresh_allocations(),
            self.shared.io_pool.reuses(),
        )
    }

    /// Counters of the execution backend's scratch pool, if the backend
    /// has one: `(fresh heap allocations, pool reuses)`.
    #[must_use]
    pub fn executor_pool_stats(&self) -> Option<(u64, u64)> {
        self.shared.executor.pool_stats()
    }

    /// Requests currently waiting in the batching queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Name of the served network.
    #[must_use]
    pub fn network_name(&self) -> &str {
        &self.shared.base.name
    }

    /// Name of the execution backend.
    #[must_use]
    pub fn executor_name(&self) -> &'static str {
        self.shared.executor.name()
    }

    /// Stops accepting requests, answers everything already queued, waits
    /// for background re-optimizations, then returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers may have spawned re-optimizations while draining; take
        // the list repeatedly until it stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.shared.background.lock().expect("background lock"));
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("network", &self.shared.base.name)
            .field("executor", &self.shared.executor.name())
            .field("max_batch", &self.shared.config.max_batch)
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ScheduleSource;
    use std::time::Duration;

    fn tiny_network() -> Network {
        use ios_ir::{Block, Conv2dParams, GraphBuilder};
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("engine_tiny", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        Network::new("engine_tiny", input, vec![Block::new(b.build(vec![cat]))])
    }

    fn quick_config() -> ServeConfig {
        ServeConfig::default()
            .with_max_batch(4)
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1))
    }

    #[test]
    fn serves_single_requests() {
        let net = tiny_network();
        let engine = ServeEngine::start(net.clone(), quick_config());
        let input = TensorData::random(net.input_shape, 5);
        let response = engine.infer(input).unwrap();
        assert_eq!(response.outputs.len(), 1);
        assert_eq!(response.outputs[0].shape, TensorShape::new(1, 8, 6, 6));
        assert!(response.total_us >= response.queue_us);
        engine.shutdown();
    }

    #[test]
    fn rejects_wrong_shapes_and_post_shutdown_submissions() {
        let net = tiny_network();
        let engine = ServeEngine::start(net.clone(), quick_config());
        let wrong = TensorData::zeros(TensorShape::new(1, 3, 6, 6));
        assert!(matches!(
            engine.submit(wrong),
            Err(ServeError::WrongInputShape { .. })
        ));
        engine.shared.queue.close();
        let ok_shape = TensorData::zeros(net.input_shape);
        assert!(matches!(
            engine.submit(ok_shape),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn coalesces_deep_queues_into_full_batches() {
        let net = tiny_network();
        let engine = ServeEngine::start(
            net.clone(),
            quick_config().with_max_wait(Duration::from_millis(50)),
        );
        let handles: Vec<_> = (0..8)
            .map(|i| {
                engine
                    .submit(TensorData::random(net.input_shape, i))
                    .unwrap()
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();
        // All eight went through batches of max_batch = 4.
        assert!(
            responses.iter().all(|r| r.batch_size == 4),
            "batch sizes: {:?}",
            responses.iter().map(|r| r.batch_size).collect::<Vec<_>>()
        );
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        assert!(metrics.mean_batch_size >= 3.9);
        engine.shutdown();
    }

    #[test]
    fn exact_schedules_hit_the_cache_and_odd_batches_fall_back() {
        let net = tiny_network();
        // Pre-warm only batch 1 and 4; disable background re-optimization so
        // the fallback stays observable.
        let config = quick_config()
            .with_prewarm_batches(vec![1, 4])
            .with_background_reoptimize(false)
            .with_max_wait(Duration::from_millis(30));
        let engine = ServeEngine::start(net.clone(), config);

        // A full batch of 4 → exact cache hit.
        let handles: Vec<_> = (0..4)
            .map(|i| {
                engine
                    .submit(TensorData::random(net.input_shape, i))
                    .unwrap()
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();
        assert!(responses
            .iter()
            .all(|r| r.schedule_source == ScheduleSource::Exact));

        // A lone pair → batch 2 has no exact schedule; the nearest cached
        // batch (1 or 4) serves it.
        let h1 = engine
            .submit(TensorData::random(net.input_shape, 10))
            .unwrap();
        let h2 = engine
            .submit(TensorData::random(net.input_shape, 11))
            .unwrap();
        let (r1, r2) = (h1.wait(), h2.wait());
        for r in [&r1, &r2] {
            if r.batch_size == 2 {
                assert!(
                    matches!(r.schedule_source, ScheduleSource::Nearest { optimized_for } if optimized_for == 1 || optimized_for == 4),
                    "batch 2 must be served by a nearest schedule, got {:?}",
                    r.schedule_source
                );
            }
        }
        let stats = engine.metrics().cache;
        assert!(stats.hits >= 1);
        assert!(stats.nearest_served >= 1);
        engine.shutdown();
    }

    #[test]
    fn background_reoptimization_fills_the_exact_entry() {
        let net = tiny_network();
        let config = quick_config()
            .with_prewarm_batches(vec![4])
            .with_background_reoptimize(true)
            .with_max_wait(Duration::from_millis(5));
        let engine = ServeEngine::start(net.clone(), config);
        // Submit a lone request: batch 1 misses, is served by the batch-4
        // schedule, and background re-optimization inserts the exact entry.
        let response = engine
            .infer(TensorData::random(net.input_shape, 1))
            .unwrap();
        assert_eq!(
            response.schedule_source,
            ScheduleSource::Nearest { optimized_for: 4 }
        );
        // The background thread inserts the exact batch-1 schedule; wait
        // for it (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.metrics().cache.background_inserts == 0 {
            assert!(
                Instant::now() < deadline,
                "background re-optimization never completed"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // The next lone request is served by its exact schedule.
        let response = engine
            .infer(TensorData::random(net.input_shape, 2))
            .unwrap();
        assert_eq!(response.schedule_source, ScheduleSource::Exact);
        engine.shutdown();
    }

    #[test]
    fn a_panicking_backend_does_not_kill_the_worker() {
        use crate::exec::{BatchContext, BatchExecutor, BatchOutcome};
        use std::sync::atomic::AtomicBool;

        /// Panics on the first batch, behaves afterwards.
        struct FaultyOnce {
            fail_next: AtomicBool,
        }
        impl BatchExecutor for FaultyOnce {
            fn name(&self) -> &'static str {
                "faulty-once"
            }
            fn execute(&self, _ctx: &BatchContext<'_>) -> BatchOutcome {
                if self.fail_next.swap(false, Ordering::SeqCst) {
                    panic!("injected backend fault");
                }
                BatchOutcome {
                    outputs: None,
                    device_time_us: 1.0,
                }
            }
        }

        let net = tiny_network();
        let engine = ServeEngine::start_with_executor(
            net.clone(),
            quick_config(),
            Box::new(FaultyOnce {
                fail_next: AtomicBool::new(true),
            }),
        );
        // The first request's batch panics: its handle observes the drop
        // (wait panics), but the worker must survive…
        let doomed = engine.submit(TensorData::zeros(net.input_shape)).unwrap();
        let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| doomed.wait()));
        assert!(waited.is_err(), "the dropped request must not hang");
        // …and answer the next request normally.
        let response = engine.infer(TensorData::zeros(net.input_shape)).unwrap();
        assert_eq!(response.batch_size, 1);
        engine.shutdown();
    }

    #[test]
    fn simulated_backend_reports_device_time_without_outputs() {
        let net = tiny_network();
        let engine = ServeEngine::start_simulated(net.clone(), quick_config());
        let response = engine.infer(TensorData::zeros(net.input_shape)).unwrap();
        assert!(response.outputs.is_empty());
        assert!(response.device_us > 0.0);
        assert_eq!(engine.executor_name(), "simulated-device");
        engine.shutdown();
    }
}
