//! The serving engine: worker pool wiring the dynamic batcher, the
//! specialized-schedule cache and a batch execution backend together.

use crate::adapt::AdaptState;
use crate::batcher::{BatchQueue, PushResult};
use crate::cache::{ScheduleCache, ScheduleKey};
use crate::config::{CostModelKind, PipelineMode, ServeConfig};
use crate::exec::{BatchContext, BatchExecutor, CpuReferenceExecutor, SimulatedDeviceExecutor};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::request::{
    InferenceResponse, Pending, Rejected, RequestId, ResponseHandle, ResponseLease, ScheduleSource,
    ServeError, TenantId,
};
use ios_backend::{
    stack_batch_pooled, CpuStageProfiler, GroupMode, NetworkWeights, ScratchPool, TensorData,
};
use ios_core::{
    network_block_costs, optimize_network, plan_pipeline, CachingCostModel, CostModel,
    NetworkSchedule, PipelinePlan, ProfiledCostModel, SimCostModel,
};
use ios_ir::{Network, SegmentPlan, TensorShape};
use ios_sim::Simulator;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The host's available parallelism (1 when unknown) — the single probe
/// the worker split, the pipeline planner's stage budget and the custom
/// backend default all derive from.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// State shared between the engine handle, its workers, the adaptation
/// controller ([`crate::adapt`]) and background re-optimization threads.
pub(crate) struct Shared {
    /// The network at batch size 1 (instances for other batch sizes are
    /// derived lazily).
    pub(crate) base: Network,
    /// Per-sample input shape requests must match.
    pub(crate) sample_shape: TensorShape,
    pub(crate) config: ServeConfig,
    pub(crate) queue: BatchQueue,
    pub(crate) cache: ScheduleCache,
    /// One thread-safe cost model backs schedule optimization and
    /// background re-optimization (and, for the simulated backend, batch
    /// accounting). Selected by [`ServeConfig::cost_model`]: the analytical
    /// simulator, or stage latencies profiled on the CPU backend.
    pub(crate) cost: Arc<dyn CostModel + Send + Sync>,
    /// Weights are batch-size independent, so one table serves every batch.
    pub(crate) weights: Arc<NetworkWeights>,
    pub(crate) executor: Box<dyn BatchExecutor>,
    /// Pool backing the serving boundary: stacked batch inputs and leased
    /// response tensors. Buffers return here when a [`ResponseLease`]
    /// drops, so steady-state serving performs no fresh tensor allocation
    /// at the boundary.
    pub(crate) io_pool: Arc<ScratchPool>,
    pub(crate) metrics: ServeMetrics,
    /// The cross-block pipeline plan, when [`ServeConfig::pipeline`] is on
    /// and the backend accepted it; [`Shared::run_batch`] consults it per
    /// batch size to pick pipelined vs flat batched execution.
    pub(crate) pipeline: Mutex<Option<Arc<PipelinePlan>>>,
    /// Per-batch sample-worker cap of the *flat* execution path — what the
    /// pipeline's prediction must beat. [`ServeEngine::start`] splits the
    /// host's cores across its dispatch workers, so this is usually below
    /// the core count; custom backends default to the full host.
    pub(crate) flat_workers: usize,
    pub(crate) instances: Mutex<HashMap<usize, Arc<Network>>>,
    pub(crate) background: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes cold-start synchronous schedule optimizations.
    pub(crate) sync_optimize: Mutex<()>,
    /// Live state of the runtime adaptation loop (shed mode, regret
    /// observations, controller stop signal).
    pub(crate) adapt: AdaptState,
    pub(crate) next_id: AtomicU64,
    /// Batch correlation ids for the tracer: every span and instant a
    /// batch's lifecycle emits carries the same id, so the timeline can be
    /// grouped per batch across worker, pipeline and request lanes.
    pub(crate) next_batch_id: AtomicU64,
}

impl Shared {
    /// The network instance shaped for `batch`, built on first use.
    pub(crate) fn instance(&self, batch: usize) -> Arc<Network> {
        let mut instances = self.instances.lock().expect("instances lock");
        Arc::clone(
            instances
                .entry(batch)
                .or_insert_with(|| Arc::new(self.base.with_batch_size(batch))),
        )
    }

    pub(crate) fn key(&self, batch: usize) -> ScheduleKey {
        ScheduleKey::new(self.base.name.clone(), batch, self.config.device)
    }

    /// Optimizes a schedule specialized for `batch` (synchronously).
    pub(crate) fn optimize(&self, batch: usize) -> Arc<NetworkSchedule> {
        let network = self.instance(batch);
        Arc::new(optimize_network(&network, &self.cost, &self.config.scheduler).schedule)
    }

    /// The Table 3 runtime policy: exact specialized schedule if cached,
    /// else nearest cached batch (kicking off background re-optimization of
    /// the exact one), else optimize synchronously.
    fn resolve_schedule(self: &Arc<Self>, batch: usize) -> (Arc<NetworkSchedule>, ScheduleSource) {
        let key = self.key(batch);
        if let Some(schedule) = self.cache.lookup(&key) {
            return (schedule, ScheduleSource::Exact);
        }
        if let Some((optimized_for, schedule)) = self.cache.nearest_batch(&key) {
            if self.config.background_reoptimize && self.cache.claim_background(&key) {
                let shared = Arc::clone(self);
                let handle = std::thread::Builder::new()
                    .name(format!("ios-serve-reopt-b{batch}"))
                    .spawn(move || {
                        let schedule = shared.optimize(batch);
                        shared.cache.insert_background(shared.key(batch), schedule);
                    })
                    .expect("spawn background re-optimization thread");
                self.background
                    .lock()
                    .expect("background lock")
                    .push(handle);
            }
            return (schedule, ScheduleSource::Nearest { optimized_for });
        }
        // Nothing usable is cached. Serialize synchronous optimizations so
        // cold-starting workers don't all run the same expensive search;
        // whoever loses the race finds the winner's entry on re-check.
        let _only_one_optimizer = self.sync_optimize.lock().expect("sync-optimize lock");
        if let Some(schedule) = self.cache.peek(&key) {
            return (schedule, ScheduleSource::Exact);
        }
        let schedule = self.optimize(batch);
        self.cache.insert(key, Arc::clone(&schedule));
        (schedule, ScheduleSource::FreshlyOptimized)
    }

    /// Builds a fresh cross-block pipeline plan from current cost-model
    /// measurements, or `None` when pipelining is off or the backend can't
    /// run one. Shared by startup planning and the adaptation controller's
    /// re-planning — both then decide separately whether the plan is worth
    /// installing.
    pub(crate) fn build_pipeline_plan(&self) -> Option<PipelinePlan> {
        if self.config.pipeline == PipelineMode::Off || !self.executor.can_pipeline() {
            // Planning measures every block (expensively, for a profiled
            // cost model): don't pay for a plan a flat-only backend would
            // discard anyway.
            return None;
        }
        // The per-sample (batch-1) schedule drives the plan: the pipeline
        // executes one sample per job regardless of serving batch size.
        let key = self.key(1);
        let schedule1 = self.cache.peek(&key).unwrap_or_else(|| {
            let schedule = self.optimize(1);
            self.cache.insert(key, Arc::clone(&schedule));
            schedule
        });
        let stage_workers = host_cores();
        Some(match self.config.pipeline {
            PipelineMode::Forced(segments) => PipelinePlan::for_segments(
                network_block_costs(&self.base, &schedule1, &self.cost),
                SegmentPlan::even(self.base.blocks.len(), segments.max(1)),
                stage_workers,
            ),
            _ => plan_pipeline(
                &self.base,
                &schedule1,
                &self.cost,
                stage_workers,
                self.config.pipeline_max_segments,
            ),
        })
    }

    /// Offers `plan` to the execution backend and installs it as the
    /// serving plan if the backend accepts. The executor's
    /// `prepare_pipeline` is mid-flight-swap safe (in-flight batches hold
    /// their own `Arc`s), so this is also the controller's re-plan commit.
    pub(crate) fn install_pipeline_plan(&self, plan: PipelinePlan) -> bool {
        if self
            .executor
            .prepare_pipeline(self.instance(1), Arc::clone(&self.weights), &plan)
        {
            *self.pipeline.lock().expect("pipeline plan lock") = Some(Arc::new(plan));
            true
        } else {
            false
        }
    }

    /// Plans the cross-block pipeline at startup when
    /// [`ServeConfig::pipeline`] asks for one: measure per-block costs of
    /// the batch-1 schedule with the engine's cost model (for
    /// [`CostModelKind::CpuProfiled`] with pipelining on, those stage
    /// latencies were measured *under concurrent load*), choose segment
    /// boundaries, and offer the plan to the execution backend. The plan
    /// only sticks if the backend can actually execute it.
    fn plan_pipeline_if_configured(self: &Arc<Self>) {
        let Some(plan) = self.build_pipeline_plan() else {
            return;
        };
        // Under `Auto` the pipeline only earns its stage workers if some
        // admissible batch size is actually predicted to route to it — a
        // flat plan, or a multi-segment plan that never beats the capped
        // flat path for any batch up to `max_batch`, stays flat.
        let worth_running = matches!(self.config.pipeline, PipelineMode::Forced(_))
            || (2..=self.config.max_batch)
                .any(|batch| plan.prefers_pipeline_vs(batch, self.flat_workers));
        if worth_running {
            self.install_pipeline_plan(plan);
        }
    }

    /// The wall-clock execute-time estimate the deadline-aware batcher
    /// subtracts from the most urgent queued deadline: the mean observed
    /// per-batch device time so far (zero until the first batch lands —
    /// before any measurement the batcher flushes right at the deadline).
    fn predicted_exec(&self) -> Duration {
        let device = self.metrics.device_time_histogram();
        if device.count() == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(device.mean() as u64)
    }

    /// The admission inputs for the next offer: the effective queue
    /// capacity — the configured hard bound, tightened to one batch's
    /// worth of requests while the controller has shed mode engaged
    /// (queued work keeps the device fed; everything beyond it would only
    /// queue-wait past the budget) — and whether shed mode is on. In shed
    /// mode the queue applies the capacity per tenant as a weighted share,
    /// so the over-quota tenant is the one shed.
    fn admission(&self) -> (Option<usize>, bool) {
        let configured = self.config.adapt.admission_capacity;
        if self.adapt.shedding() {
            let shed_cap = self.config.max_batch;
            (Some(configured.map_or(shed_cap, |c| c.min(shed_cap))), true)
        } else {
            (configured, false)
        }
    }

    /// One worker: take batches until the queue closes and drains.
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let predicted_exec = self.predicted_exec();
            let Some(batch) =
                self.queue
                    .next_batch(self.config.max_batch, self.config.max_wait, predicted_exec)
            else {
                break;
            };
            self.metrics.set_queue_depth(self.queue.depth());
            // A panicking batch (e.g. a custom executor bug) must not kill
            // the worker: its requests' senders drop (their handles see the
            // disconnect) and the worker moves on to the next batch.
            let shared = Arc::clone(self);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                shared.run_batch(batch);
            }));
            if let Err(panic) = result {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".to_string());
                eprintln!("ios-serve: batch execution panicked: {message}");
            }
        }
    }

    /// The pipeline plan this batch should execute under, per the
    /// configured [`PipelineMode`] and the plan's own per-batch-size
    /// prediction — `None` means flat batched execution. (Under
    /// [`PipelineMode::Off`] no plan is ever stored, so the lock read
    /// already short-circuits.)
    fn pipeline_for(&self, batch: usize) -> Option<Arc<PipelinePlan>> {
        let plan = self.pipeline.lock().expect("pipeline plan lock").clone()?;
        if let PipelineMode::Auto = self.config.pipeline {
            // Compare against the flat path as this engine actually runs
            // it: capped at `flat_workers` sample workers per batch.
            return plan
                .prefers_pipeline_vs(batch, self.flat_workers)
                .then_some(plan);
        }
        Some(plan)
    }

    fn run_batch(self: &Arc<Self>, batch: Vec<Pending>) {
        let tracer = ios_telemetry::tracer();
        // Requests whose deadline already passed complete as expired *before*
        // any schedule resolution or device dispatch — serving them would
        // burn device time on answers nobody can use.
        let now = Instant::now();
        let (batch, expired): (Vec<Pending>, Vec<Pending>) = batch
            .into_iter()
            .partition(|p| p.deadline.is_none_or(|d| now < d));
        for pending in expired {
            self.metrics.record_deadline_expired();
            tracer.instant("request.deadline_expired", "request", pending.id.0);
            let _ = pending.respond_to.send(Err(Rejected::DeadlineExceeded));
        }
        if batch.is_empty() {
            return;
        }
        let batch_id = self.next_batch_id.fetch_add(1, Ordering::Relaxed);
        let batch_size = batch.len();
        let mut batch_span = tracer.span("batch", "serve");
        batch_span.set_id(batch_id);
        batch_span.set_arg(batch_size as u64);
        let (schedule, source) = self.resolve_schedule(batch_size);
        let network = self.instance(batch_size);
        let mut pipeline = self.pipeline_for(batch_size);
        let dispatched_at = Instant::now();
        if let Some(oldest) = batch.iter().map(|p| p.enqueued_at).min() {
            // Batch assembly: the oldest member's enqueue to this dispatch.
            let assembly_us = (dispatched_at - oldest).as_secs_f64() * 1e6;
            self.metrics.record_assembly(assembly_us);
        }

        let input_refs: Vec<&TensorData> = batch.iter().map(|p| &p.input).collect();
        let stacked = stack_batch_pooled(&input_refs, &self.io_pool);
        let run = |pipeline: Option<&PipelinePlan>| {
            self.executor.execute(&BatchContext {
                network: &network,
                schedule: &schedule,
                weights: &self.weights,
                inputs: std::slice::from_ref(&stacked),
                pipeline,
            })
        };
        let mut exec_span = tracer.span("batch.execute", "serve");
        exec_span.set_id(batch_id);
        exec_span.set_arg(u64::from(pipeline.is_some()));
        let outcome = if let Some(plan) = pipeline.clone() {
            // A dead pipeline (one stage worker panicked and broke the
            // channel chain) must not take the engine down with it: drop
            // the plan so every later batch goes flat, and salvage *this*
            // batch by retrying it on the flat path right away.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(Some(&plan)))) {
                Ok(outcome) => outcome,
                Err(_) => {
                    eprintln!(
                        "ios-serve: pipelined execution failed; disabling the pipeline \
                         and retrying this batch flat"
                    );
                    *self.pipeline.lock().expect("pipeline plan lock") = None;
                    pipeline = None;
                    run(None)
                }
            }
        } else {
            run(None)
        };
        drop(exec_span);
        self.io_pool.recycle_tensor(stacked);
        self.metrics
            .record_batch(batch_size, outcome.device_time_us, pipeline.is_some());
        if self.config.adapt.enabled && source == ScheduleSource::Exact {
            // Feed the regret sensor: measured device time vs what the
            // schedule's optimizer predicted for exactly this batch size.
            self.adapt
                .observe(batch_size, outcome.device_time_us, schedule.latency_us);
        }

        // Split the stacked outputs (one entry per network output) into
        // per-sample response leases drawn from the io pool; each lease's
        // buffer returns to the pool when the client drops it. The stacked
        // output tensors themselves go back to the backend's pool.
        let mut responses: Vec<Vec<ResponseLease>> = (0..batch_size)
            .map(|_| Vec::with_capacity(outcome.outputs.as_ref().map_or(0, Vec::len)))
            .collect();
        if let Some(outputs) = outcome.outputs {
            for stacked_out in &outputs {
                let per_item = stacked_out.shape.elements_per_item();
                let item_shape = ios_ir::TensorShape::new(
                    1,
                    stacked_out.shape.channels,
                    stacked_out.shape.height,
                    stacked_out.shape.width,
                );
                for (i, sample_outputs) in responses.iter_mut().enumerate() {
                    let mut leased = self.io_pool.take_tensor(item_shape);
                    leased
                        .data
                        .copy_from_slice(&stacked_out.data[i * per_item..(i + 1) * per_item]);
                    sample_outputs.push(ResponseLease::pooled(leased, Arc::clone(&self.io_pool)));
                }
            }
            self.executor.recycle_outputs(outputs);
        }
        let device_share_us = outcome.device_time_us / batch_size as f64;

        for (pending, outputs) in batch.into_iter().zip(responses) {
            let now = Instant::now();
            let total_us = (now - pending.enqueued_at).as_secs_f64() * 1e6;
            let queue_us = (dispatched_at - pending.enqueued_at).as_secs_f64() * 1e6;
            self.metrics.record_latency(total_us);
            self.metrics.record_queue_wait(queue_us);
            self.metrics
                .tenant(&pending.tenant)
                .record_completed(queue_us);
            if tracer.is_enabled() {
                // Back-date the queue-wait span to the request's enqueue:
                // its record lands on this worker's lane, tagged with the
                // batch that eventually served it.
                let total_ns = (total_us * 1e3).max(0.0) as u64;
                let start_ns = tracer.now_ns().saturating_sub(total_ns);
                let wait_ns = (queue_us * 1e3).max(0.0) as u64;
                tracer.record_span_at(
                    "request.queue_wait",
                    "request",
                    start_ns,
                    wait_ns,
                    pending.id.0,
                    batch_id,
                );
                tracer.instant("request.respond", "request", pending.id.0);
            }
            // A dropped ResponseHandle is fine; the send just fails.
            let _ = pending.respond_to.send(Ok(InferenceResponse {
                id: pending.id,
                outputs,
                batch_size,
                schedule_source: source,
                pipelined: pipeline.is_some(),
                queue_us,
                total_us,
                device_us: device_share_us,
            }));
        }
    }
}

/// An online batched inference server for one network.
///
/// ```
/// use ios_serve::{ServeConfig, ServeEngine};
/// use ios_backend::TensorData;
/// # use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};
/// # let input = TensorShape::new(1, 4, 6, 6);
/// # let mut b = GraphBuilder::new("doc_tiny", input);
/// # let x = b.input(0);
/// # let a = b.conv2d("a", x, Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1)));
/// # let network = Network::new("doc_tiny", input, vec![Block::new(b.build(vec![a]))]);
///
/// // `network` is any single-input ios_ir::Network.
/// let engine = ServeEngine::start(network.clone(), ServeConfig::default().with_max_batch(4));
/// let input = TensorData::random(network.input_shape, 1);
/// let response = engine.infer(input).unwrap();
/// assert_eq!(response.outputs.len(), 1);
/// engine.shutdown();
/// ```
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The adaptation controller thread, when [`crate::AdaptConfig`]
    /// enabled it.
    controller: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts an engine computing real numerics on the CPU reference
    /// backend. The host's cores are split between the configured dispatch
    /// workers so concurrent batches do not oversubscribe the machine.
    #[must_use]
    pub fn start(network: Network, config: ServeConfig) -> Self {
        let per_batch = host_cores().div_ceil(config.workers.max(1));
        let cost = Self::cost_model_for(&config);
        Self::build(
            network,
            config,
            cost,
            Box::new(CpuReferenceExecutor::with_max_workers(per_batch)),
            per_batch,
        )
    }

    /// Starts an engine that accounts batches on the analytical GPU
    /// simulator instead of computing numerics — the configuration for
    /// serving-throughput studies. The batch accounting shares the
    /// scheduling cost model, so [`ServeConfig::cost_model`] is ignored
    /// here: simulated execution is only meaningful against the simulator.
    #[must_use]
    pub fn start_simulated(network: Network, config: ServeConfig) -> Self {
        let cost = Arc::new(CachingCostModel::new(SimCostModel::new(Simulator::new(
            config.device,
        ))));
        let executor = SimulatedDeviceExecutor::new(Arc::clone(&cost));
        Self::build(network, config, cost, Box::new(executor), host_cores())
    }

    /// Starts an engine with a custom execution backend, optimizing
    /// schedules against the cost model selected by
    /// [`ServeConfig::cost_model`]. The backend's flat per-batch fan-out is
    /// unknown here, so the pipeline-vs-flat prediction assumes it spans
    /// the whole host.
    #[must_use]
    pub fn start_with_executor(
        network: Network,
        config: ServeConfig,
        executor: Box<dyn BatchExecutor>,
    ) -> Self {
        let cost = Self::cost_model_for(&config);
        Self::build(network, config, cost, executor, host_cores())
    }

    /// The scheduling cost model [`ServeConfig::cost_model`] selects.
    fn cost_model_for(config: &ServeConfig) -> Arc<dyn CostModel + Send + Sync> {
        match config.cost_model {
            CostModelKind::Simulated => Arc::new(CachingCostModel::new(SimCostModel::new(
                Simulator::new(config.device),
            ))),
            // Profiled serving policy: 1 warmup + median of 3 — background
            // re-optimization shares the engine's cores with serving, so
            // optimization cost is bounded tighter than offline profiling;
            // the ProfiledCostModel caches per stage on its own.
            // `MatchServing` profiles each batch size the way the batched
            // executor will run it: batch-1 stages with threaded groups, and
            // batch>1 stages serially (inside per-sample batch workers the
            // cores are already busy and stage groups run serially).
            //
            // A pipelining engine additionally profiles **under concurrent
            // load** — one background load worker per sibling dispatch
            // worker — because its stages never run on an idle machine:
            // pipeline neighbours and concurrent batches contend for cores
            // and cache, and measurements that ignore that contention
            // mis-rank candidate stages and segment boundaries.
            CostModelKind::CpuProfiled => {
                let load = if config.pipeline == PipelineMode::Off {
                    0
                } else {
                    config.workers.saturating_sub(1)
                };
                Arc::new(ProfiledCostModel::with_policy(
                    CpuStageProfiler::with_group_mode(GroupMode::MatchServing)
                        .with_background_load(load)
                        .with_precision(config.precision),
                    1,
                    3,
                ))
            }
        }
    }

    fn build(
        network: Network,
        config: ServeConfig,
        cost: Arc<dyn CostModel + Send + Sync>,
        executor: Box<dyn BatchExecutor>,
        flat_workers: usize,
    ) -> Self {
        assert!(!network.blocks.is_empty(), "cannot serve an empty network");
        assert_eq!(
            network.blocks[0].graph.input_shapes().len(),
            1,
            "the serving engine batches single-input networks"
        );
        let base = if network.input_shape.batch == 1 {
            network
        } else {
            network.with_batch_size(1)
        };
        let sample_shape = base.input_shape;
        let weights = Arc::new(NetworkWeights::precompute_as(&base, config.precision));

        let shared = Arc::new(Shared {
            sample_shape,
            queue: BatchQueue::with_tenants(config.tenants.clone()),
            cache: ScheduleCache::new(),
            cost,
            weights,
            executor,
            io_pool: Arc::new(ScratchPool::new()),
            metrics: ServeMetrics::new(),
            pipeline: Mutex::new(None),
            flat_workers: flat_workers.max(1),
            instances: Mutex::new(HashMap::new()),
            background: Mutex::new(Vec::new()),
            sync_optimize: Mutex::new(()),
            adapt: AdaptState::new(),
            next_id: AtomicU64::new(0),
            next_batch_id: AtomicU64::new(0),
            base,
            config,
        });

        // Pre-warm the schedule cache: the configured batch sizes get their
        // specialized schedules before the first request arrives.
        for batch in shared.config.effective_prewarm_batches() {
            let schedule = shared.optimize(batch);
            shared.cache.insert(shared.key(batch), schedule);
        }

        shared.plan_pipeline_if_configured();

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ios-serve-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn serving worker")
            })
            .collect();

        let controller = shared.config.adapt.enabled.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ios-serve-adapt".to_string())
                .spawn(move || crate::adapt::controller_loop(&shared))
                .expect("spawn adaptation controller")
        });

        ServeEngine {
            shared,
            workers,
            controller,
        }
    }

    /// Submits one single-sample request; the returned handle resolves to
    /// the response once its batch executed. When
    /// [`crate::AdaptConfig::default_deadline`] is configured the request
    /// carries that budget as its deadline.
    ///
    /// # Errors
    ///
    /// [`ServeError::WrongInputShape`] if `input` does not match the
    /// network's per-sample input shape, [`ServeError::ShuttingDown`] after
    /// [`ServeEngine::shutdown`] began, and
    /// [`ServeError::Rejected`]`(`[`Rejected::Shed`]`)` when admission
    /// control turned the request away (bounded queue full, or shed mode
    /// with a batch's worth already queued).
    pub fn submit(&self, input: TensorData) -> Result<ResponseHandle, ServeError> {
        self.submit_inner(
            TenantId::default_tenant(),
            input,
            self.shared.config.adapt.default_deadline,
        )
    }

    /// Submits a request on behalf of a named tenant: it queues on the
    /// tenant's own weighted-fair lane, spends a token from the tenant's
    /// bucket when one is configured ([`crate::TenantConfig`]), and counts
    /// toward the tenant's `ios_tenant_*` metrics. Anonymous
    /// [`ServeEngine::submit`] traffic is the same call with the default
    /// tenant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::submit`];
    /// [`ServeError::Rejected`]`(`[`Rejected::Shed`]`)` additionally
    /// covers an exhausted token bucket and, in shed mode, the tenant
    /// being over its weighted share of the queue.
    pub fn submit_for_tenant(
        &self,
        tenant: impl Into<TenantId>,
        input: TensorData,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit_inner(
            tenant.into(),
            input,
            self.shared.config.adapt.default_deadline,
        )
    }

    /// [`ServeEngine::submit_for_tenant`] with a per-request deadline
    /// budget (see [`ServeEngine::submit_with_deadline`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::submit_for_tenant`].
    pub fn submit_for_tenant_with_deadline(
        &self,
        tenant: impl Into<TenantId>,
        input: TensorData,
        budget: Duration,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit_inner(tenant.into(), input, Some(budget))
    }

    /// Submits a request that is only worth answering for the next
    /// `budget` of wall clock: the batcher flushes early to make the
    /// deadline, and if it still passes before dispatch the request
    /// completes with [`Rejected::DeadlineExceeded`] (via
    /// [`ResponseHandle::wait_outcome`]) instead of a stale result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::submit`].
    pub fn submit_with_deadline(
        &self,
        input: TensorData,
        budget: Duration,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit_inner(TenantId::default_tenant(), input, Some(budget))
    }

    fn submit_inner(
        &self,
        tenant: TenantId,
        input: TensorData,
        budget: Option<Duration>,
    ) -> Result<ResponseHandle, ServeError> {
        if input.shape != self.shared.sample_shape {
            return Err(ServeError::WrongInputShape {
                expected: self.shared.sample_shape,
                submitted: input.shape,
            });
        }
        let id = RequestId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let (respond_to, receiver) = mpsc::channel();
        let enqueued_at = Instant::now();
        let pending = Pending {
            id,
            tenant: tenant.clone(),
            input,
            enqueued_at,
            deadline: budget.map(|b| enqueued_at + b),
            respond_to,
        };
        let (capacity, shedding) = self.shared.admission();
        match self.shared.queue.push_bounded(pending, capacity, shedding) {
            PushResult::Accepted => {}
            PushResult::Closed => return Err(ServeError::ShuttingDown),
            PushResult::Full | PushResult::RateLimited => {
                self.shared.metrics.record_shed();
                self.shared.metrics.tenant(&tenant).record_shed();
                ios_telemetry::tracer().instant("request.shed", "request", id.0);
                return Err(ServeError::Rejected(Rejected::Shed));
            }
        }
        ios_telemetry::tracer().instant("request.enqueue", "request", id.0);
        self.shared
            .metrics
            .set_queue_depth(self.shared.queue.depth());
        Ok(ResponseHandle { id, receiver })
    }

    /// Submits a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::submit`].
    pub fn infer(&self, input: TensorData) -> Result<InferenceResponse, ServeError> {
        Ok(self.submit(input)?.wait())
    }

    /// A snapshot of the serving metrics, including schedule-cache counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.cache.stats())
    }

    /// The retained records of the process-global tracer, rendered as a
    /// Chrome trace-event JSON array — load it in `chrome://tracing` or
    /// Perfetto. Empty (an empty array) unless
    /// [`ios_telemetry::tracer()`]`.set_enabled(true)` was called around
    /// the window of interest.
    #[must_use]
    pub fn trace_dump(&self) -> String {
        ios_telemetry::chrome_trace_json(&ios_telemetry::tracer().records())
    }

    /// The serving metrics in Prometheus text exposition format: request
    /// counters, queue-depth gauge, schedule-cache counters, weight-cache
    /// footprint gauges (f32 vs int8 bytes), the selected-microkernel-ISA
    /// info gauge (`ios_simd_kernel{path,isa}`), the latency /
    /// queue-wait / batch-assembly / device-time histograms (exposed in
    /// microseconds), and per-tenant completed/shed counters and
    /// queue-wait histograms as `ios_tenant_*{tenant="…"}` labelled
    /// series.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        use ios_telemetry::prometheus as prom;
        let m = &self.shared.metrics;
        let cache = self.shared.cache.stats();
        let mut out = String::new();
        prom::counter(
            &mut out,
            "ios_requests_completed_total",
            "Requests answered since the engine started.",
            m.completed(),
        );
        prom::counter(
            &mut out,
            "ios_batches_total",
            "Batches dispatched since the engine started.",
            m.batches(),
        );
        prom::counter(
            &mut out,
            "ios_pipelined_batches_total",
            "Batches executed through the cross-block pipeline.",
            m.pipelined_batches(),
        );
        prom::counter(
            &mut out,
            "ios_requests_shed_total",
            "Requests turned away by admission control (bounded queue or shed mode).",
            m.shed(),
        );
        prom::counter(
            &mut out,
            "ios_requests_deadline_expired_total",
            "Requests completed as expired before reaching the device.",
            m.deadline_expired(),
        );
        prom::counter(
            &mut out,
            "ios_adaptation_replans_total",
            "Telemetry-triggered pipeline/schedule re-plans.",
            m.replans(),
        );
        prom::gauge(
            &mut out,
            "ios_queue_depth",
            "Requests waiting in the batching queue.",
            m.queue_depth() as f64,
        );
        prom::counter(
            &mut out,
            "ios_schedule_cache_hits_total",
            "Exact specialized-schedule cache hits.",
            cache.hits,
        );
        prom::counter(
            &mut out,
            "ios_schedule_cache_misses_total",
            "Schedule-cache lookups with no exact entry.",
            cache.misses,
        );
        prom::counter(
            &mut out,
            "ios_schedule_cache_nearest_total",
            "Batches served by the nearest cached batch size.",
            cache.nearest_served,
        );
        prom::counter(
            &mut out,
            "ios_schedule_cache_background_inserts_total",
            "Exact schedules inserted by background re-optimization.",
            cache.background_inserts,
        );
        prom::counter(
            &mut out,
            "ios_schedule_cache_evictions_total",
            "Schedules evicted for regretting their predicted device time.",
            cache.evictions,
        );
        prom::gauge(
            &mut out,
            "ios_schedule_cache_entries",
            "Schedules currently cached.",
            cache.entries as f64,
        );
        let footprint = self.shared.weights.footprint();
        prom::gauge(
            &mut out,
            "ios_weight_cache_f32_bytes",
            "Bytes of f32 weight arrays held by the weight cache.",
            footprint.f32_bytes as f64,
        );
        prom::gauge(
            &mut out,
            "ios_weight_cache_int8_bytes",
            "Bytes of int8 quantized weights (and scales) held by the weight cache.",
            footprint.int8_bytes as f64,
        );
        let isa = ios_backend::simd::active_isa().name();
        prom::info(
            &mut out,
            "ios_simd_kernel",
            "Selected microkernel ISA per numeric path (info gauge, constant 1).",
            &[
                &[("path", "f32"), ("isa", isa)],
                &[("path", "int8"), ("isa", isa)],
            ],
        );
        prom::histogram_us(
            &mut out,
            "ios_request_latency_us",
            "Request latency, submission to response, microseconds.",
            &m.latency_histogram().snapshot(),
        );
        prom::histogram_us(
            &mut out,
            "ios_request_queue_wait_us",
            "Time requests spent queued before dispatch, microseconds.",
            &m.queue_wait_histogram().snapshot(),
        );
        prom::histogram_us(
            &mut out,
            "ios_batch_assembly_us",
            "Batch assembly time, oldest enqueue to dispatch, microseconds.",
            &m.batch_assembly_histogram().snapshot(),
        );
        prom::histogram_us(
            &mut out,
            "ios_batch_device_time_us",
            "Per-batch (simulated) device time, microseconds.",
            &m.device_time_histogram().snapshot(),
        );
        // Per-tenant labelled series: one sample (or histogram) per tenant
        // seen so far, `{tenant="…"}`. Absent entirely until the first
        // request arrives.
        let tenants = m.tenant_entries();
        if !tenants.is_empty() {
            let labels: Vec<[(&str, &str); 1]> = tenants
                .iter()
                .map(|(tenant, _)| [("tenant", tenant.name())])
                .collect();
            let completed: Vec<(&[(&str, &str)], u64)> = tenants
                .iter()
                .zip(&labels)
                .map(|((_, tm), l)| (l.as_slice(), tm.completed()))
                .collect();
            prom::counter_family(
                &mut out,
                "ios_tenant_requests_completed_total",
                "Requests answered, per tenant.",
                &completed,
            );
            let shed: Vec<(&[(&str, &str)], u64)> = tenants
                .iter()
                .zip(&labels)
                .map(|((_, tm), l)| (l.as_slice(), tm.shed()))
                .collect();
            prom::counter_family(
                &mut out,
                "ios_tenant_requests_shed_total",
                "Requests turned away by admission control, per tenant.",
                &shed,
            );
            let wait_snaps: Vec<ios_telemetry::HistogramSnapshot> = tenants
                .iter()
                .map(|(_, tm)| tm.queue_wait_histogram().snapshot())
                .collect();
            let waits: Vec<(&[(&str, &str)], &ios_telemetry::HistogramSnapshot)> = wait_snaps
                .iter()
                .zip(&labels)
                .map(|(snap, l)| (l.as_slice(), snap))
                .collect();
            prom::histogram_us_family(
                &mut out,
                "ios_tenant_queue_wait_us",
                "Time requests spent queued before dispatch, per tenant, microseconds.",
                &waits,
            );
        }
        out
    }

    /// The cross-block pipeline plan the engine is serving with, if the
    /// configured [`PipelineMode`] produced one and the backend accepted
    /// it. `None` means every batch runs flat batched execution.
    #[must_use]
    pub fn pipeline_plan(&self) -> Option<Arc<PipelinePlan>> {
        self.shared
            .pipeline
            .lock()
            .expect("pipeline plan lock")
            .clone()
    }

    /// Counters of the engine's serving-boundary pool (stacked inputs and
    /// leased response buffers): `(fresh heap allocations, pool reuses)`.
    /// In steady state — every request shape seen before, leases returned
    /// — the fresh count stays flat.
    #[must_use]
    pub fn io_pool_stats(&self) -> (u64, u64) {
        (
            self.shared.io_pool.fresh_allocations(),
            self.shared.io_pool.reuses(),
        )
    }

    /// Counters of the execution backend's scratch pool, if the backend
    /// has one: `(fresh heap allocations, pool reuses)`.
    #[must_use]
    pub fn executor_pool_stats(&self) -> Option<(u64, u64)> {
        self.shared.executor.pool_stats()
    }

    /// Requests currently waiting in the batching queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Whether the adaptation controller currently has shed mode engaged
    /// (windowed p95 queue wait over the configured budget).
    #[must_use]
    pub fn is_shedding(&self) -> bool {
        self.shared.adapt.shedding()
    }

    /// Name of the served network.
    #[must_use]
    pub fn network_name(&self) -> &str {
        &self.shared.base.name
    }

    /// Name of the execution backend.
    #[must_use]
    pub fn executor_name(&self) -> &'static str {
        self.shared.executor.name()
    }

    /// Stops accepting requests, answers everything already queued, waits
    /// for background re-optimizations, then returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Stop the adaptation controller first so no re-plan or eviction
        // races the drain below.
        self.shared.adapt.request_stop();
        if let Some(controller) = self.controller.take() {
            let _ = controller.join();
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers may have spawned re-optimizations while draining; take
        // the list repeatedly until it stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.shared.background.lock().expect("background lock"));
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("network", &self.shared.base.name)
            .field("executor", &self.shared.executor.name())
            .field("max_batch", &self.shared.config.max_batch)
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ScheduleSource;
    use std::time::Duration;

    fn tiny_network() -> Network {
        use ios_ir::{Block, Conv2dParams, GraphBuilder};
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("engine_tiny", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        Network::new("engine_tiny", input, vec![Block::new(b.build(vec![cat]))])
    }

    fn quick_config() -> ServeConfig {
        ServeConfig::default()
            .with_max_batch(4)
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1))
    }

    #[test]
    fn serves_single_requests() {
        let net = tiny_network();
        let engine = ServeEngine::start(net.clone(), quick_config());
        let input = TensorData::random(net.input_shape, 5);
        let response = engine.infer(input).unwrap();
        assert_eq!(response.outputs.len(), 1);
        assert_eq!(response.outputs[0].shape, TensorShape::new(1, 8, 6, 6));
        assert!(response.total_us >= response.queue_us);
        engine.shutdown();
    }

    #[test]
    fn rejects_wrong_shapes_and_post_shutdown_submissions() {
        let net = tiny_network();
        let engine = ServeEngine::start(net.clone(), quick_config());
        let wrong = TensorData::zeros(TensorShape::new(1, 3, 6, 6));
        assert!(matches!(
            engine.submit(wrong),
            Err(ServeError::WrongInputShape { .. })
        ));
        engine.shared.queue.close();
        let ok_shape = TensorData::zeros(net.input_shape);
        assert!(matches!(
            engine.submit(ok_shape),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn coalesces_deep_queues_into_full_batches() {
        let net = tiny_network();
        let engine = ServeEngine::start(
            net.clone(),
            quick_config().with_max_wait(Duration::from_millis(50)),
        );
        let handles: Vec<_> = (0..8)
            .map(|i| {
                engine
                    .submit(TensorData::random(net.input_shape, i))
                    .unwrap()
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();
        // All eight went through batches of max_batch = 4.
        assert!(
            responses.iter().all(|r| r.batch_size == 4),
            "batch sizes: {:?}",
            responses.iter().map(|r| r.batch_size).collect::<Vec<_>>()
        );
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        assert!(metrics.mean_batch_size >= 3.9);
        engine.shutdown();
    }

    #[test]
    fn exact_schedules_hit_the_cache_and_odd_batches_fall_back() {
        let net = tiny_network();
        // Pre-warm only batch 1 and 4; disable background re-optimization so
        // the fallback stays observable.
        let config = quick_config()
            .with_prewarm_batches(vec![1, 4])
            .with_background_reoptimize(false)
            .with_max_wait(Duration::from_millis(30));
        let engine = ServeEngine::start(net.clone(), config);

        // A full batch of 4 → exact cache hit.
        let handles: Vec<_> = (0..4)
            .map(|i| {
                engine
                    .submit(TensorData::random(net.input_shape, i))
                    .unwrap()
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();
        assert!(responses
            .iter()
            .all(|r| r.schedule_source == ScheduleSource::Exact));

        // A lone pair → batch 2 has no exact schedule; the nearest cached
        // batch (1 or 4) serves it.
        let h1 = engine
            .submit(TensorData::random(net.input_shape, 10))
            .unwrap();
        let h2 = engine
            .submit(TensorData::random(net.input_shape, 11))
            .unwrap();
        let (r1, r2) = (h1.wait(), h2.wait());
        for r in [&r1, &r2] {
            if r.batch_size == 2 {
                assert!(
                    matches!(r.schedule_source, ScheduleSource::Nearest { optimized_for } if optimized_for == 1 || optimized_for == 4),
                    "batch 2 must be served by a nearest schedule, got {:?}",
                    r.schedule_source
                );
            }
        }
        let stats = engine.metrics().cache;
        assert!(stats.hits >= 1);
        assert!(stats.nearest_served >= 1);
        engine.shutdown();
    }

    #[test]
    fn background_reoptimization_fills_the_exact_entry() {
        let net = tiny_network();
        let config = quick_config()
            .with_prewarm_batches(vec![4])
            .with_background_reoptimize(true)
            .with_max_wait(Duration::from_millis(5));
        let engine = ServeEngine::start(net.clone(), config);
        // Submit a lone request: batch 1 misses, is served by the batch-4
        // schedule, and background re-optimization inserts the exact entry.
        let response = engine
            .infer(TensorData::random(net.input_shape, 1))
            .unwrap();
        assert_eq!(
            response.schedule_source,
            ScheduleSource::Nearest { optimized_for: 4 }
        );
        // The background thread inserts the exact batch-1 schedule; wait
        // for it (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.metrics().cache.background_inserts == 0 {
            assert!(
                Instant::now() < deadline,
                "background re-optimization never completed"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // The next lone request is served by its exact schedule.
        let response = engine
            .infer(TensorData::random(net.input_shape, 2))
            .unwrap();
        assert_eq!(response.schedule_source, ScheduleSource::Exact);
        engine.shutdown();
    }

    #[test]
    fn a_panicking_backend_does_not_kill_the_worker() {
        use crate::exec::{BatchContext, BatchExecutor, BatchOutcome};
        use std::sync::atomic::AtomicBool;

        /// Panics on the first batch, behaves afterwards.
        struct FaultyOnce {
            fail_next: AtomicBool,
        }
        impl BatchExecutor for FaultyOnce {
            fn name(&self) -> &'static str {
                "faulty-once"
            }
            fn execute(&self, _ctx: &BatchContext<'_>) -> BatchOutcome {
                if self.fail_next.swap(false, Ordering::SeqCst) {
                    panic!("injected backend fault");
                }
                BatchOutcome {
                    outputs: None,
                    device_time_us: 1.0,
                }
            }
        }

        let net = tiny_network();
        let engine = ServeEngine::start_with_executor(
            net.clone(),
            quick_config(),
            Box::new(FaultyOnce {
                fail_next: AtomicBool::new(true),
            }),
        );
        // The first request's batch panics: its handle observes the drop
        // (wait panics), but the worker must survive…
        let doomed = engine.submit(TensorData::zeros(net.input_shape)).unwrap();
        let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| doomed.wait()));
        assert!(waited.is_err(), "the dropped request must not hang");
        // …and answer the next request normally.
        let response = engine.infer(TensorData::zeros(net.input_shape)).unwrap();
        assert_eq!(response.batch_size, 1);
        engine.shutdown();
    }

    /// A three-block chain so a forced two-segment pipeline has a real
    /// boundary to cut.
    fn three_block_network() -> Network {
        use ios_ir::{Block, Conv2dParams, GraphBuilder};
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("engine_pipe_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("engine_pipe_b1", block0.graph.output_shapes());
        let x = b.input(0);
        let d = b.conv2d("d", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let block1 = Block::new(b.build(vec![d]));
        let mut b = GraphBuilder::with_inputs("engine_pipe_b2", block1.graph.output_shapes());
        let x = b.input(0);
        let e = b.conv2d("e", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let block2 = Block::new(b.build(vec![e]));
        Network::new("engine_pipe", input, vec![block0, block1, block2])
    }

    #[test]
    fn forced_pipeline_serves_bit_identical_responses() {
        let net = three_block_network();
        let config = quick_config()
            .with_pipeline(crate::PipelineMode::Forced(2))
            .with_max_wait(Duration::from_millis(30));
        let engine = ServeEngine::start(net.clone(), config);
        let plan = engine.pipeline_plan().expect("forced mode must plan");
        assert_eq!(plan.segments.num_segments(), 2);

        let inputs: Vec<TensorData> = (0..4)
            .map(|i| TensorData::random(net.input_shape, 60 + i))
            .collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|t| engine.submit(t.clone()).unwrap())
            .collect();
        let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();
        for (input, response) in inputs.iter().zip(&responses) {
            assert!(response.pipelined, "forced mode routes every batch");
            let solo = ios_backend::execute_network(&net, std::slice::from_ref(input));
            assert_eq!(response.outputs.len(), solo.len());
            for (lease, reference) in response.outputs.iter().zip(&solo) {
                assert_eq!(
                    lease, reference,
                    "pipelined serving must be bit-identical to solo execution"
                );
            }
        }
        let metrics = engine.metrics();
        assert!(metrics.pipelined_batches >= 1);
        assert_eq!(metrics.pipelined_batches, metrics.batches);
        engine.shutdown();
    }

    #[test]
    fn a_dead_pipeline_falls_back_to_flat_execution() {
        use crate::exec::{BatchContext, BatchExecutor, BatchOutcome};
        use ios_core::PipelinePlan;

        /// Accepts the pipeline offer but dies on every pipelined batch —
        /// the shape of a stage-worker panic surfacing through
        /// `execute_batch`; flat execution works fine.
        struct DeadPipeline;
        impl BatchExecutor for DeadPipeline {
            fn name(&self) -> &'static str {
                "dead-pipeline"
            }
            fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome {
                assert!(
                    ctx.pipeline.is_none(),
                    "simulated stage-worker death on the pipelined path"
                );
                BatchOutcome {
                    outputs: None,
                    device_time_us: 1.0,
                }
            }
            fn can_pipeline(&self) -> bool {
                true
            }
            fn prepare_pipeline(
                &self,
                _network: Arc<Network>,
                _weights: Arc<NetworkWeights>,
                _plan: &PipelinePlan,
            ) -> bool {
                true
            }
        }

        let net = three_block_network();
        let config = quick_config().with_pipeline(crate::PipelineMode::Forced(2));
        let engine = ServeEngine::start_with_executor(net.clone(), config, Box::new(DeadPipeline));
        assert!(engine.pipeline_plan().is_some());
        // The first batch hits the dead pipeline, falls back to flat
        // mid-batch (the request is salvaged, served un-pipelined) and
        // disables the pipeline for good.
        let response = engine.infer(TensorData::zeros(net.input_shape)).unwrap();
        assert!(!response.pipelined, "the salvaged batch was served flat");
        assert!(
            engine.pipeline_plan().is_none(),
            "a dead pipeline must be disabled"
        );
        // Later batches go straight to the flat path.
        let response = engine.infer(TensorData::zeros(net.input_shape)).unwrap();
        assert!(!response.pipelined);
        let metrics = engine.metrics();
        assert_eq!(metrics.pipelined_batches, 0);
        assert_eq!(metrics.completed, 2);
        engine.shutdown();
    }

    #[test]
    fn simulated_backend_reports_device_time_without_outputs() {
        let net = tiny_network();
        let engine = ServeEngine::start_simulated(net.clone(), quick_config());
        let response = engine.infer(TensorData::zeros(net.input_shape)).unwrap();
        assert!(response.outputs.is_empty());
        assert!(response.device_us > 0.0);
        assert_eq!(engine.executor_name(), "simulated-device");
        engine.shutdown();
    }
}
