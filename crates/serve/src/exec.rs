//! Pluggable batch execution backends.
//!
//! The engine is backend-agnostic: a [`BatchExecutor`] receives a fully
//! prepared batch (network instance shaped for the batch size, specialized
//! schedule, precomputed weights, stacked inputs) and returns stacked
//! outputs plus the device time consumed. Two backends ship today:
//!
//! * [`CpuReferenceExecutor`] — computes real numerics through
//!   `ios_backend`, bit-identical per sample to `execute_graph`. Its
//!   "device time" is the wall time of the CPU execution.
//! * [`SimulatedDeviceExecutor`] — skips numerics and charges the batch the
//!   latency the analytical GPU simulator assigns to the schedule at this
//!   batch size. This is the backend for throughput studies: it exposes the
//!   batching efficiency of the *modeled device* (Figure 11) rather than of
//!   the host CPU.
//!
//! Later PRs can add further backends (sharded, async, real accelerators)
//! without touching the queueing or caching layers.

use ios_backend::{
    execute_network_batched_capped, NetworkWeights, PipelinedNetworkExecutor, ScratchPool,
    TensorData,
};
use ios_core::{evaluate_network, CachingCostModel, NetworkSchedule, PipelinePlan, SimCostModel};
use ios_ir::Network;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Everything a backend needs to run one coalesced batch.
#[derive(Debug)]
pub struct BatchContext<'a> {
    /// The network shaped for this batch size.
    pub network: &'a Network,
    /// The specialized schedule serving this batch (shared so pipelined
    /// backends can carry it per in-flight sample).
    pub schedule: &'a Arc<NetworkSchedule>,
    /// Precomputed weights (batch-size independent).
    pub weights: &'a NetworkWeights,
    /// The stacked input tensors (one per graph input; batch dimension =
    /// coalesced batch size).
    pub inputs: &'a [TensorData],
    /// Set when the engine chose cross-block pipelined execution for this
    /// batch (the plan it chose); backends without a pipeline ignore it
    /// and execute flat.
    pub pipeline: Option<&'a PipelinePlan>,
}

/// Result of executing one batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Stacked output tensors, or `None` for backends that do not compute
    /// numerics.
    pub outputs: Option<Vec<TensorData>>,
    /// Device time consumed by the batch, in µs.
    pub device_time_us: f64,
}

/// A strategy for executing prepared batches.
pub trait BatchExecutor: Send + Sync + 'static {
    /// Short name for logs and metrics.
    fn name(&self) -> &'static str;

    /// Executes one batch.
    fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome;

    /// Whether this backend can execute cross-block pipelines at all — the
    /// cheap capability probe the engine consults *before* paying for
    /// per-block cost measurement and planning. Defaults to `false`.
    fn can_pipeline(&self) -> bool {
        false
    }

    /// Offers the backend a pipeline plan for the served network (batch-1
    /// instance + shared weights). Backends that can execute pipelined
    /// spin up their stage workers here and honour
    /// [`BatchContext::pipeline`] afterwards; the default ignores the
    /// offer, and the engine then falls back to flat execution.
    fn prepare_pipeline(
        &self,
        network: Arc<Network>,
        weights: Arc<NetworkWeights>,
        plan: &PipelinePlan,
    ) -> bool {
        let _ = (network, weights, plan);
        false
    }

    /// Hands the stacked output tensors of a finished batch back to the
    /// backend once the engine has copied them into response leases.
    /// Backends with a scratch pool recycle the buffers so the next batch
    /// allocates nothing; the default drops them.
    fn recycle_outputs(&self, outputs: Vec<TensorData>) {
        drop(outputs);
    }

    /// Scratch-pool counters `(fresh heap allocations, pool reuses)` for
    /// backends that draw batch storage from a pool; `None` otherwise.
    fn pool_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Executes batches numerically on the CPU execution engine.
///
/// Batches fan out across worker threads, one sample per task
/// ([`execute_network_batched`]), with all scratch and intermediate
/// tensors drawn from a long-lived [`ScratchPool`] — after the first batch
/// of a given shape profile, the op loop performs no heap allocation.
/// Per-sample results are bit-identical to solo `execute_network` runs.
///
/// When the engine offers a pipeline plan ([`BatchExecutor::prepare_pipeline`])
/// the executor additionally keeps a [`PipelinedNetworkExecutor`] — long
/// lived stage workers sharing the same scratch pool — and routes batches
/// there whenever [`BatchContext::pipeline`] is set, still bit-identical
/// per sample.
#[derive(Debug)]
pub struct CpuReferenceExecutor {
    pool: Arc<ScratchPool>,
    /// Cap on the per-batch sample-worker fan-out; engines running several
    /// dispatch workers split the cores between them so concurrent batches
    /// do not oversubscribe the host.
    max_workers: usize,
    /// The batch-1 network instance, derived once per served network so
    /// repeat batches skip the metadata rescale.
    per_sample: Mutex<Option<(String, Arc<Network>)>>,
    /// The cross-block pipeline, once the engine prepared one. Shared with
    /// in-flight batches so a re-prepare cannot tear workers down under a
    /// batch mid-execution.
    pipeline: Mutex<Option<Arc<PipelinedNetworkExecutor>>>,
}

impl Default for CpuReferenceExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuReferenceExecutor {
    /// A new executor with an empty scratch pool and an uncapped per-batch
    /// worker fan-out (bounded by the host's parallelism and batch size).
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_workers(usize::MAX)
    }

    /// A new executor whose per-batch fan-out is capped at `max_workers`
    /// threads (minimum 1). Use `available cores / dispatch workers` when
    /// several engine workers execute batches concurrently.
    #[must_use]
    pub fn with_max_workers(max_workers: usize) -> Self {
        CpuReferenceExecutor {
            pool: Arc::new(ScratchPool::new()),
            max_workers: max_workers.max(1),
            per_sample: Mutex::new(None),
            pipeline: Mutex::new(None),
        }
    }

    /// Scratch-pool counters: `(fresh heap allocations, pool reuses)`.
    #[must_use]
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.fresh_allocations(), self.pool.reuses())
    }

    fn per_sample_instance(&self, network: &Network) -> Arc<Network> {
        let mut cached = self.per_sample.lock().expect("per-sample network lock");
        match cached.as_ref() {
            Some((name, instance))
                if *name == network.name && same_structure(instance, network) =>
            {
                Arc::clone(instance)
            }
            _ => {
                let instance = Arc::new(if network.input_shape.batch == 1 {
                    network.clone()
                } else {
                    network.with_batch_size(1)
                });
                *cached = Some((network.name.clone(), Arc::clone(&instance)));
                instance
            }
        }
    }
}

/// Whether a cached batch-1 instance still matches the incoming network's
/// structure — guards the name-keyed cache against a *different* network
/// reusing the same name (e.g. one executor shared across engines): block
/// count, per-block operator kinds *and wiring* (operator inputs, declared
/// graph outputs) and per-item input shape must all agree.
fn same_structure(cached: &Network, incoming: &Network) -> bool {
    let same_item_shape = |a: ios_ir::TensorShape, b: ios_ir::TensorShape| {
        (a.channels, a.height, a.width) == (b.channels, b.height, b.width)
    };
    same_item_shape(cached.input_shape, incoming.input_shape)
        && cached.blocks.len() == incoming.blocks.len()
        && cached.blocks.iter().zip(&incoming.blocks).all(|(c, i)| {
            c.graph.len() == i.graph.len()
                && c.graph.outputs() == i.graph.outputs()
                && c.graph
                    .ops()
                    .iter()
                    .zip(i.graph.ops())
                    .all(|(co, io)| co.kind == io.kind && co.inputs == io.inputs)
        })
}

impl BatchExecutor for CpuReferenceExecutor {
    fn name(&self) -> &'static str {
        "cpu-reference"
    }

    fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome {
        if ctx.pipeline.is_some() {
            let pipeline = self.pipeline.lock().expect("pipeline lock").clone();
            if let Some(pipeline) = pipeline {
                let start = Instant::now();
                let outputs = pipeline.execute_batch(Some(ctx.schedule), ctx.inputs);
                // Wall time of this batch's trip through the *shared*
                // pipeline: when concurrent batches interleave, each
                // batch's elapsed time includes the others' samples — the
                // right per-request latency share, but an overcount of
                // device utilization (the flat path under concurrent
                // dispatch workers contending for cores has the same
                // character).
                return BatchOutcome {
                    outputs: Some(outputs),
                    device_time_us: start.elapsed().as_secs_f64() * 1e6,
                };
            }
        }
        let per_sample = self.per_sample_instance(ctx.network);
        let start = Instant::now();
        let outputs = execute_network_batched_capped(
            &per_sample,
            Some(ctx.schedule),
            ctx.weights,
            ctx.inputs,
            &self.pool,
            self.max_workers,
        );
        BatchOutcome {
            outputs: Some(outputs),
            device_time_us: start.elapsed().as_secs_f64() * 1e6,
        }
    }

    fn can_pipeline(&self) -> bool {
        true
    }

    fn prepare_pipeline(
        &self,
        network: Arc<Network>,
        weights: Arc<NetworkWeights>,
        plan: &PipelinePlan,
    ) -> bool {
        let executor = PipelinedNetworkExecutor::new(
            network,
            weights,
            plan.segments.clone(),
            Arc::clone(&self.pool),
        );
        *self.pipeline.lock().expect("pipeline lock") = Some(Arc::new(executor));
        true
    }

    fn recycle_outputs(&self, outputs: Vec<TensorData>) {
        for tensor in outputs {
            self.pool.recycle_tensor(tensor);
        }
    }

    fn pool_stats(&self) -> Option<(u64, u64)> {
        Some(self.pool_stats())
    }
}

/// Charges batches the latency of the schedule on the analytical GPU
/// simulator, without computing numerics.
#[derive(Debug)]
pub struct SimulatedDeviceExecutor {
    cost: Arc<CachingCostModel<SimCostModel>>,
}

impl SimulatedDeviceExecutor {
    /// Uses (and shares) the given cost model for stage measurements.
    #[must_use]
    pub fn new(cost: Arc<CachingCostModel<SimCostModel>>) -> Self {
        SimulatedDeviceExecutor { cost }
    }
}

impl BatchExecutor for SimulatedDeviceExecutor {
    fn name(&self) -> &'static str {
        "simulated-device"
    }

    fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome {
        // Re-measure the schedule's stages at *this* batch size; the caching
        // cost model makes repeat batches of the same size effectively free.
        let device_time_us = evaluate_network(ctx.network, ctx.schedule, &self.cost);
        BatchOutcome {
            outputs: None,
            device_time_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_backend::stack_batch;
    use ios_core::{optimize_network, SchedulerConfig};
    use ios_sim::{DeviceKind, Simulator};

    fn setup(batch: usize) -> (Network, Arc<NetworkSchedule>, NetworkWeights) {
        // SqueezeNet is the network whose batch-1 kernels under-utilize the
        // simulated V100 — the effect batched serving exists to exploit.
        let net = ios_models::squeezenet(1).with_batch_size(batch);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let schedule = optimize_network(&net, &cost, &SchedulerConfig::paper_default()).schedule;
        let weights = NetworkWeights::precompute(&net);
        (net, Arc::new(schedule), weights)
    }

    #[test]
    fn simulated_executor_charges_sublinear_batch_time() {
        let cost = Arc::new(CachingCostModel::new(SimCostModel::new(Simulator::new(
            DeviceKind::TeslaV100,
        ))));
        let executor = SimulatedDeviceExecutor::new(Arc::clone(&cost));

        let (net1, schedule1, weights1) = setup(1);
        let input1 = TensorData::zeros(net1.input_shape);
        let outcome1 = executor.execute(&BatchContext {
            network: &net1,
            schedule: &schedule1,
            weights: &weights1,
            inputs: &[input1],
            pipeline: None,
        });
        assert!(outcome1.outputs.is_none());
        assert!(outcome1.device_time_us > 0.0);

        let batch = 32;
        let (net32, schedule32, weights32) = setup(batch);
        let sample = TensorData::zeros(net1.input_shape);
        let stacked = stack_batch(&vec![&sample; batch]);
        let outcome32 = executor.execute(&BatchContext {
            network: &net32,
            schedule: &schedule32,
            weights: &weights32,
            inputs: &[stacked],
            pipeline: None,
        });
        // The under-utilization effect of the simulated GPU: a batch of 32
        // costs less than half of 32 batches of one (≈ 2.4× throughput).
        assert!(
            outcome32.device_time_us < 0.5 * batch as f64 * outcome1.device_time_us,
            "batch-32 device time {} vs 32 × batch-1 {}",
            outcome32.device_time_us,
            batch as f64 * outcome1.device_time_us
        );
    }
}
