//! Pluggable batch execution backends.
//!
//! The engine is backend-agnostic: a [`BatchExecutor`] receives a fully
//! prepared batch (network instance shaped for the batch size, specialized
//! schedule, precomputed weights, stacked inputs) and returns stacked
//! outputs plus the device time consumed. Two backends ship today:
//!
//! * [`CpuReferenceExecutor`] — computes real numerics through
//!   `ios_backend`, bit-identical per sample to `execute_graph`. Its
//!   "device time" is the wall time of the CPU execution.
//! * [`SimulatedDeviceExecutor`] — skips numerics and charges the batch the
//!   latency the analytical GPU simulator assigns to the schedule at this
//!   batch size. This is the backend for throughput studies: it exposes the
//!   batching efficiency of the *modeled device* (Figure 11) rather than of
//!   the host CPU.
//!
//! Later PRs can add further backends (sharded, async, real accelerators)
//! without touching the queueing or caching layers.

use ios_backend::{execute_network_scheduled, NetworkWeights, TensorData};
use ios_core::{evaluate_network, CachingCostModel, NetworkSchedule, SimCostModel};
use ios_ir::Network;
use std::sync::Arc;
use std::time::Instant;

/// Everything a backend needs to run one coalesced batch.
#[derive(Debug)]
pub struct BatchContext<'a> {
    /// The network shaped for this batch size.
    pub network: &'a Network,
    /// The specialized schedule serving this batch.
    pub schedule: &'a NetworkSchedule,
    /// Precomputed weights (batch-size independent).
    pub weights: &'a NetworkWeights,
    /// The stacked input tensors (one per graph input; batch dimension =
    /// coalesced batch size).
    pub inputs: &'a [TensorData],
}

/// Result of executing one batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Stacked output tensors, or `None` for backends that do not compute
    /// numerics.
    pub outputs: Option<Vec<TensorData>>,
    /// Device time consumed by the batch, in µs.
    pub device_time_us: f64,
}

/// A strategy for executing prepared batches.
pub trait BatchExecutor: Send + Sync + 'static {
    /// Short name for logs and metrics.
    fn name(&self) -> &'static str;

    /// Executes one batch.
    fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome;
}

/// Executes batches numerically on the CPU reference backend.
#[derive(Debug, Default, Clone, Copy)]
pub struct CpuReferenceExecutor;

impl BatchExecutor for CpuReferenceExecutor {
    fn name(&self) -> &'static str {
        "cpu-reference"
    }

    fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome {
        let start = Instant::now();
        let outputs = execute_network_scheduled(ctx.network, ctx.schedule, ctx.weights, ctx.inputs);
        BatchOutcome {
            outputs: Some(outputs),
            device_time_us: start.elapsed().as_secs_f64() * 1e6,
        }
    }
}

/// Charges batches the latency of the schedule on the analytical GPU
/// simulator, without computing numerics.
#[derive(Debug)]
pub struct SimulatedDeviceExecutor {
    cost: Arc<CachingCostModel<SimCostModel>>,
}

impl SimulatedDeviceExecutor {
    /// Uses (and shares) the given cost model for stage measurements.
    #[must_use]
    pub fn new(cost: Arc<CachingCostModel<SimCostModel>>) -> Self {
        SimulatedDeviceExecutor { cost }
    }
}

impl BatchExecutor for SimulatedDeviceExecutor {
    fn name(&self) -> &'static str {
        "simulated-device"
    }

    fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome {
        // Re-measure the schedule's stages at *this* batch size; the caching
        // cost model makes repeat batches of the same size effectively free.
        let device_time_us = evaluate_network(ctx.network, ctx.schedule, &self.cost);
        BatchOutcome {
            outputs: None,
            device_time_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_backend::stack_batch;
    use ios_core::{optimize_network, SchedulerConfig};
    use ios_sim::{DeviceKind, Simulator};

    fn setup(batch: usize) -> (Network, NetworkSchedule, NetworkWeights) {
        // SqueezeNet is the network whose batch-1 kernels under-utilize the
        // simulated V100 — the effect batched serving exists to exploit.
        let net = ios_models::squeezenet(1).with_batch_size(batch);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let schedule = optimize_network(&net, &cost, &SchedulerConfig::paper_default()).schedule;
        let weights = NetworkWeights::precompute(&net);
        (net, schedule, weights)
    }

    #[test]
    fn simulated_executor_charges_sublinear_batch_time() {
        let cost = Arc::new(CachingCostModel::new(SimCostModel::new(Simulator::new(
            DeviceKind::TeslaV100,
        ))));
        let executor = SimulatedDeviceExecutor::new(Arc::clone(&cost));

        let (net1, schedule1, weights1) = setup(1);
        let input1 = TensorData::zeros(net1.input_shape);
        let outcome1 = executor.execute(&BatchContext {
            network: &net1,
            schedule: &schedule1,
            weights: &weights1,
            inputs: &[input1],
        });
        assert!(outcome1.outputs.is_none());
        assert!(outcome1.device_time_us > 0.0);

        let batch = 32;
        let (net32, schedule32, weights32) = setup(batch);
        let sample = TensorData::zeros(net1.input_shape);
        let stacked = stack_batch(&vec![&sample; batch]);
        let outcome32 = executor.execute(&BatchContext {
            network: &net32,
            schedule: &schedule32,
            weights: &weights32,
            inputs: &[stacked],
        });
        // The under-utilization effect of the simulated GPU: a batch of 32
        // costs less than half of 32 batches of one (≈ 2.4× throughput).
        assert!(
            outcome32.device_time_us < 0.5 * batch as f64 * outcome1.device_time_us,
            "batch-32 device time {} vs 32 × batch-1 {}",
            outcome32.device_time_us,
            batch as f64 * outcome1.device_time_us
        );
    }
}
