//! # ios-serve — online batched inference serving on the IOS scheduler
//!
//! The rest of the workspace reproduces IOS (Ding et al., MLSys 2021) as an
//! *offline* pipeline: build a network, run the ending-based dynamic program
//! once, report a latency. This crate turns that scheduler into an *online*
//! engine:
//!
//! * **Dynamic batching** ([`batcher`]) — single-sample requests coalesce
//!   into batches up to `max_batch`, with a `max_wait` bound on the oldest
//!   request so tail latency stays controlled under trickle load.
//! * **Specialized-schedule cache** ([`cache`]) — Table 3 of the paper shows
//!   a schedule is only optimal for the `(batch size, device)` it was
//!   profiled for. The cache keys schedules by exactly that, optimizes
//!   lazily on first miss, serves exact misses from the *nearest* cached
//!   batch size (stage structure is batch-invariant), and re-optimizes the
//!   exact batch in the background.
//! * **Pluggable execution** ([`exec`]) — the CPU reference backend returns
//!   real numerics (bit-identical per sample to
//!   [`ios_backend::execute_graph`]); the simulated-device backend charges
//!   batches the analytical GPU latency for throughput studies.
//! * **Profile-guided optimization** ([`config::CostModelKind`]) — the
//!   engine's scheduler (and its background re-optimizer) can measure
//!   candidate stages on the CPU execution backend itself
//!   (`CostModelKind::CpuProfiled`) instead of simulating them, closing
//!   the paper's optimize → profile → execute loop at serving time; a
//!   pipelining engine profiles **under concurrent load**, not on an idle
//!   machine.
//! * **Cross-block pipelined execution** ([`config::PipelineMode`]) — the
//!   engine measures per-block costs, plans segment boundaries
//!   (`ios_core::plan_pipeline`) and routes each batch to the backend's
//!   cross-block pipeline whenever the plan predicts it out-serves flat
//!   batched execution at that batch size, so block `k` of sample `i + 1`
//!   overlaps block `k + 1` of sample `i` — bit-identical per sample
//!   either way.
//! * **Metrics** ([`metrics`]) — p50/p95/p99 latency, wall and device
//!   throughput, queue depth, batch shape and cache hit rates.
//! * **Runtime adaptation** ([`config::AdaptConfig`]) — an opt-in
//!   controller thread windows the queue-wait and batch-size histograms
//!   each tick and (1) sheds load when the windowed p95 queue wait
//!   exceeds a budget, (2) re-plans pipeline boundaries and schedule
//!   specialization when the observed batch-size mix shifts, and
//!   (3) evicts cached schedules whose measured device time regrets the
//!   optimizer's prediction. Requests can carry deadlines
//!   ([`ServeEngine::submit_with_deadline`]): the batcher flushes early to
//!   make them, and expired requests complete with
//!   [`request::Rejected::DeadlineExceeded`] instead of stale results.
//! * **Multi-tenant admission** ([`request::TenantId`],
//!   [`config::TenantsConfig`]) — requests carry a tenant
//!   ([`ServeEngine::submit_for_tenant`]; anonymous traffic maps to the
//!   default tenant), each tenant gets its own FIFO lane drained by
//!   virtual-time weighted-fair queuing (a burst cannot starve another
//!   tenant's trickle), token-bucket rate limits are enforced inside the
//!   queue lock (exact under racing submitters), shed mode applies the
//!   capacity per tenant as a weighted share (the over-quota tenant is
//!   shed first), and per-tenant completed/shed/queue-wait metrics export
//!   as `ios_tenant_*{tenant="…"}` labelled Prometheus series.
//!
//! # Quickstart
//!
//! ```
//! use ios_serve::{ServeConfig, ServeEngine};
//! use ios_backend::TensorData;
//! # use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};
//! # let input = TensorShape::new(1, 4, 6, 6);
//! # let mut b = GraphBuilder::new("doc_tiny", input);
//! # let x = b.input(0);
//! # let a = b.conv2d("a", x, Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1)));
//! # let c = b.conv2d("c", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
//! # let cat = b.concat("cat", &[a, c]);
//! # let network = Network::new("doc_tiny", input, vec![Block::new(b.build(vec![cat]))]);
//!
//! // `network` is any single-input ios_ir::Network, e.g. ios_models::squeezenet(1).
//! let engine = ServeEngine::start(network.clone(), ServeConfig::default().with_max_batch(4));
//!
//! let handles: Vec<_> = (0..4)
//!     .map(|i| engine.submit(TensorData::random(network.input_shape, i)).unwrap())
//!     .collect();
//! for handle in handles {
//!     let response = handle.wait();
//!     assert!(!response.outputs.is_empty());
//! }
//! assert_eq!(engine.metrics().completed, 4);
//! engine.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adapt;
mod batcher;
pub mod cache;
pub mod config;
pub mod engine;
pub mod exec;
pub mod metrics;
pub mod request;

pub use cache::{CacheStats, ScheduleCache, ScheduleKey};
pub use config::{
    AdaptConfig, CostModelKind, PipelineMode, ServeConfig, TenantConfig, TenantsConfig,
};
pub use engine::ServeEngine;
pub use exec::{
    BatchContext, BatchExecutor, BatchOutcome, CpuReferenceExecutor, SimulatedDeviceExecutor,
};
pub use metrics::{MetricsSnapshot, TenantMetricsSnapshot};
pub use request::{
    InferenceResponse, Rejected, RequestId, ResponseHandle, ResponseLease, ScheduleSource,
    ServeError, TenantId,
};
