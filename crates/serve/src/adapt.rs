//! The runtime adaptation loop: a controller thread that closes the
//! paper's Table-3 specialization insight *at runtime*.
//!
//! The startup path (PRs 4–5) optimizes schedules and plans the pipeline
//! against the traffic it assumes; this module makes the engine adapt to
//! the traffic it actually observes, using the `ios-telemetry` histograms
//! as its only sensor. Each controller tick takes a windowed delta
//! ([`ios_telemetry::HistogramSnapshot::window_delta`]) of the queue-wait
//! and batch-size histograms — exact under racing writers — and acts on
//! three channels:
//!
//! 1. **Load shedding** — when the windowed p95 queue wait exceeds the
//!    configured budget, shed mode engages: admission tightens to one
//!    batch's worth of queued requests and everything beyond is rejected
//!    with [`crate::Rejected::Shed`]. Hysteresis (disengage at half the
//!    budget) keeps the mode from flapping at the boundary.
//! 2. **Re-planning** — when the dominant observed batch size (the
//!    window's mode) differs from what the serving plan was built for,
//!    the controller re-plans: it makes sure the dominant batch size has
//!    an exact specialized schedule cached, and (for pipelining engines)
//!    re-runs segment planning and swaps the plan in via the PR 5
//!    mid-flight-swap-safe `prepare_pipeline` path.
//! 3. **Regret eviction** — per exact-schedule batch size, observed mean
//!    device time is compared against the optimizer's prediction. The
//!    first window calibrates the units (simulated µs vs wall µs); after
//!    that, a window whose observed mean exceeds `regret_threshold ×` the
//!    calibrated prediction evicts the cache entry, forcing a fresh
//!    optimization on next use.
//!
//! Every tick runs inside `catch_unwind` (the PR 5 panic-isolation
//! idiom): a panicking re-plan leaves the engine serving on its old plan
//! and the controller alive for the next tick.

use crate::engine::Shared;
use ios_telemetry::HistogramSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Per-batch-size accumulator of observed vs predicted device time,
/// drained by the controller each tick.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Observation {
    /// Batches observed since the last drain.
    pub count: u64,
    /// Sum of measured per-batch device time, µs.
    pub device_sum_us: f64,
    /// Sum of the serving schedule's predicted latency, µs (one term per
    /// batch; the prediction can change mid-window if the entry refreshes).
    pub predicted_sum_us: f64,
}

/// Live adaptation state shared between workers, submitters and the
/// controller thread.
#[derive(Debug, Default)]
pub(crate) struct AdaptState {
    /// Whether shed mode is engaged (set only by the controller; read by
    /// every submit).
    shed_mode: AtomicBool,
    /// Consecutive controller ticks whose queue-wait window stayed below
    /// `min_window_batches` while shed mode was engaged — the sensor for
    /// the trickle-traffic disengage path.
    stale_ticks: AtomicU64,
    /// Batch size the current pipeline plan / schedule focus was chosen
    /// for; `None` until the first window-driven re-plan.
    planned_for: Mutex<Option<usize>>,
    /// Regret sensor: per-batch-size observations since the last tick.
    observations: Mutex<HashMap<usize, Observation>>,
    /// Per-batch-size units calibration: first-window observed/predicted
    /// ratio, bridging simulated-vs-wall time scales.
    calibration: Mutex<HashMap<usize, f64>>,
    /// Stop signal for the controller thread.
    stop: Mutex<bool>,
    stop_signal: Condvar,
}

impl AdaptState {
    pub fn new() -> Self {
        AdaptState::default()
    }

    /// Whether shed mode is currently engaged.
    pub fn shedding(&self) -> bool {
        self.shed_mode.load(Ordering::Relaxed)
    }

    /// Records one exact-schedule batch execution for the regret sensor.
    pub fn observe(&self, batch: usize, device_time_us: f64, predicted_us: f64) {
        let mut observations = self.observations.lock().expect("observations lock");
        let entry = observations.entry(batch).or_default();
        entry.count += 1;
        entry.device_sum_us += device_time_us;
        entry.predicted_sum_us += predicted_us;
    }

    /// Asks the controller thread to exit at its next wakeup.
    pub fn request_stop(&self) {
        *self.stop.lock().expect("stop lock") = true;
        self.stop_signal.notify_all();
    }
}

/// The sliding window the controller deltas against: last tick's
/// snapshots of its two sensor histograms.
struct Window {
    queue_wait: HistogramSnapshot,
    batch_size: HistogramSnapshot,
}

/// The adaptation controller: ticks until [`AdaptState::request_stop`],
/// isolating each tick behind `catch_unwind` so a panicking re-plan (e.g.
/// a faulty backend rejecting the swap violently) leaves the engine
/// serving on its old plan and the controller alive.
pub(crate) fn controller_loop(shared: &Arc<Shared>) {
    let mut window = Window {
        queue_wait: shared.metrics.queue_wait_histogram().snapshot(),
        batch_size: shared.metrics.batch_size_histogram().snapshot(),
    };
    loop {
        {
            let mut stopped = shared.adapt.stop.lock().expect("stop lock");
            while !*stopped {
                let (guard, timeout) = shared
                    .adapt
                    .stop_signal
                    .wait_timeout(stopped, shared.config.adapt.tick)
                    .expect("stop lock");
                stopped = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stopped {
                return;
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.adaptation_tick(&mut window);
        }));
        if let Err(panic) = result {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".to_string());
            eprintln!("ios-serve: adaptation tick panicked (old plan keeps serving): {message}");
        }
    }
}

impl Shared {
    /// One controller tick: window the sensors, then run the shed, re-plan
    /// and regret policies on the windowed evidence.
    fn adaptation_tick(self: &Arc<Self>, window: &mut Window) {
        let queue_wait_now = self.metrics.queue_wait_histogram().snapshot();
        let batch_size_now = self.metrics.batch_size_histogram().snapshot();
        let wait_window = queue_wait_now.window_delta(&window.queue_wait);
        let size_window = batch_size_now.window_delta(&window.batch_size);
        window.queue_wait = queue_wait_now;
        window.batch_size = batch_size_now;

        self.update_shed_mode(&wait_window);
        self.regret_sweep();
        self.replan_on_mix_shift(&size_window);
    }

    /// Shed policy: engage when the windowed p95 queue wait exceeds the
    /// budget, disengage when it falls below half of it (hysteresis), when
    /// the system has drained idle (no samples, empty queue), or when
    /// [`crate::AdaptConfig::shed_stale_ticks`] consecutive ticks pass
    /// without a full window's worth of samples. Without the idle clause a
    /// shed engine that scared all traffic away would never see the
    /// samples needed to disengage; without the stale-tick bound a
    /// post-overload *trickle* — enough traffic to keep the queue
    /// occasionally non-empty, never enough to fill a window — would keep
    /// shed mode latched indefinitely, rejecting load the engine could
    /// easily serve.
    fn update_shed_mode(&self, wait_window: &HistogramSnapshot) {
        let Some(budget) = self.config.adapt.shed_queue_wait_budget else {
            return;
        };
        let budget_ns = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
        match wait_window.percentile(95.0) {
            Some(p95_ns) if wait_window.count >= self.config.adapt.min_window_batches => {
                self.adapt.stale_ticks.store(0, Ordering::Relaxed);
                let was = self.adapt.shed_mode.load(Ordering::Relaxed);
                let now = if p95_ns > budget_ns {
                    true
                } else if p95_ns.saturating_mul(2) < budget_ns {
                    false
                } else {
                    was
                };
                if now != was {
                    self.adapt.shed_mode.store(now, Ordering::Relaxed);
                    ios_telemetry::tracer().instant("adapt.shed_mode", "adapt", u64::from(now));
                }
            }
            _ => {
                if !self.adapt.shed_mode.load(Ordering::Relaxed) {
                    self.adapt.stale_ticks.store(0, Ordering::Relaxed);
                    return;
                }
                let drained_idle = self.queue.depth() == 0;
                let stale = self.adapt.stale_ticks.fetch_add(1, Ordering::Relaxed) + 1
                    >= self.config.adapt.shed_stale_ticks.max(1);
                if (drained_idle || stale) && self.adapt.shed_mode.swap(false, Ordering::Relaxed) {
                    self.adapt.stale_ticks.store(0, Ordering::Relaxed);
                    ios_telemetry::tracer().instant("adapt.shed_mode", "adapt", 0);
                }
            }
        }
    }

    /// Regret policy: drain the per-batch-size observations that have a
    /// full window; the first window per batch size calibrates units, and
    /// later windows evict the cached schedule when measured reality
    /// regrets the (calibrated) prediction past the threshold.
    fn regret_sweep(&self) {
        let min = self.config.adapt.min_window_batches;
        let ready: Vec<(usize, Observation)> = {
            let mut observations = self.adapt.observations.lock().expect("observations lock");
            let keys: Vec<usize> = observations
                .iter()
                .filter(|(_, o)| o.count >= min)
                .map(|(&b, _)| b)
                .collect();
            keys.into_iter()
                .filter_map(|b| observations.remove(&b).map(|o| (b, o)))
                .collect()
        };
        for (batch, observation) in ready {
            let observed_mean = observation.device_sum_us / observation.count as f64;
            let predicted_mean = observation.predicted_sum_us / observation.count as f64;
            if !(predicted_mean > 0.0 && observed_mean.is_finite()) {
                continue;
            }
            let mut calibration = self.adapt.calibration.lock().expect("calibration lock");
            match calibration.get(&batch) {
                None => {
                    // First full window: learn the units bridge between
                    // the optimizer's time scale (possibly simulated) and
                    // the measured one.
                    calibration.insert(batch, observed_mean / predicted_mean);
                }
                Some(&scale) => {
                    let expected = predicted_mean * scale;
                    if expected > 0.0
                        && observed_mean > self.config.adapt.regret_threshold * expected
                        && self.cache.evict(&self.key(batch))
                    {
                        ios_telemetry::tracer().instant("adapt.evict", "adapt", batch as u64);
                        // Re-calibrate from scratch once a fresh schedule
                        // lands.
                        calibration.remove(&batch);
                    }
                }
            }
        }
    }

    /// Re-plan policy: when a full window's dominant batch size differs
    /// from what the engine last planned for, re-specialize — make sure
    /// the dominant size has an exact cached schedule, and re-run pipeline
    /// segment planning against current measurements, swapping the new
    /// plan in mid-flight.
    fn replan_on_mix_shift(self: &Arc<Self>, size_window: &HistogramSnapshot) {
        if size_window.count < self.config.adapt.min_window_batches {
            return;
        }
        let Some(dominant) = size_window.mode() else {
            return;
        };
        // Histogram values are exact only below 64; past that, `mode()`
        // returns a log-bucket representative that may be a batch size
        // that was never dispatched (a window of batch-96 dispatches
        // reports 97 with `max_batch = 96`). Snap to the nearest
        // dispatchable size — at most `max_batch`, at least 1 — so the
        // controller never optimizes and caches a schedule for a phantom
        // batch size, churning `planned_for` against reality.
        let dominant = usize::try_from(dominant)
            .unwrap_or(self.config.max_batch)
            .clamp(1, self.config.max_batch);
        if *self.adapt.planned_for.lock().expect("planned-for lock") == Some(dominant) {
            return;
        }
        let tracer = ios_telemetry::tracer();
        let mut span = tracer.span("adapt.replan", "adapt");
        span.set_arg(dominant as u64);
        self.metrics.record_replan();
        // The dominant batch size deserves its exact specialized schedule:
        // optimize it now (off the serving path — this is the controller
        // thread) if the cache doesn't hold one.
        let key = self.key(dominant);
        if self.cache.peek(&key).is_none() {
            let schedule = self.optimize(dominant);
            self.cache.insert_background(key, schedule);
        }
        // Re-plan the pipeline for the observed mix. A plan that no longer
        // beats the flat path at the dominant batch size is retired rather
        // than force-installed.
        if let Some(plan) = self.build_pipeline_plan() {
            let worth_running = matches!(self.config.pipeline, crate::PipelineMode::Forced(_))
                || plan.prefers_pipeline_vs(dominant, self.flat_workers);
            if worth_running {
                self.install_pipeline_plan(plan);
            } else {
                *self.pipeline.lock().expect("pipeline plan lock") = None;
            }
        }
        // Only remember the shift once the whole re-plan committed: a
        // panic above leaves `planned_for` unchanged, so the next tick
        // retries (and the chaos suite can observe the old plan serving).
        *self.adapt.planned_for.lock().expect("planned-for lock") = Some(dominant);
    }
}
