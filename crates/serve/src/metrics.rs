//! Serving metrics: latency percentiles, throughput, queue depth, batch
//! shape and schedule-cache behaviour.

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Live counters updated by the engine; snapshot with
/// [`ServeMetrics::snapshot`].
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    started_at: Instant,
    completed: AtomicU64,
    batches: AtomicU64,
    pipelined_batches: AtomicU64,
    /// Total device time across batches, in nanoseconds (µs lose precision).
    device_time_ns: AtomicU64,
    queue_depth: AtomicUsize,
    /// Completed-request total latencies in µs. Unbounded, which is fine
    /// for benches and tests; a long-lived deployment would reservoir-sample.
    latencies_us: Mutex<Vec<f64>>,
}

impl ServeMetrics {
    pub fn new() -> Self {
        ServeMetrics {
            started_at: Instant::now(),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            pipelined_batches: AtomicU64::new(0),
            device_time_ns: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            latencies_us: Mutex::new(Vec::new()),
        }
    }

    /// Records one dispatched batch and how it was executed (`pipelined`
    /// = through the cross-block pipeline, else flat batched).
    pub fn record_batch(&self, batch_size: usize, device_time_us: f64, pipelined: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if pipelined {
            self.pipelined_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.completed
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        let ns = (device_time_us * 1e3).max(0.0);
        self.device_time_ns.fetch_add(ns as u64, Ordering::Relaxed);
    }

    /// Records one completed request's total latency.
    pub fn record_latency(&self, total_us: f64) {
        self.latencies_us
            .lock()
            .expect("metrics lock")
            .push(total_us);
    }

    /// Publishes the current queue depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Snapshots every counter.
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let latencies = self.latencies_us.lock().expect("metrics lock").clone();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let device_time_us = self.device_time_ns.load(Ordering::Relaxed) as f64 / 1e3;
        let elapsed = self.started_at.elapsed().as_secs_f64();
        MetricsSnapshot {
            completed,
            batches,
            pipelined_batches: self.pipelined_batches.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            p50_latency_us: percentile(&latencies, 50.0),
            p95_latency_us: percentile(&latencies, 95.0),
            p99_latency_us: percentile(&latencies, 99.0),
            max_latency_us: latencies.iter().copied().fold(0.0, f64::max),
            wall_throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            device_time_us,
            device_throughput_rps: if device_time_us > 0.0 {
                completed as f64 / (device_time_us / 1e6)
            } else {
                0.0
            },
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            cache,
        }
    }
}

/// A point-in-time view of the serving metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests answered so far.
    pub completed: u64,
    /// Batches dispatched so far.
    pub batches: u64,
    /// Batches that executed through the cross-block pipeline (the rest
    /// ran flat batched execution).
    pub pipelined_batches: u64,
    /// Mean coalesced batch size (`completed / batches`).
    pub mean_batch_size: f64,
    /// Median request latency (submission → response), µs wall clock.
    pub p50_latency_us: f64,
    /// 95th percentile request latency, µs wall clock.
    pub p95_latency_us: f64,
    /// 99th percentile request latency, µs wall clock.
    pub p99_latency_us: f64,
    /// Worst request latency, µs wall clock.
    pub max_latency_us: f64,
    /// Requests per second of wall clock since the engine started.
    pub wall_throughput_rps: f64,
    /// Total (simulated) device time consumed by all batches, µs.
    pub device_time_us: f64,
    /// Requests per second of *device* time — the hardware-efficiency
    /// number batching improves (cf. Figure 11 of the paper).
    pub device_throughput_rps: f64,
    /// Requests queued at snapshot time.
    pub queue_depth: usize,
    /// Schedule-cache behaviour.
    pub cache: CacheStats,
}

/// Nearest-rank percentile of `values` (`p` in 0..=100); 0 when empty.
fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&values, 50.0), 50.0);
        assert_eq!(percentile(&values, 95.0), 95.0);
        assert_eq!(percentile(&values, 99.0), 99.0);
        assert_eq!(percentile(&values, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let metrics = ServeMetrics::new();
        metrics.record_batch(4, 200.0, true);
        metrics.record_batch(2, 100.0, false);
        for latency in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0] {
            metrics.record_latency(latency);
        }
        metrics.set_queue_depth(3);
        let snap = metrics.snapshot(CacheStats::default());
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.pipelined_batches, 1);
        assert!((snap.mean_batch_size - 3.0).abs() < 1e-12);
        assert_eq!(snap.p50_latency_us, 30.0);
        assert_eq!(snap.max_latency_us, 60.0);
        assert_eq!(snap.queue_depth, 3);
        // 6 requests in 300 µs of device time = 20k requests per device-second.
        assert!((snap.device_throughput_rps - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_serializes() {
        let metrics = ServeMetrics::new();
        metrics.record_batch(1, 50.0, false);
        metrics.record_latency(80.0);
        let snap = metrics.snapshot(CacheStats::default());
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
