//! Serving metrics: latency percentiles, throughput, queue depth, batch
//! shape and schedule-cache behaviour.
//!
//! Durations are kept in [`Histogram`]s (log-bucketed, fixed 15 KiB of
//! atomics each), so memory stays bounded no matter how long the engine
//! serves, recording never takes a lock, and a snapshot computes all of
//! p50/p95/p99 in one pass over the buckets instead of cloning and
//! sorting every latency ever seen. Counts and sums are exact; percentile
//! values carry at most [`Histogram::MAX_RELATIVE_ERROR`] (≈ 1.6 %)
//! relative error.

use crate::cache::CacheStats;
use crate::request::TenantId;
use ios_telemetry::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One tenant's admission-path counters: requests completed, requests
/// shed, and the queue-wait distribution. Created lazily on a tenant's
/// first submit; exported as `ios_tenant_*{tenant="…"}` labelled series.
#[derive(Debug)]
pub(crate) struct TenantMetrics {
    completed: AtomicU64,
    shed: AtomicU64,
    /// Time this tenant's completed requests spent queued, ns.
    queue_wait: Histogram,
}

impl TenantMetrics {
    fn new() -> Self {
        TenantMetrics {
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_wait: Histogram::new(),
        }
    }

    /// Records one completed request and its queue wait.
    pub fn record_completed(&self, queue_wait_us: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.queue_wait.record_us(queue_wait_us);
    }

    /// Records one request of this tenant turned away by admission
    /// control (bounded queue, shed share, or token bucket).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests completed for this tenant so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests of this tenant turned away so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The tenant's queue-wait histogram (ns), for exporters.
    pub fn queue_wait_histogram(&self) -> &Histogram {
        &self.queue_wait
    }
}

/// Live counters updated by the engine; snapshot with
/// [`ServeMetrics::snapshot`].
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    started_at: Instant,
    completed: AtomicU64,
    batches: AtomicU64,
    pipelined_batches: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    replans: AtomicU64,
    queue_depth: AtomicUsize,
    /// Completed-request total latencies (submission → response), ns.
    latency: Histogram,
    /// Time each request spent queued before its batch dispatched, ns.
    queue_wait: Histogram,
    /// Time spent assembling each batch (oldest enqueue → dispatch), ns.
    batch_assembly: Histogram,
    /// Per-batch (simulated) device time, ns.
    device_time: Histogram,
    /// Dispatched batch sizes — the adaptation controller's sensor for the
    /// observed traffic mix (windowed mode() = dominant batch size).
    batch_size: Histogram,
    /// Per-tenant counters, created lazily on a tenant's first submit.
    /// (A `BTreeMap` so exports iterate deterministically.)
    tenants: Mutex<BTreeMap<TenantId, Arc<TenantMetrics>>>,
}

impl ServeMetrics {
    pub fn new() -> Self {
        ServeMetrics {
            started_at: Instant::now(),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            pipelined_batches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            batch_assembly: Histogram::new(),
            device_time: Histogram::new(),
            batch_size: Histogram::new(),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counters of `tenant`, created on first use.
    pub fn tenant(&self, tenant: &TenantId) -> Arc<TenantMetrics> {
        let mut tenants = self.tenants.lock().expect("tenant metrics lock");
        Arc::clone(
            tenants
                .entry(tenant.clone())
                .or_insert_with(|| Arc::new(TenantMetrics::new())),
        )
    }

    /// Every tenant seen so far with its counters, in tenant-name order.
    pub fn tenant_entries(&self) -> Vec<(TenantId, Arc<TenantMetrics>)> {
        self.tenants
            .lock()
            .expect("tenant metrics lock")
            .iter()
            .map(|(tenant, metrics)| (tenant.clone(), Arc::clone(metrics)))
            .collect()
    }

    /// Records one dispatched batch and how it was executed (`pipelined`
    /// = through the cross-block pipeline, else flat batched).
    /// `device_time_us` must be non-negative (debug-asserted); it is
    /// rounded — not truncated — to the nearest nanosecond, so sub-µs
    /// stage times are not silently dropped from the device totals.
    pub fn record_batch(&self, batch_size: usize, device_time_us: f64, pipelined: bool) {
        debug_assert!(
            device_time_us >= 0.0,
            "negative device time: {device_time_us} µs"
        );
        self.batches.fetch_add(1, Ordering::Relaxed);
        if pipelined {
            self.pipelined_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.completed
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        self.device_time.record_us(device_time_us);
        self.batch_size.record(batch_size as u64);
    }

    /// Records one request turned away by admission control.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request completed as expired (deadline passed before
    /// dispatch).
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one adaptation-triggered re-plan.
    pub fn record_replan(&self) {
        self.replans.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request's total latency.
    pub fn record_latency(&self, total_us: f64) {
        self.latency.record_us(total_us);
    }

    /// Records how long one request waited in the queue before dispatch.
    pub fn record_queue_wait(&self, wait_us: f64) {
        self.queue_wait.record_us(wait_us);
    }

    /// Records how long one batch took to assemble (its oldest request's
    /// enqueue to the batch's dispatch).
    pub fn record_assembly(&self, assembly_us: f64) {
        self.batch_assembly.record_us(assembly_us);
    }

    /// Publishes the current queue depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// The latency histogram (ns), for exporters.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// The queue-wait histogram (ns), for exporters.
    pub fn queue_wait_histogram(&self) -> &Histogram {
        &self.queue_wait
    }

    /// The batch-assembly histogram (ns), for exporters.
    pub fn batch_assembly_histogram(&self) -> &Histogram {
        &self.batch_assembly
    }

    /// The per-batch device-time histogram (ns), for exporters.
    pub fn device_time_histogram(&self) -> &Histogram {
        &self.device_time
    }

    /// The dispatched-batch-size histogram (values are batch sizes, not
    /// durations), for the adaptation controller.
    pub fn batch_size_histogram(&self) -> &Histogram {
        &self.batch_size
    }

    /// Requests answered so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Batches dispatched so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Batches that ran through the cross-block pipeline.
    pub fn pipelined_batches(&self) -> u64 {
        self.pipelined_batches.load(Ordering::Relaxed)
    }

    /// Requests turned away by admission control so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests completed as deadline-expired so far.
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Adaptation-triggered re-plans so far.
    pub fn replans(&self) -> u64 {
        self.replans.load(Ordering::Relaxed)
    }

    /// The queue-depth gauge as last published.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Snapshots every counter. Percentiles come from the latency
    /// histogram in a single pass; count, sum and max are exact.
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let completed = self.completed();
        let batches = self.batches();
        let device_time_us = self.device_time.sum() as f64 / 1e3;
        let elapsed = self.started_at.elapsed().as_secs_f64();
        let [p50, p95, p99] = match self.latency.percentiles(&[50.0, 95.0, 99.0]) {
            Some(ps) => [ps[0], ps[1], ps[2]].map(|ns| ns as f64 / 1e3),
            None => [0.0; 3],
        };
        MetricsSnapshot {
            completed,
            batches,
            pipelined_batches: self.pipelined_batches(),
            shed: self.shed(),
            deadline_expired: self.deadline_expired(),
            replans: self.replans(),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            p50_latency_us: p50,
            p95_latency_us: p95,
            p99_latency_us: p99,
            max_latency_us: self.latency.max().unwrap_or(0) as f64 / 1e3,
            mean_queue_wait_us: self.queue_wait.mean() / 1e3,
            mean_assembly_us: self.batch_assembly.mean() / 1e3,
            wall_throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            device_time_us,
            device_throughput_rps: if device_time_us > 0.0 {
                completed as f64 / (device_time_us / 1e6)
            } else {
                0.0
            },
            queue_depth: self.queue_depth(),
            cache,
            tenants: self
                .tenant_entries()
                .into_iter()
                .map(|(tenant, m)| TenantMetricsSnapshot {
                    tenant: tenant.name().to_string(),
                    completed: m.completed(),
                    shed: m.shed(),
                    mean_queue_wait_us: m.queue_wait.mean() / 1e3,
                    p95_queue_wait_us: m
                        .queue_wait
                        .percentile(95.0)
                        .map_or(0.0, |ns| ns as f64 / 1e3),
                })
                .collect(),
        }
    }
}

/// A point-in-time view of one tenant's admission-path counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMetricsSnapshot {
    /// The tenant's name.
    pub tenant: String,
    /// Requests completed for this tenant.
    pub completed: u64,
    /// Requests of this tenant turned away by admission control.
    pub shed: u64,
    /// Mean time this tenant's completed requests spent queued, µs.
    pub mean_queue_wait_us: f64,
    /// 95th percentile queue wait of this tenant's completed requests, µs
    /// (histogram-derived, same error bound as the latency percentiles).
    pub p95_queue_wait_us: f64,
}

/// A point-in-time view of the serving metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests answered so far.
    pub completed: u64,
    /// Batches dispatched so far.
    pub batches: u64,
    /// Batches that executed through the cross-block pipeline (the rest
    /// ran flat batched execution).
    pub pipelined_batches: u64,
    /// Requests turned away by admission control (bounded queue or shed
    /// mode) — they never entered the queue.
    pub shed: u64,
    /// Requests completed as expired: their deadline passed before their
    /// batch dispatched, so they never reached the device.
    pub deadline_expired: u64,
    /// Times the adaptation controller re-planned pipeline segment
    /// boundaries in response to an observed traffic-mix shift.
    pub replans: u64,
    /// Mean coalesced batch size (`completed / batches`).
    pub mean_batch_size: f64,
    /// Median request latency (submission → response), µs wall clock.
    /// Histogram-derived: within 1.6 % of the exact nearest-rank value.
    pub p50_latency_us: f64,
    /// 95th percentile request latency, µs wall clock (same error bound).
    pub p95_latency_us: f64,
    /// 99th percentile request latency, µs wall clock (same error bound).
    pub p99_latency_us: f64,
    /// Worst request latency, µs wall clock (exact).
    pub max_latency_us: f64,
    /// Mean time a request spent queued before its batch dispatched, µs.
    pub mean_queue_wait_us: f64,
    /// Mean batch-assembly time (oldest enqueue → dispatch), µs.
    pub mean_assembly_us: f64,
    /// Requests per second of wall clock since the engine started.
    pub wall_throughput_rps: f64,
    /// Total (simulated) device time consumed by all batches, µs.
    pub device_time_us: f64,
    /// Requests per second of *device* time — the hardware-efficiency
    /// number batching improves (cf. Figure 11 of the paper).
    pub device_throughput_rps: f64,
    /// Requests queued at snapshot time.
    pub queue_depth: usize,
    /// Schedule-cache behaviour.
    pub cache: CacheStats,
    /// Per-tenant completed/shed/queue-wait counters, in tenant-name
    /// order. Empty until the first request arrives.
    pub tenants: Vec<TenantMetricsSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relative tolerance for histogram-derived percentiles.
    const TOL: f64 = Histogram::MAX_RELATIVE_ERROR;

    fn close(actual: f64, expected: f64) -> bool {
        (actual - expected).abs() <= expected * TOL
    }

    #[test]
    fn percentiles_track_nearest_rank_within_the_error_bound() {
        let metrics = ServeMetrics::new();
        for us in 1..=100 {
            metrics.record_latency(f64::from(us));
        }
        let snap = metrics.snapshot(CacheStats::default());
        assert!(
            close(snap.p50_latency_us, 50.0),
            "p50 {}",
            snap.p50_latency_us
        );
        assert!(
            close(snap.p95_latency_us, 95.0),
            "p95 {}",
            snap.p95_latency_us
        );
        assert!(
            close(snap.p99_latency_us, 99.0),
            "p99 {}",
            snap.p99_latency_us
        );
        // Max is exact, not bucketed.
        assert_eq!(snap.max_latency_us, 100.0);
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let metrics = ServeMetrics::new();
        metrics.record_batch(4, 200.0, true);
        metrics.record_batch(2, 100.0, false);
        for latency in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0] {
            metrics.record_latency(latency);
        }
        metrics.record_queue_wait(8.0);
        metrics.record_queue_wait(12.0);
        metrics.record_assembly(40.0);
        metrics.set_queue_depth(3);
        let snap = metrics.snapshot(CacheStats::default());
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.pipelined_batches, 1);
        assert!((snap.mean_batch_size - 3.0).abs() < 1e-12);
        assert!(
            close(snap.p50_latency_us, 30.0),
            "p50 {}",
            snap.p50_latency_us
        );
        assert_eq!(snap.max_latency_us, 60.0);
        // Histogram sums are exact, so the means are too.
        assert!((snap.mean_queue_wait_us - 10.0).abs() < 1e-9);
        assert!((snap.mean_assembly_us - 40.0).abs() < 1e-9);
        assert_eq!(snap.queue_depth, 3);
        // 6 requests in 300 µs of device time = 20k requests per device-second.
        assert!((snap.device_throughput_rps - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn memory_is_bounded_under_sustained_recording() {
        // The old implementation pushed every latency into a Vec; this
        // pins the histogram replacement: a million records later, a
        // snapshot is still cheap and counts stay exact.
        let metrics = ServeMetrics::new();
        for i in 0..1_000_000u64 {
            metrics.record_latency((i % 10_000) as f64);
        }
        let snap = metrics.snapshot(CacheStats::default());
        assert_eq!(metrics.latency_histogram().count(), 1_000_000);
        assert!(
            close(snap.p50_latency_us, 4_999.0),
            "p50 {}",
            snap.p50_latency_us
        );
    }

    #[test]
    fn device_time_rounds_instead_of_truncating() {
        let metrics = ServeMetrics::new();
        // 0.0006 µs = 0.6 ns each: truncation would record 0 forever.
        for _ in 0..1000 {
            metrics.record_batch(1, 0.0006, false);
        }
        let snap = metrics.snapshot(CacheStats::default());
        assert!(
            (snap.device_time_us - 1.0).abs() < 1e-9,
            "1000 × 0.6 ns must round to 1 ns each, got {} µs",
            snap.device_time_us
        );
    }

    #[test]
    fn adaptation_counters_flow_into_the_snapshot() {
        let metrics = ServeMetrics::new();
        metrics.record_shed();
        metrics.record_shed();
        metrics.record_deadline_expired();
        metrics.record_replan();
        metrics.record_batch(4, 10.0, false);
        metrics.record_batch(4, 10.0, false);
        metrics.record_batch(1, 10.0, false);
        let snap = metrics.snapshot(CacheStats::default());
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.deadline_expired, 1);
        assert_eq!(snap.replans, 1);
        // The batch-size histogram sees the dispatched sizes; its mode is
        // the dominant batch size the controller plans for.
        let sizes = metrics.batch_size_histogram().snapshot();
        assert_eq!(sizes.count, 3);
        assert_eq!(sizes.mode(), Some(4));
    }

    #[test]
    fn snapshot_serializes() {
        let metrics = ServeMetrics::new();
        metrics.record_batch(1, 50.0, false);
        metrics.record_latency(80.0);
        let snap = metrics.snapshot(CacheStats::default());
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
