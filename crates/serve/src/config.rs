//! Serving runtime configuration.

use ios_backend::WeightPrecision;
use ios_core::SchedulerConfig;
use ios_sim::DeviceKind;
use std::time::Duration;

/// Which cost model the engine optimizes (and background re-optimizes)
/// schedules against — the serving face of the paper's §4 profiling loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The analytical GPU simulator for `device`: fast to evaluate, but
    /// blind to how the *actual* execution substrate behaves.
    #[default]
    Simulated,
    /// Stage latencies **measured on the CPU execution backend** (warmup +
    /// median-of-N repeats per distinct stage, cached): the schedule that
    /// wins the DP is the schedule that is fastest on the backend that
    /// will execute it. The right choice when the engine serves real
    /// numerics through the CPU executor.
    CpuProfiled,
}

/// Whether (and how) the engine executes batches through the cross-block
/// pipeline instead of flat batched execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Flat batched execution only.
    #[default]
    Off,
    /// Measure per-block costs with the engine's cost model, plan segment
    /// boundaries (`ios_core::plan_pipeline`), and route each batch to the
    /// pipeline **only when the plan predicts it out-serves flat batched
    /// execution at that batch size** — flat otherwise. On hosts where
    /// pipelining cannot win (one core, or one dominant block) the plan
    /// comes back flat and every batch takes the flat path.
    Auto,
    /// Route every batch through a pipeline with the given number of
    /// segments (clamped to the block count), regardless of the
    /// prediction. For diagnostics and tests; `Auto` is the serving mode.
    Forced(usize),
}

/// Configuration of a [`crate::ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The (simulated) device schedules are specialized for.
    pub device: DeviceKind,
    /// The cost model schedules are optimized against.
    pub cost_model: CostModelKind,
    /// Largest batch the dynamic batcher coalesces. Requests are dispatched
    /// as soon as `max_batch` are queued.
    pub max_batch: usize,
    /// Longest time the oldest queued request waits before a partial batch
    /// is dispatched anyway.
    pub max_wait: Duration,
    /// Number of worker threads executing batches.
    pub workers: usize,
    /// Scheduler configuration used when (re-)optimizing schedules.
    pub scheduler: SchedulerConfig,
    /// Batch sizes whose specialized schedules are optimized at startup;
    /// `None` means the default of `[1, max_batch]`. Other batch sizes are
    /// served by the nearest cached schedule until a background
    /// re-optimization produces their exact one.
    pub prewarm_batches: Option<Vec<usize>>,
    /// Whether a cache miss on an exact batch size triggers background
    /// re-optimization for that batch size (Table 3 as a runtime policy).
    pub background_reoptimize: bool,
    /// Cross-block pipelined execution mode (see [`PipelineMode`]).
    pub pipeline: PipelineMode,
    /// Cap on pipeline segment count; `None` lets the planner choose (up
    /// to twice the host's cores).
    pub pipeline_max_segments: Option<usize>,
    /// Weight precision the engine precomputes, profiles, and executes at.
    /// [`WeightPrecision::Int8`] runs convolution/pointwise stages through
    /// the quantized integer kernels (deterministic: byte-identical across
    /// thread counts and pipeline segmentations) at a fraction of the
    /// weight-cache footprint; matmul and depthwise stages stay f32.
    pub precision: WeightPrecision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(4);
        ServeConfig {
            device: DeviceKind::TeslaV100,
            cost_model: CostModelKind::default(),
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers,
            scheduler: SchedulerConfig::paper_default(),
            prewarm_batches: None,
            background_reoptimize: true,
            pipeline: PipelineMode::default(),
            pipeline_max_segments: None,
            precision: WeightPrecision::default(),
        }
    }
}

impl ServeConfig {
    /// Sets the maximum batch size (pre-warmed by default, unless an
    /// explicit pre-warm list was configured).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        self.max_batch = max_batch;
        self
    }

    /// Sets the device schedules are specialized for.
    #[must_use]
    pub fn with_device(mut self, device: DeviceKind) -> Self {
        self.device = device;
        self
    }

    /// Sets the cost model schedules are optimized against
    /// ([`CostModelKind::CpuProfiled`] closes the optimize→profile→execute
    /// loop for engines executing on the CPU backend).
    #[must_use]
    pub fn with_cost_model(mut self, cost_model: CostModelKind) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets the number of worker threads.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker is required");
        self.workers = workers;
        self
    }

    /// Sets the partial-batch dispatch deadline.
    #[must_use]
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the batch sizes optimized at startup (overriding the default
    /// of `[1, max_batch]`).
    #[must_use]
    pub fn with_prewarm_batches(mut self, batches: Vec<usize>) -> Self {
        self.prewarm_batches = Some(batches);
        self
    }

    /// The batch sizes the engine pre-warms: the configured list, or
    /// `[1, max_batch]` when none was set.
    #[must_use]
    pub fn effective_prewarm_batches(&self) -> Vec<usize> {
        let mut batches = self
            .prewarm_batches
            .clone()
            .unwrap_or_else(|| vec![1, self.max_batch]);
        batches.retain(|&b| b >= 1);
        batches.sort_unstable();
        batches.dedup();
        batches
    }

    /// Enables or disables background re-optimization on exact-batch misses.
    #[must_use]
    pub fn with_background_reoptimize(mut self, enabled: bool) -> Self {
        self.background_reoptimize = enabled;
        self
    }

    /// Sets the cross-block pipelined execution mode.
    /// [`PipelineMode::Auto`] lets the engine pick pipelined vs flat
    /// batched execution per batch size from the planner's prediction.
    #[must_use]
    pub fn with_pipeline(mut self, mode: PipelineMode) -> Self {
        self.pipeline = mode;
        self
    }

    /// Caps the number of pipeline segments the planner may choose.
    #[must_use]
    pub fn with_pipeline_max_segments(mut self, max_segments: usize) -> Self {
        assert!(max_segments >= 1, "at least one segment is required");
        self.pipeline_max_segments = Some(max_segments);
        self
    }

    /// Sets the weight precision the engine serves at.
    #[must_use]
    pub fn with_precision(mut self, precision: WeightPrecision) -> Self {
        self.precision = precision;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let config = ServeConfig::default()
            .with_max_batch(32)
            .with_device(DeviceKind::TeslaK80)
            .with_workers(2)
            .with_max_wait(Duration::from_millis(5))
            .with_background_reoptimize(false)
            .with_cost_model(CostModelKind::CpuProfiled)
            .with_pipeline(PipelineMode::Auto)
            .with_pipeline_max_segments(4)
            .with_precision(WeightPrecision::Int8);
        assert_eq!(config.max_batch, 32);
        assert_eq!(config.precision, WeightPrecision::Int8);
        assert_eq!(
            ServeConfig::default().precision,
            WeightPrecision::F32,
            "f32 remains the default precision"
        );
        assert_eq!(config.pipeline, PipelineMode::Auto);
        assert_eq!(config.pipeline_max_segments, Some(4));
        assert_eq!(
            ServeConfig::default().pipeline,
            PipelineMode::Off,
            "pipelining stays opt-in"
        );
        assert_eq!(config.effective_prewarm_batches(), vec![1, 32]);
        assert_eq!(config.device, DeviceKind::TeslaK80);
        assert_eq!(config.workers, 2);
        assert!(!config.background_reoptimize);
        assert_eq!(config.cost_model, CostModelKind::CpuProfiled);
        assert_eq!(
            ServeConfig::default().cost_model,
            CostModelKind::Simulated,
            "the simulator remains the default model"
        );
    }

    #[test]
    fn explicit_prewarm_survives_later_max_batch_changes() {
        let config = ServeConfig::default()
            .with_prewarm_batches(vec![2, 16, 0, 16])
            .with_max_batch(32);
        assert_eq!(
            config.effective_prewarm_batches(),
            vec![2, 16],
            "an explicit pre-warm list must not be overwritten (zeros and dups dropped)"
        );
    }

    #[test]
    #[should_panic(expected = "max_batch must be at least 1")]
    fn zero_batch_rejected() {
        let _ = ServeConfig::default().with_max_batch(0);
    }
}
