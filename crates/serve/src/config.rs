//! Serving runtime configuration.

use ios_backend::WeightPrecision;
use ios_core::SchedulerConfig;
use ios_sim::DeviceKind;
use std::collections::BTreeMap;
use std::time::Duration;

/// Admission parameters of one tenant: its weighted-fair-queuing weight
/// and an optional token-bucket rate limit, both enforced inside the
/// batching queue's lock (exact under racing submitters).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Weighted-fair-queuing weight: under contention a tenant receives
    /// dispatch slots in proportion to its weight. Must be at least 1.
    pub weight: u32,
    /// Sustained admission rate in requests per second, enforced by a
    /// token bucket refilled continuously. `None` leaves the tenant
    /// unlimited (subject only to the global admission capacity).
    pub rate: Option<f64>,
    /// Token-bucket capacity: the largest burst admitted at once when the
    /// bucket is full. Only meaningful with a `rate`.
    pub burst: f64,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            rate: None,
            burst: 8.0,
        }
    }
}

impl TenantConfig {
    /// A tenant with the given WFQ weight (no rate limit).
    ///
    /// # Panics
    ///
    /// Panics when `weight` is zero.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "a tenant weight must be at least 1");
        self.weight = weight;
        self
    }

    /// Sets a token-bucket rate limit: at most `burst` requests admitted
    /// at once, refilled at `rate` requests per second.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not positive or `burst` is below 1.
    #[must_use]
    pub fn with_rate(mut self, rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "a tenant rate must be positive");
        assert!(burst >= 1.0, "a tenant burst must admit at least 1 request");
        self.rate = Some(rate);
        self.burst = burst;
        self
    }
}

/// Per-tenant admission configuration: named tenants with explicit
/// [`TenantConfig`]s, plus the config any *unknown* tenant (including the
/// default tenant anonymous traffic maps to) falls back on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantsConfig {
    /// Explicitly configured tenants, by name. (A `BTreeMap` so exports
    /// and shares iterate deterministically.)
    pub tenants: BTreeMap<String, TenantConfig>,
    /// Fallback for tenants not in the map.
    pub fallback: TenantConfig,
}

impl TenantsConfig {
    /// The admission parameters for `tenant`: its explicit entry, or the
    /// fallback.
    #[must_use]
    pub fn for_tenant(&self, tenant: &str) -> &TenantConfig {
        self.tenants.get(tenant).unwrap_or(&self.fallback)
    }

    /// Adds (or replaces) one named tenant's admission parameters.
    #[must_use]
    pub fn with_tenant(mut self, name: impl Into<String>, tenant: TenantConfig) -> Self {
        self.tenants.insert(name.into(), tenant);
        self
    }

    /// Sets the fallback applied to tenants not explicitly configured.
    #[must_use]
    pub fn with_fallback(mut self, tenant: TenantConfig) -> Self {
        self.fallback = tenant;
        self
    }
}

/// Which cost model the engine optimizes (and background re-optimizes)
/// schedules against — the serving face of the paper's §4 profiling loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The analytical GPU simulator for `device`: fast to evaluate, but
    /// blind to how the *actual* execution substrate behaves.
    #[default]
    Simulated,
    /// Stage latencies **measured on the CPU execution backend** (warmup +
    /// median-of-N repeats per distinct stage, cached): the schedule that
    /// wins the DP is the schedule that is fastest on the backend that
    /// will execute it. The right choice when the engine serves real
    /// numerics through the CPU executor.
    CpuProfiled,
}

/// Whether (and how) the engine executes batches through the cross-block
/// pipeline instead of flat batched execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Flat batched execution only.
    #[default]
    Off,
    /// Measure per-block costs with the engine's cost model, plan segment
    /// boundaries (`ios_core::plan_pipeline`), and route each batch to the
    /// pipeline **only when the plan predicts it out-serves flat batched
    /// execution at that batch size** — flat otherwise. On hosts where
    /// pipelining cannot win (one core, or one dominant block) the plan
    /// comes back flat and every batch takes the flat path.
    Auto,
    /// Route every batch through a pipeline with the given number of
    /// segments (clamped to the block count), regardless of the
    /// prediction. For diagnostics and tests; `Auto` is the serving mode.
    Forced(usize),
}

/// Configuration of the runtime adaptation loop: the telemetry-driven
/// controller (re-planning + regret-based cache eviction), deadline-aware
/// batching, and load shedding. Everything here is opt-in — the default is
/// a fully static engine, matching the behaviour of earlier revisions.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Master switch for the adaptation controller thread. When `false`
    /// nothing is spawned and only explicitly-passed deadlines (via
    /// [`crate::ServeEngine::submit_with_deadline`]) have any effect.
    pub enabled: bool,
    /// How often the controller wakes to inspect its telemetry window.
    pub tick: Duration,
    /// Minimum number of batches a window must contain before the
    /// controller acts on it — guards against re-planning or shedding on
    /// statistically vacuous evidence.
    pub min_window_batches: u64,
    /// Queue-wait budget for load shedding: when the windowed p95 queue
    /// wait exceeds this, the engine enters shed mode (new requests beyond
    /// a batch's worth are rejected with [`crate::Rejected::Shed`]) until
    /// the windowed p95 falls back below half the budget (hysteresis).
    /// `None` disables telemetry-driven shedding.
    pub shed_queue_wait_budget: Option<Duration>,
    /// Hard bound on the admission queue depth, enforced exactly under the
    /// queue lock. Offers beyond it are rejected with
    /// [`crate::Rejected::Shed`] regardless of shed mode. `None` leaves
    /// the queue unbounded.
    pub admission_capacity: Option<usize>,
    /// Deadline budget applied to every plain [`crate::ServeEngine::submit`]
    /// (measured from submission). `None` means plain submissions carry no
    /// deadline.
    pub default_deadline: Option<Duration>,
    /// A cached schedule is evicted when its observed mean device time
    /// exceeds `regret_threshold ×` its (calibrated) predicted time — the
    /// prediction has stopped describing reality, so the entry is removed
    /// and re-optimized on next use.
    pub regret_threshold: f64,
    /// Shed mode disengages after this many *consecutive* controller
    /// ticks whose window held fewer than `min_window_batches` samples:
    /// post-overload trickle traffic never fills a window, so without
    /// this bound a latched shed mode would keep rejecting traffic the
    /// engine could easily serve. (A full window re-evaluates shedding
    /// on its own evidence and resets the count.)
    pub shed_stale_ticks: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            enabled: false,
            tick: Duration::from_millis(20),
            min_window_batches: 8,
            shed_queue_wait_budget: None,
            admission_capacity: None,
            default_deadline: None,
            regret_threshold: 2.0,
            shed_stale_ticks: 3,
        }
    }
}

/// Configuration of a [`crate::ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The (simulated) device schedules are specialized for.
    pub device: DeviceKind,
    /// The cost model schedules are optimized against.
    pub cost_model: CostModelKind,
    /// Largest batch the dynamic batcher coalesces. Requests are dispatched
    /// as soon as `max_batch` are queued.
    pub max_batch: usize,
    /// Longest time the oldest queued request waits before a partial batch
    /// is dispatched anyway.
    pub max_wait: Duration,
    /// Number of worker threads executing batches.
    pub workers: usize,
    /// Scheduler configuration used when (re-)optimizing schedules.
    pub scheduler: SchedulerConfig,
    /// Batch sizes whose specialized schedules are optimized at startup;
    /// `None` means the default of `[1, max_batch]`. Other batch sizes are
    /// served by the nearest cached schedule until a background
    /// re-optimization produces their exact one.
    pub prewarm_batches: Option<Vec<usize>>,
    /// Whether a cache miss on an exact batch size triggers background
    /// re-optimization for that batch size (Table 3 as a runtime policy).
    pub background_reoptimize: bool,
    /// Cross-block pipelined execution mode (see [`PipelineMode`]).
    pub pipeline: PipelineMode,
    /// Cap on pipeline segment count; `None` lets the planner choose (up
    /// to twice the host's cores).
    pub pipeline_max_segments: Option<usize>,
    /// Weight precision the engine precomputes, profiles, and executes at.
    /// [`WeightPrecision::Int8`] runs convolution/pointwise stages through
    /// the quantized integer kernels (deterministic: byte-identical across
    /// thread counts and pipeline segmentations) at a fraction of the
    /// weight-cache footprint; matmul and depthwise stages stay f32.
    pub precision: WeightPrecision,
    /// Runtime adaptation loop (controller, deadlines, shedding). Disabled
    /// by default.
    pub adapt: AdaptConfig,
    /// Per-tenant admission: WFQ weights and token-bucket rate limits.
    /// The default (every tenant on the fallback [`TenantConfig`]: weight
    /// 1, no rate limit) makes multi-tenancy invisible until configured.
    pub tenants: TenantsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(4);
        ServeConfig {
            device: DeviceKind::TeslaV100,
            cost_model: CostModelKind::default(),
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers,
            scheduler: SchedulerConfig::paper_default(),
            prewarm_batches: None,
            background_reoptimize: true,
            pipeline: PipelineMode::default(),
            pipeline_max_segments: None,
            precision: WeightPrecision::default(),
            adapt: AdaptConfig::default(),
            tenants: TenantsConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Sets the maximum batch size (pre-warmed by default, unless an
    /// explicit pre-warm list was configured).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        self.max_batch = max_batch;
        self
    }

    /// Sets the device schedules are specialized for.
    #[must_use]
    pub fn with_device(mut self, device: DeviceKind) -> Self {
        self.device = device;
        self
    }

    /// Sets the cost model schedules are optimized against
    /// ([`CostModelKind::CpuProfiled`] closes the optimize→profile→execute
    /// loop for engines executing on the CPU backend).
    #[must_use]
    pub fn with_cost_model(mut self, cost_model: CostModelKind) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets the number of worker threads.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker is required");
        self.workers = workers;
        self
    }

    /// Sets the partial-batch dispatch deadline.
    #[must_use]
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the batch sizes optimized at startup (overriding the default
    /// of `[1, max_batch]`).
    #[must_use]
    pub fn with_prewarm_batches(mut self, batches: Vec<usize>) -> Self {
        self.prewarm_batches = Some(batches);
        self
    }

    /// The batch sizes the engine pre-warms: the configured list, or
    /// `[1, max_batch]` when none was set.
    #[must_use]
    pub fn effective_prewarm_batches(&self) -> Vec<usize> {
        let mut batches = self
            .prewarm_batches
            .clone()
            .unwrap_or_else(|| vec![1, self.max_batch]);
        batches.retain(|&b| b >= 1);
        batches.sort_unstable();
        batches.dedup();
        batches
    }

    /// Enables or disables background re-optimization on exact-batch misses.
    #[must_use]
    pub fn with_background_reoptimize(mut self, enabled: bool) -> Self {
        self.background_reoptimize = enabled;
        self
    }

    /// Sets the cross-block pipelined execution mode.
    /// [`PipelineMode::Auto`] lets the engine pick pipelined vs flat
    /// batched execution per batch size from the planner's prediction.
    #[must_use]
    pub fn with_pipeline(mut self, mode: PipelineMode) -> Self {
        self.pipeline = mode;
        self
    }

    /// Caps the number of pipeline segments the planner may choose.
    #[must_use]
    pub fn with_pipeline_max_segments(mut self, max_segments: usize) -> Self {
        assert!(max_segments >= 1, "at least one segment is required");
        self.pipeline_max_segments = Some(max_segments);
        self
    }

    /// Sets the weight precision the engine serves at.
    #[must_use]
    pub fn with_precision(mut self, precision: WeightPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Replaces the whole adaptation configuration.
    #[must_use]
    pub fn with_adapt(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = adapt;
        self
    }

    /// Enables (or disables) the adaptation controller thread.
    #[must_use]
    pub fn with_adaptation(mut self, enabled: bool) -> Self {
        self.adapt.enabled = enabled;
        self
    }

    /// Sets the controller's tick interval.
    #[must_use]
    pub fn with_adapt_tick(mut self, tick: Duration) -> Self {
        assert!(!tick.is_zero(), "the adaptation tick must be non-zero");
        self.adapt.tick = tick;
        self
    }

    /// Sets the queue-wait p95 budget that triggers load shedding (also
    /// enables the controller, which hosts the shed policy).
    #[must_use]
    pub fn with_shed_queue_wait_budget(mut self, budget: Duration) -> Self {
        self.adapt.shed_queue_wait_budget = Some(budget);
        self.adapt.enabled = true;
        self
    }

    /// Bounds the admission queue depth (exact, enforced under the queue
    /// lock). Works with or without the controller.
    #[must_use]
    pub fn with_admission_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "admission capacity must be at least 1");
        self.adapt.admission_capacity = Some(capacity);
        self
    }

    /// Applies a default deadline budget to every plain `submit`.
    #[must_use]
    pub fn with_default_deadline(mut self, budget: Duration) -> Self {
        self.adapt.default_deadline = Some(budget);
        self
    }

    /// Sets the observed/predicted device-time ratio beyond which a cached
    /// schedule is evicted as stale.
    #[must_use]
    pub fn with_regret_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 1.0, "a regret threshold must exceed 1.0");
        self.adapt.regret_threshold = threshold;
        self
    }

    /// Configures one named tenant's admission parameters (WFQ weight,
    /// token-bucket rate limit). Call once per tenant; submit traffic on
    /// its behalf with [`crate::ServeEngine::submit_for_tenant`].
    #[must_use]
    pub fn with_tenant(mut self, name: impl Into<String>, tenant: TenantConfig) -> Self {
        self.tenants.tenants.insert(name.into(), tenant);
        self
    }

    /// Sets the fallback admission parameters applied to every tenant not
    /// explicitly configured (including the default tenant anonymous
    /// traffic maps to).
    #[must_use]
    pub fn with_tenant_fallback(mut self, tenant: TenantConfig) -> Self {
        self.tenants.fallback = tenant;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let config = ServeConfig::default()
            .with_max_batch(32)
            .with_device(DeviceKind::TeslaK80)
            .with_workers(2)
            .with_max_wait(Duration::from_millis(5))
            .with_background_reoptimize(false)
            .with_cost_model(CostModelKind::CpuProfiled)
            .with_pipeline(PipelineMode::Auto)
            .with_pipeline_max_segments(4)
            .with_precision(WeightPrecision::Int8);
        assert_eq!(config.max_batch, 32);
        assert_eq!(config.precision, WeightPrecision::Int8);
        assert_eq!(
            ServeConfig::default().precision,
            WeightPrecision::F32,
            "f32 remains the default precision"
        );
        assert_eq!(config.pipeline, PipelineMode::Auto);
        assert_eq!(config.pipeline_max_segments, Some(4));
        assert_eq!(
            ServeConfig::default().pipeline,
            PipelineMode::Off,
            "pipelining stays opt-in"
        );
        assert_eq!(config.effective_prewarm_batches(), vec![1, 32]);
        assert_eq!(config.device, DeviceKind::TeslaK80);
        assert_eq!(config.workers, 2);
        assert!(!config.background_reoptimize);
        assert_eq!(config.cost_model, CostModelKind::CpuProfiled);
        assert_eq!(
            ServeConfig::default().cost_model,
            CostModelKind::Simulated,
            "the simulator remains the default model"
        );
    }

    #[test]
    fn explicit_prewarm_survives_later_max_batch_changes() {
        let config = ServeConfig::default()
            .with_prewarm_batches(vec![2, 16, 0, 16])
            .with_max_batch(32);
        assert_eq!(
            config.effective_prewarm_batches(),
            vec![2, 16],
            "an explicit pre-warm list must not be overwritten (zeros and dups dropped)"
        );
    }

    #[test]
    #[should_panic(expected = "max_batch must be at least 1")]
    fn zero_batch_rejected() {
        let _ = ServeConfig::default().with_max_batch(0);
    }

    #[test]
    fn adaptation_stays_opt_in_and_builders_compose() {
        let default = ServeConfig::default();
        assert!(!default.adapt.enabled, "the adaptation loop is opt-in");
        assert!(default.adapt.shed_queue_wait_budget.is_none());
        assert!(default.adapt.admission_capacity.is_none());
        assert!(default.adapt.default_deadline.is_none());

        let config = ServeConfig::default()
            .with_shed_queue_wait_budget(Duration::from_millis(10))
            .with_admission_capacity(64)
            .with_default_deadline(Duration::from_millis(50))
            .with_adapt_tick(Duration::from_millis(5))
            .with_regret_threshold(3.0);
        assert!(
            config.adapt.enabled,
            "configuring a shed budget implies the controller"
        );
        assert_eq!(
            config.adapt.shed_queue_wait_budget,
            Some(Duration::from_millis(10))
        );
        assert_eq!(config.adapt.admission_capacity, Some(64));
        assert_eq!(
            config.adapt.default_deadline,
            Some(Duration::from_millis(50))
        );
        assert_eq!(config.adapt.tick, Duration::from_millis(5));
        assert!((config.adapt.regret_threshold - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "admission capacity must be at least 1")]
    fn zero_admission_capacity_rejected() {
        let _ = ServeConfig::default().with_admission_capacity(0);
    }
}
