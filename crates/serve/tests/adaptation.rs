//! The runtime adaptation suite: deadline-aware batching, the
//! telemetry-driven controller's re-planning and regret eviction, and the
//! chaos case of a panic inside an adaptation-triggered re-plan.
//!
//! * deadlines: an already-expired request completes with a typed
//!   rejection **without any device dispatch**; a deadline-carrying
//!   request flushes early instead of waiting out `max_wait`; a mixed
//!   batch serves the live requests and rejects only the expired ones;
//! * re-planning: when the observed batch-size mix shifts, the controller
//!   re-plans (counter observed) and responses stay **bit-identical** to
//!   solo references across the adaptation-triggered pipeline swap —
//!   extending the PR 5 mid-flight-swap proof to swaps the engine decides
//!   on its own;
//! * regret: a backend whose measured device time drifts 10× away from
//!   the optimizer's prediction gets its cached schedule evicted (after a
//!   first calibration window bridges the units);
//! * chaos: a panic injected into the re-plan's `prepare_pipeline` leaves
//!   the old plan serving, the engine bit-identical, and the pool/cache
//!   counters flat;
//! * shed latch: a parked request that keeps the queue occupied (but never
//!   fills a window) must not latch shed mode forever — the stale-tick
//!   clause disengages it;
//! * phantom dominant: a traffic mix of full batch-96 dispatches must not
//!   make the controller optimize and cache a schedule for batch 97 (a
//!   log-bucket representative that was never dispatched).

use ios_backend::{execute_network, NetworkWeights, TensorData};
use ios_core::PipelinePlan;
use ios_ir::Network;
use ios_serve::{
    BatchContext, BatchExecutor, BatchOutcome, CpuReferenceExecutor, PipelineMode, Rejected,
    ServeConfig, ServeEngine,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common {
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};

    /// The three-block chain from the concurrency suite: pipelinable, with
    /// distinct per-batch schedules, small enough to stress in CI.
    pub fn three_block_network() -> Network {
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("adapt_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("adapt_b1", block0.graph.output_shapes());
        let x = b.input(0);
        let d = b.conv2d("d", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let block1 = Block::new(b.build(vec![d]));
        let mut b = GraphBuilder::with_inputs("adapt_b2", block1.graph.output_shapes());
        let x = b.input(0);
        let e = b.conv2d("e", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let block2 = Block::new(b.build(vec![e]));
        Network::new("adapt_net", input, vec![block0, block1, block2])
    }
}

fn reference_outputs(net: &Network, seed: u64) -> Vec<TensorData> {
    let input = TensorData::random(net.input_shape, seed);
    execute_network(net, std::slice::from_ref(&input))
}

// ---------------------------------------------------------------- deadlines

#[test]
fn an_already_expired_request_is_rejected_without_device_dispatch() {
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(5));
    let engine = ServeEngine::start(net.clone(), config);
    // A zero budget expires at enqueue: the batcher flushes immediately
    // and assembly must reject it before any schedule resolution or
    // device work.
    let handle = engine
        .submit_with_deadline(TensorData::zeros(net.input_shape), Duration::ZERO)
        .unwrap();
    assert_eq!(
        handle.wait_outcome().err(),
        Some(Rejected::DeadlineExceeded)
    );
    let metrics = engine.metrics();
    assert_eq!(metrics.deadline_expired, 1);
    assert_eq!(metrics.batches, 0, "the expired request never dispatched");
    assert_eq!(metrics.completed, 0);
    assert_eq!(
        metrics.cache.hits + metrics.cache.misses,
        0,
        "no schedule was even resolved"
    );
    engine.shutdown();
}

#[test]
fn a_deadline_flushes_the_batch_early_instead_of_waiting_out_max_wait() {
    let net = common::three_block_network();
    // max_wait is a full minute; only the deadline can explain a prompt
    // answer.
    let config = ServeConfig::default()
        .with_max_batch(8)
        .with_workers(1)
        .with_max_wait(Duration::from_secs(60));
    let engine = ServeEngine::start(net.clone(), config);
    let start = Instant::now();
    let response = engine
        .submit_with_deadline(
            TensorData::random(net.input_shape, 3),
            Duration::from_millis(200),
        )
        .unwrap()
        .wait_outcome()
        .expect("flushed before its deadline");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "deadline-aware flush must beat the 60 s max_wait (took {:?})",
        start.elapsed()
    );
    assert_eq!(response.batch_size, 1);
    for (lease, reference) in response.outputs.iter().zip(&reference_outputs(&net, 3)) {
        assert_eq!(
            lease, reference,
            "an early flush still serves exact numerics"
        );
    }
    engine.shutdown();
}

#[test]
fn a_mixed_batch_serves_live_requests_and_rejects_only_the_expired() {
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(2)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(50));
    let engine = ServeEngine::start(net.clone(), config);
    // Two requests fill max_batch and dispatch together: one already
    // expired, one with plenty of slack.
    let doomed = engine
        .submit_with_deadline(TensorData::random(net.input_shape, 1), Duration::ZERO)
        .unwrap();
    let live = engine
        .submit_with_deadline(
            TensorData::random(net.input_shape, 2),
            Duration::from_secs(60),
        )
        .unwrap();
    assert_eq!(
        doomed.wait_outcome().err(),
        Some(Rejected::DeadlineExceeded)
    );
    let response = live.wait_outcome().expect("the live request is served");
    assert_eq!(
        response.batch_size, 1,
        "the expired member was partitioned out before stacking"
    );
    for (lease, reference) in response.outputs.iter().zip(&reference_outputs(&net, 2)) {
        assert_eq!(lease, reference);
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.deadline_expired, 1);
    assert_eq!(metrics.completed, 1);
    engine.shutdown();
}

#[test]
fn default_deadline_applies_to_plain_submits() {
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_secs(60))
        .with_default_deadline(Duration::ZERO);
    let engine = ServeEngine::start(net.clone(), config);
    let handle = engine.submit(TensorData::zeros(net.input_shape)).unwrap();
    assert_eq!(
        handle.wait_outcome().err(),
        Some(Rejected::DeadlineExceeded)
    );
    assert_eq!(engine.metrics().deadline_expired, 1);
    engine.shutdown();
}

// ------------------------------------------------------- mix-shift replan

#[test]
fn a_traffic_mix_shift_triggers_a_replan_and_responses_stay_bit_identical() {
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1, 4])
        .with_background_reoptimize(false)
        .with_pipeline(PipelineMode::Forced(2))
        .with_adaptation(true)
        .with_adapt_tick(Duration::from_millis(5));
    let mut adapt_config = config;
    adapt_config.adapt.min_window_batches = 4;
    let engine = ServeEngine::start(net.clone(), adapt_config);
    assert!(engine.pipeline_plan().is_some(), "forced mode must plan");
    let references: Vec<Vec<TensorData>> = (0..4).map(|s| reference_outputs(&net, s)).collect();

    let check = |handles: Vec<ios_serve::ResponseHandle>, seeds: &[u64]| {
        for (handle, &seed) in handles.into_iter().zip(seeds) {
            let response = handle.wait_outcome().expect("no deadline configured");
            for (lease, reference) in response.outputs.iter().zip(&references[seed as usize]) {
                assert_eq!(
                    lease, reference,
                    "response diverged from solo execution across an \
                     adaptation-triggered swap (batch {})",
                    response.batch_size
                );
            }
        }
    };

    // Phase 1: singles until the controller plans for batch 1.
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.metrics().replans < 1 {
        assert!(
            Instant::now() < deadline,
            "controller never re-planned for the single-request mix \
             (replans {}, batches {})",
            engine.metrics().replans,
            engine.metrics().batches
        );
        let seed = 1u64;
        let handle = engine
            .submit(TensorData::random(net.input_shape, seed))
            .unwrap();
        check(vec![handle], &[seed]);
    }

    // Phase 2: bursts of max_batch shift the dominant size to 4; the
    // controller must re-plan again, and the swap must stay invisible in
    // the numerics.
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.metrics().replans < 2 {
        assert!(
            Instant::now() < deadline,
            "controller never re-planned after the mix shifted to bursts \
             (replans {})",
            engine.metrics().replans
        );
        let seeds = [0u64, 1, 2, 3];
        let handles: Vec<_> = seeds
            .iter()
            .map(|&s| {
                engine
                    .submit(TensorData::random(net.input_shape, s))
                    .unwrap()
            })
            .collect();
        check(handles, &seeds);
    }

    let metrics = engine.metrics();
    assert!(
        metrics.replans >= 2,
        "one replan per observed dominant size"
    );
    assert!(
        engine.pipeline_plan().is_some(),
        "forced mode keeps a plan installed across replans"
    );
    // The exporter carries the counter.
    let text = engine.prometheus_text();
    assert!(text.contains("ios_adaptation_replans_total"));
    engine.shutdown();
}

// --------------------------------------------------------- regret eviction

/// Reports whatever device time the dial says — the knob that lets a test
/// make measured reality drift away from the optimizer's prediction.
struct DialableDeviceTime {
    device_us: AtomicU64,
}

impl BatchExecutor for DialableDeviceTime {
    fn name(&self) -> &'static str {
        "dialable-device-time"
    }
    fn execute(&self, _ctx: &BatchContext<'_>) -> BatchOutcome {
        BatchOutcome {
            outputs: None,
            device_time_us: self.device_us.load(Ordering::Relaxed) as f64,
        }
    }
}

#[test]
fn schedules_whose_predictions_regret_measured_reality_are_evicted() {
    let net = common::three_block_network();
    let mut config = ServeConfig::default()
        .with_max_batch(1)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_adaptation(true)
        .with_adapt_tick(Duration::from_millis(5))
        .with_regret_threshold(2.0);
    config.adapt.min_window_batches = 4;
    let dial = Arc::new(DialableDeviceTime {
        device_us: AtomicU64::new(100),
    });
    struct Handle(Arc<DialableDeviceTime>);
    impl BatchExecutor for Handle {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome {
            self.0.execute(ctx)
        }
    }
    let engine =
        ServeEngine::start_with_executor(net.clone(), config, Box::new(Handle(Arc::clone(&dial))));

    // Calibration phase: a steady 100 µs per batch teaches the controller
    // the observed/predicted units bridge. Keep submitting until at least
    // one full window has drained (no eviction must happen here).
    let calibration_until = Instant::now() + Duration::from_millis(100);
    while Instant::now() < calibration_until {
        let _ = engine
            .submit(TensorData::zeros(net.input_shape))
            .unwrap()
            .wait_outcome()
            .unwrap();
    }
    assert_eq!(
        engine.metrics().cache.evictions,
        0,
        "a schedule matching its calibrated prediction must not be evicted"
    );

    // Drift phase: measured device time jumps 10× past the calibrated
    // prediction — well over the 2× regret threshold — and the cached
    // batch-1 schedule must fall out.
    dial.device_us.store(1000, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.metrics().cache.evictions == 0 {
        assert!(
            Instant::now() < deadline,
            "regretted schedule was never evicted"
        );
        let _ = engine
            .submit(TensorData::zeros(net.input_shape))
            .unwrap()
            .wait_outcome()
            .unwrap();
    }
    let text = engine.prometheus_text();
    assert!(text.contains("ios_schedule_cache_evictions_total"));
    // The engine keeps serving after the eviction (the next miss simply
    // re-optimizes).
    let response = engine
        .submit(TensorData::zeros(net.input_shape))
        .unwrap()
        .wait_outcome()
        .unwrap();
    assert_eq!(response.batch_size, 1);
    engine.shutdown();
}

// ------------------------------------------------------------------ chaos

/// Delegates everything to the CPU reference backend, but panics inside
/// `prepare_pipeline` on every call after the first — the startup offer
/// succeeds, every adaptation-triggered re-plan blows up mid-swap.
struct PanicOnReplan {
    inner: CpuReferenceExecutor,
    prepares: AtomicU64,
}

impl BatchExecutor for PanicOnReplan {
    fn name(&self) -> &'static str {
        "panic-on-replan"
    }
    fn execute(&self, ctx: &BatchContext<'_>) -> BatchOutcome {
        self.inner.execute(ctx)
    }
    fn can_pipeline(&self) -> bool {
        true
    }
    fn prepare_pipeline(
        &self,
        network: Arc<Network>,
        weights: Arc<NetworkWeights>,
        plan: &PipelinePlan,
    ) -> bool {
        if self.prepares.fetch_add(1, Ordering::SeqCst) == 0 {
            self.inner.prepare_pipeline(network, weights, plan)
        } else {
            panic!("injected fault inside the adaptation-triggered re-plan");
        }
    }
    fn recycle_outputs(&self, outputs: Vec<TensorData>) {
        self.inner.recycle_outputs(outputs);
    }
    fn pool_stats(&self) -> Option<(u64, u64)> {
        Some(self.inner.pool_stats())
    }
}

#[test]
fn a_panicking_replan_leaves_the_old_plan_serving_and_counters_flat() {
    let net = common::three_block_network();
    let mut config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1, 4])
        .with_background_reoptimize(false)
        .with_pipeline(PipelineMode::Forced(2))
        .with_adaptation(true)
        .with_adapt_tick(Duration::from_millis(5))
        // This test isolates the re-plan channel: a sky-high regret
        // threshold keeps CPU timing noise from triggering evictions.
        .with_regret_threshold(1e9);
    config.adapt.min_window_batches = 4;
    let engine = ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(PanicOnReplan {
            inner: CpuReferenceExecutor::new(),
            prepares: AtomicU64::new(0),
        }),
    );
    let startup_plan = engine.pipeline_plan().expect("startup offer succeeded");
    let references: Vec<Vec<TensorData>> = (0..4).map(|s| reference_outputs(&net, s)).collect();

    // Drive singles until the controller attempts (and fails) a re-plan.
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.metrics().replans < 1 {
        assert!(
            Instant::now() < deadline,
            "controller never attempted a re-plan"
        );
        let response = engine
            .submit(TensorData::random(net.input_shape, 1))
            .unwrap()
            .wait_outcome()
            .expect("serving survives the panicking re-plan");
        for (lease, reference) in response.outputs.iter().zip(&references[1]) {
            assert_eq!(lease, reference);
        }
    }

    // The panic was caught: the old plan still serves, bit-identically.
    let surviving_plan = engine.pipeline_plan().expect("old plan must survive");
    assert!(
        Arc::ptr_eq(&startup_plan, &surviving_plan),
        "the panicking swap must not have replaced the plan"
    );
    let before = engine.metrics();
    let (io_fresh_before, _) = engine.io_pool_stats();
    let (exec_fresh_before, _) = engine.executor_pool_stats().expect("cpu pools");
    for seed in 0..4u64 {
        let response = engine
            .submit(TensorData::random(net.input_shape, seed))
            .unwrap()
            .wait_outcome()
            .expect("still serving");
        assert!(
            response.pipelined,
            "forced mode still routes the old pipeline"
        );
        for (lease, reference) in response.outputs.iter().zip(&references[seed as usize]) {
            assert_eq!(lease, reference);
        }
    }
    let after = engine.metrics();
    let (io_fresh_after, _) = engine.io_pool_stats();
    let (exec_fresh_after, _) = engine.executor_pool_stats().expect("cpu pools");
    assert_eq!(
        io_fresh_after, io_fresh_before,
        "serving-boundary pool stays steady across caught re-plan panics"
    );
    assert_eq!(
        exec_fresh_after, exec_fresh_before,
        "executor pool stays steady across caught re-plan panics"
    );
    assert_eq!(
        after.cache.background_inserts, before.cache.background_inserts,
        "no background insert sneaks in (the dominant size was prewarmed)"
    );
    assert_eq!(after.cache.evictions, 0, "nothing was evicted");
    assert_eq!(
        after.cache.entries, before.cache.entries,
        "cache stays flat"
    );
    engine.shutdown();
}

// -------------------------------------------------- shed latch regression

/// Burns a fixed wall-clock interval per batch, like the overload suite's
/// slow executor — the knob that makes queue waits blow past the shed
/// budget deterministically.
struct SleepyExecutor {
    batch_time: Duration,
}

impl BatchExecutor for SleepyExecutor {
    fn name(&self) -> &'static str {
        "sleepy"
    }
    fn execute(&self, _ctx: &BatchContext<'_>) -> BatchOutcome {
        std::thread::sleep(self.batch_time);
        BatchOutcome {
            outputs: None,
            device_time_us: self.batch_time.as_micros() as f64,
        }
    }
}

/// Regression for the shed-mode latch: a post-overload *trickle* — enough
/// queued work to keep the queue non-empty at every tick, never enough to
/// fill a window — used to keep shed mode engaged forever. The idle clause
/// requires an empty queue and the hysteresis clause requires a full
/// window, so a single parked request starved both disengage paths. The
/// stale-tick clause must now disengage after
/// `shed_stale_ticks` sample-free ticks.
#[test]
fn shed_mode_disengages_under_a_trickle_that_never_fills_a_window() {
    let net = common::three_block_network();
    let batch_time = Duration::from_millis(20);
    // max_wait is a full minute: a lone queued request never flushes on
    // its own, pinning the queue depth at 1 for as long as the test runs.
    let mut config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_secs(60))
        .with_prewarm_batches(vec![1, 4])
        .with_background_reoptimize(false)
        .with_adaptation(true)
        .with_adapt_tick(Duration::from_millis(100))
        .with_shed_queue_wait_budget(Duration::from_millis(2))
        .with_regret_threshold(1e9);
    config.adapt.min_window_batches = 4;
    config.adapt.shed_stale_ticks = 3;
    let engine = ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(SleepyExecutor { batch_time }),
    );
    assert!(!engine.is_shedding(), "a fresh engine starts permissive");

    // Overload phase: 32 requests (an exact multiple of max_batch, so the
    // queue drains in full batches with no partial leftover) against a
    // 20 ms server. Queue waits reach ~7 batch times, far past the 2 ms
    // budget, and the controller must engage shed mode mid-drain.
    let burst: Vec<_> = (0..32)
        .map(|i| {
            engine
                .submit(TensorData::random(net.input_shape, i))
                .expect("admission is unbounded before shed mode engages")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    while !engine.is_shedding() {
        assert!(
            Instant::now() < deadline,
            "shed mode never engaged under the burst (batches {})",
            engine.metrics().batches
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Park one request. Shed mode caps the (sole) tenant at one batch's
    // worth, and the burst drains four-at-a-time, so the retry loop can
    // only land this request on an *empty* queue — where, at 1 < max_batch
    // with a 60 s max_wait, it sits parked indefinitely.
    let parked = loop {
        match engine.submit(TensorData::random(net.input_shape, 999)) {
            Ok(handle) => break handle,
            Err(ios_serve::ServeError::Rejected(Rejected::Shed)) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    };
    for handle in burst {
        handle.wait_outcome().expect("burst requests complete");
    }

    // The queue now holds exactly the parked request: no window ever
    // reaches min_window_batches again and the queue never drains empty.
    // Pre-fix both disengage clauses are starved and shed mode stays
    // latched forever; the stale-tick clause must release it within a few
    // ticks.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.is_shedding() {
        assert!(
            Instant::now() < deadline,
            "shed mode stayed latched under a trickle: the queue is \
             occupied (depth {}) but no window ever fills, and the \
             stale-tick clause never disengaged it",
            engine.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        engine.queue_depth(),
        1,
        "the parked request kept the queue occupied throughout"
    );
    let parked = match parked.try_wait() {
        Err(still_pending) => still_pending,
        Ok(outcome) => panic!(
            "the parked request must still be pending when shed mode \
             releases, but it resolved to {outcome:?}"
        ),
    };
    // Admission is permissive again: a fresh offer is accepted, not shed.
    let follow_up = engine
        .submit(TensorData::random(net.input_shape, 1000))
        .expect("admission recovered after the stale-tick disengage");
    // Shutdown flushes the two parked requests as a final partial batch.
    engine.shutdown();
    let parked = match parked.try_wait() {
        Ok(outcome) => outcome,
        Err(handle) => handle.wait_outcome(),
    };
    parked.expect("shutdown flushes the parked request");
    follow_up.wait_outcome().expect("and the follow-up");
}

// -------------------------------------- phantom dominant size regression

/// Regression for the histogram-mode phantom: batch-size histogram buckets
/// are exact only below 64, so a window of batch-96 dispatches reports its
/// log-bucket representative 97 as the mode — a batch size that was never
/// dispatched and (with `max_batch = 96`) never can be. The controller
/// used to optimize and cache a schedule for that phantom size on every
/// mix shift; it must snap the dominant size to a dispatchable one.
#[test]
fn a_replan_never_caches_a_schedule_for_a_phantom_batch_size() {
    let net = common::three_block_network();
    let mut config = ServeConfig::default()
        .with_max_batch(96)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(200))
        .with_prewarm_batches(vec![96])
        .with_background_reoptimize(false)
        .with_adaptation(true)
        .with_adapt_tick(Duration::from_millis(5))
        .with_regret_threshold(1e9);
    config.adapt.min_window_batches = 1;
    // A metrics-only executor keeps batch-96 dispatches cheap: this test
    // watches the controller, not the numerics.
    let engine = ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(DialableDeviceTime {
            device_us: AtomicU64::new(100),
        }),
    );
    assert_eq!(
        engine.metrics().cache.entries,
        1,
        "exactly the prewarmed batch-96 schedule is cached at startup"
    );

    // Drive full batches of 96 until the controller re-plans for the
    // observed mix. Submission is microseconds against a 200 ms max_wait,
    // so every dispatch is a full batch of exactly 96.
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.metrics().replans < 1 {
        assert!(
            Instant::now() < deadline,
            "controller never re-planned for the batch-96 mix (batches {})",
            engine.metrics().batches
        );
        let handles: Vec<_> = (0..96)
            .map(|i| {
                engine
                    .submit(TensorData::random(net.input_shape, i))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait_outcome().expect("no deadline configured");
        }
    }
    // Let a few more ticks elapse on the same mix: a phantom dominant
    // would churn the cache on each of them.
    std::thread::sleep(Duration::from_millis(50));

    let metrics = engine.metrics();
    assert!(metrics.replans >= 1, "the mix shift was observed");
    assert_eq!(
        metrics.cache.background_inserts, 0,
        "the dominant size must snap to the (already cached) batch 96 — \
         a background insert means the controller optimized a schedule \
         for a phantom batch size no dispatch can ever use"
    );
    assert_eq!(
        metrics.cache.entries, 1,
        "the cache still holds exactly the prewarmed batch-96 schedule"
    );
    engine.shutdown();
}
