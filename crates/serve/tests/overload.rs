//! The overload suite: what happens when offered load exceeds capacity.
//!
//! A deliberately slow executor makes saturation deterministic, and the
//! suite pins the two halves of the load-shedding story:
//!
//! * **without shedding**, an open-loop burst far beyond capacity sends
//!   tail latency through the roof — queue wait accumulates linearly in
//!   the backlog;
//! * **with bounded admission**, the accounting is exact even under
//!   racing submitters (`accepted + shed == offered`, queue depth never
//!   exceeds the cap), every accepted request completes, the p99 of
//!   accepted requests stays bounded, and — on the real CPU backend —
//!   accepted responses remain **bit-identical** to solo execution;
//! * **shed mode** driven by the windowed p95 queue wait engages under
//!   sustained overload and disengages again once the system drains idle.

use ios_backend::{execute_network, TensorData};
use ios_serve::{
    BatchContext, BatchExecutor, BatchOutcome, Rejected, ServeConfig, ServeEngine, ServeError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common {
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};

    pub fn three_block_network() -> Network {
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("over_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("over_b1", block0.graph.output_shapes());
        let x = b.input(0);
        let d = b.conv2d("d", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let block1 = Block::new(b.build(vec![d]));
        let mut b = GraphBuilder::with_inputs("over_b2", block1.graph.output_shapes());
        let x = b.input(0);
        let e = b.conv2d("e", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let block2 = Block::new(b.build(vec![e]));
        Network::new("over_net", input, vec![block0, block1, block2])
    }
}

/// Burns a fixed wall-clock interval per batch — the knob that makes
/// "offered load exceeds capacity" a deterministic property instead of a
/// CI-machine coin flip. Returns no outputs (latency study only).
struct SlowExecutor {
    batch_time: Duration,
}

impl BatchExecutor for SlowExecutor {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn execute(&self, _ctx: &BatchContext<'_>) -> BatchOutcome {
        std::thread::sleep(self.batch_time);
        BatchOutcome {
            outputs: None,
            device_time_us: self.batch_time.as_micros() as f64,
        }
    }
}

// ------------------------------------------------ no shedding: p99 grows

#[test]
fn without_shedding_an_overload_burst_sends_tail_latency_through_the_roof() {
    let net = common::three_block_network();
    let batch_time = Duration::from_millis(5);
    let config = ServeConfig::default()
        .with_max_batch(1)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false);
    let engine = ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(SlowExecutor { batch_time }),
    );
    // Open-loop burst: 64 requests land instantly on a server that needs
    // 5 ms each. The last one waits ~63 batch times in the queue.
    let handles: Vec<_> = (0..64)
        .map(|i| {
            engine
                .submit(TensorData::random(net.input_shape, i))
                .expect("unbounded admission accepts everything")
        })
        .collect();
    for handle in handles {
        handle.wait_outcome().expect("no deadline, no shedding");
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.completed, 64);
    assert_eq!(metrics.shed, 0);
    assert!(
        metrics.max_latency_us >= 10.0 * batch_time.as_micros() as f64,
        "the backlog must dominate latency (max {} µs vs batch {} µs)",
        metrics.max_latency_us,
        batch_time.as_micros()
    );
    assert!(
        metrics.p99_latency_us > metrics.p50_latency_us,
        "open-loop overload skews the tail"
    );
    engine.shutdown();
}

// --------------------------------- bounded admission: exact accounting

#[test]
fn bounded_admission_accounting_is_exact_under_racing_submitters() {
    let net = common::three_block_network();
    // Capacity below the client count: 8 closed-loop clients can have 8
    // offers racing at once, so a 3-deep queue must turn some away.
    let capacity = 3;
    let config = ServeConfig::default()
        .with_max_batch(1)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_admission_capacity(capacity);
    let engine = Arc::new(ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(SlowExecutor {
            batch_time: Duration::from_millis(3),
        }),
    ));
    let offered = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let accepted_and_answered = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..8)
        .map(|client| {
            let engine = Arc::clone(&engine);
            let net = net.clone();
            let offered = Arc::clone(&offered);
            let shed = Arc::clone(&shed);
            let answered = Arc::clone(&accepted_and_answered);
            std::thread::spawn(move || {
                for round in 0..12u64 {
                    offered.fetch_add(1, Ordering::SeqCst);
                    match engine.submit(TensorData::random(net.input_shape, client * 31 + round)) {
                        Ok(handle) => {
                            handle.wait_outcome().expect("accepted requests complete");
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::Rejected(Rejected::Shed)) => {
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    let offered = offered.load(Ordering::SeqCst);
    let shed = shed.load(Ordering::SeqCst);
    let answered = accepted_and_answered.load(Ordering::SeqCst);
    assert_eq!(offered, 96);
    assert_eq!(
        answered + shed,
        offered,
        "every offer is either answered or typed-shed — none vanish"
    );
    let metrics = engine.metrics();
    assert_eq!(metrics.shed, shed, "the shed counter matches client truth");
    assert_eq!(metrics.completed, answered);
    assert!(
        shed > 0,
        "8 racing clients against a capacity-3 queue and a 3 ms server \
         must overflow admission at least once"
    );
    let text = engine.prometheus_text();
    assert!(text.contains("ios_requests_shed_total"));
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("clients joined"))
        .shutdown();
}

// ----------------------------------------- shed mode: engage, disengage

#[test]
fn shed_mode_engages_under_sustained_overload_and_disengages_when_idle() {
    let net = common::three_block_network();
    // 5 ms per batch against a 50 ms controller tick: each window holds
    // ~10 dispatches, comfortably past min_window_batches, and a 20-deep
    // feeder makes queue waits dwarf the 2 ms budget.
    let batch_time = Duration::from_millis(5);
    let mut config = ServeConfig::default()
        .with_max_batch(1)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_adapt_tick(Duration::from_millis(50))
        .with_shed_queue_wait_budget(Duration::from_millis(2));
    config.adapt.min_window_batches = 4;
    let engine = Arc::new(ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(SlowExecutor { batch_time }),
    ));
    assert!(!engine.is_shedding(), "a fresh engine starts permissive");

    // Sustained overload: a feeder keeps ~20 requests in flight against a
    // 5 ms/batch server, so queue waits blow way past the 2 ms budget and
    // the controller must engage shed mode.
    let stop = Arc::new(AtomicU64::new(0));
    let feeder = {
        let engine = Arc::clone(&engine);
        let net = net.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut handles = Vec::new();
            let mut seed = 0u64;
            while stop.load(Ordering::SeqCst) == 0 {
                while handles.len() < 20 {
                    seed += 1;
                    match engine.submit(TensorData::random(net.input_shape, seed)) {
                        Ok(h) => handles.push(h),
                        Err(ServeError::Rejected(Rejected::Shed)) => break,
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                // Keep only the handles still pending (try_wait hands the
                // handle back while the answer is outstanding).
                handles = handles
                    .into_iter()
                    .filter_map(|h| h.try_wait().err())
                    .collect();
                std::thread::sleep(Duration::from_millis(1));
            }
            // Drain what is still in flight so shutdown is clean.
            for h in handles {
                let _ = h.wait_outcome();
            }
        })
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while !engine.is_shedding() {
        assert!(
            Instant::now() < deadline,
            "shed mode never engaged under sustained overload \
             (queue depth {}, batches {})",
            engine.queue_depth(),
            engine.metrics().batches
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // Shed mode is engaged and the queue still holds ~100 ms of backlog:
    // a fresh offer must be turned away with the typed rejection.
    match engine.submit(TensorData::random(net.input_shape, 999)) {
        Err(ServeError::Rejected(Rejected::Shed)) => {}
        other => panic!("expected a typed shed rejection, got {other:?}"),
    }
    stop.store(1, Ordering::SeqCst);
    feeder.join().expect("feeder thread");

    // Load is gone; once the queue drains, the idle clause must disengage
    // shed mode within a few ticks even though no new samples arrive.
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.is_shedding() {
        assert!(
            Instant::now() < deadline,
            "shed mode never disengaged after the system drained idle \
             (queue depth {})",
            engine.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let metrics = engine.metrics();
    assert!(
        metrics.shed >= 1,
        "the shed counter must record the rejected offer"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("feeder joined"))
        .shutdown();
}

// ------------------------------ bit-identity of accepted work, overload

#[test]
fn accepted_responses_stay_bit_identical_under_overload() {
    let net = common::three_block_network();
    // Real CPU backend this time: small admission capacity guarantees
    // shedding, and every response that does come back must match solo
    // execution exactly.
    let config = ServeConfig::default()
        .with_max_batch(2)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1, 2])
        .with_background_reoptimize(false)
        .with_admission_capacity(2);
    let engine = Arc::new(ServeEngine::start(net.clone(), config));
    let references: Vec<Vec<TensorData>> = (0..8)
        .map(|seed| {
            let input = TensorData::random(net.input_shape, seed);
            execute_network(&net, std::slice::from_ref(&input))
        })
        .collect();
    let offered = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let answered = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..6)
        .map(|client| {
            let engine = Arc::clone(&engine);
            let net = net.clone();
            let references = references.clone();
            let offered = Arc::clone(&offered);
            let shed = Arc::clone(&shed);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                for round in 0..25u64 {
                    let seed = (client * 31 + round) % 8;
                    offered.fetch_add(1, Ordering::SeqCst);
                    match engine.submit(TensorData::random(net.input_shape, seed)) {
                        Ok(handle) => {
                            let response =
                                handle.wait_outcome().expect("accepted requests complete");
                            for (lease, reference) in
                                response.outputs.iter().zip(&references[seed as usize])
                            {
                                assert_eq!(
                                    lease, reference,
                                    "overload must shed work, never corrupt it \
                                     (client {client}, round {round})"
                                );
                            }
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::Rejected(Rejected::Shed)) => {
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    let offered = offered.load(Ordering::SeqCst);
    let shed = shed.load(Ordering::SeqCst);
    let answered = answered.load(Ordering::SeqCst);
    assert_eq!(answered + shed, offered, "exact conservation of offers");
    let metrics = engine.metrics();
    assert_eq!(metrics.completed, answered);
    assert_eq!(metrics.shed, shed);
    assert_eq!(
        metrics.cache.hits + metrics.cache.misses,
        metrics.batches,
        "every dispatched batch resolved a schedule"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("clients joined"))
        .shutdown();
}
