//! The multi-tenant admission suite: weighted-fair scheduling, per-tenant
//! quotas, and the tenant dimension of the metrics surface.
//!
//! * **fairness** — racing closed-loop submitters for a weight-3 and a
//!   weight-1 tenant share a saturated single-worker server in proportion
//!   to their weights;
//! * **quotas** — a token-bucket-limited tenant admits *exactly* its burst
//!   under racing submitters (the bucket is spent inside the queue lock),
//!   its overflow is turned away with the typed [`Rejected::Shed`], and an
//!   unlimited tenant riding alongside is untouched;
//! * **isolation of numerics** — responses stay bit-identical to solo
//!   [`execute_network`] runs regardless of which tenant submitted, and
//!   anonymous [`ServeEngine::submit`] traffic lands on the `default`
//!   tenant;
//! * **export** — per-tenant completed/shed/queue-wait series reach the
//!   Prometheus exposition as `ios_tenant_*{tenant="…"}` families that
//!   round-trip through the telemetry validator.

use ios_backend::{execute_network, TensorData};
use ios_serve::{
    BatchContext, BatchExecutor, BatchOutcome, MetricsSnapshot, Rejected, ServeConfig, ServeEngine,
    ServeError, TenantConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common {
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};

    /// The three-block chain the other serving suites stress: small enough
    /// for CI, deep enough to have real per-batch schedules.
    pub fn three_block_network() -> Network {
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("ten_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("ten_b1", block0.graph.output_shapes());
        let x = b.input(0);
        let d = b.conv2d("d", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let block1 = Block::new(b.build(vec![d]));
        let mut b = GraphBuilder::with_inputs("ten_b2", block1.graph.output_shapes());
        let x = b.input(0);
        let e = b.conv2d("e", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let block2 = Block::new(b.build(vec![e]));
        Network::new("ten_net", input, vec![block0, block1, block2])
    }
}

/// Burns a fixed wall-clock interval per batch — saturates a worker
/// deterministically so fairness is decided by the dequeue policy, not by
/// execution noise (latency study only; returns no outputs).
struct PacedExecutor {
    batch_time: Duration,
}

impl BatchExecutor for PacedExecutor {
    fn name(&self) -> &'static str {
        "paced"
    }
    fn execute(&self, _ctx: &BatchContext<'_>) -> BatchOutcome {
        std::thread::sleep(self.batch_time);
        BatchOutcome {
            outputs: None,
            device_time_us: self.batch_time.as_micros() as f64,
        }
    }
}

fn tenant_snapshot<'a>(
    snapshot: &'a MetricsSnapshot,
    tenant: &str,
) -> &'a ios_serve::TenantMetricsSnapshot {
    snapshot
        .tenants
        .iter()
        .find(|t| t.tenant == tenant)
        .unwrap_or_else(|| {
            panic!(
                "tenant {tenant} missing from snapshot: {:?}",
                snapshot.tenants
            )
        })
}

// ------------------------------------------------------ weighted fairness

#[test]
fn a_saturated_server_divides_throughput_by_tenant_weight() {
    let net = common::three_block_network();
    // One worker, 2 ms per single-request batch: the server is the
    // bottleneck, both lanes stay backlogged, and every dispatch decision
    // is a pure weighted-fair-queuing choice between the two tenants.
    let config = ServeConfig::default()
        .with_max_batch(1)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_tenant("heavy", TenantConfig::default().with_weight(3))
        .with_tenant("light", TenantConfig::default().with_weight(1));
    let engine = Arc::new(ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(PacedExecutor {
            batch_time: Duration::from_millis(2),
        }),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    // One closed-loop feeder per tenant keeps 8 requests outstanding, so
    // neither lane ever runs dry while the measurement is taken.
    let feeders: Vec<_> = ["heavy", "light"]
        .into_iter()
        .map(|tenant| {
            let engine = Arc::clone(&engine);
            let net = net.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut outstanding = Vec::new();
                let mut seed = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    while outstanding.len() < 8 {
                        seed += 1;
                        let handle = engine
                            .submit_for_tenant(tenant, TensorData::random(net.input_shape, seed))
                            .expect("admission is unbounded and unmetered");
                        outstanding.push(handle);
                    }
                    outstanding = outstanding
                        .into_iter()
                        .filter_map(|h| h.try_wait().err())
                        .collect();
                    std::thread::sleep(Duration::from_micros(500));
                }
                for handle in outstanding {
                    let _ = handle.wait_outcome();
                }
            })
        })
        .collect();

    // Measure once 400 weighted-fair decisions have been made.
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.metrics().completed < 400 {
        assert!(
            Instant::now() < deadline,
            "the server never reached 400 completions (completed {})",
            engine.metrics().completed
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let snapshot = engine.metrics();
    stop.store(true, Ordering::SeqCst);
    for feeder in feeders {
        feeder.join().expect("feeder thread");
    }

    let heavy = tenant_snapshot(&snapshot, "heavy").completed;
    let light = tenant_snapshot(&snapshot, "light").completed;
    assert!(light > 0, "the weight-1 tenant must not be starved");
    let ratio = heavy as f64 / light as f64;
    assert!(
        (2.4..=3.6).contains(&ratio),
        "a 3:1 weight split must yield ~3:1 throughput on a saturated \
         server (heavy {heavy}, light {light}, ratio {ratio:.2})"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("feeders joined"))
        .shutdown();
}

// ------------------------------------------------- quotas under the race

#[test]
fn a_token_bucket_admits_exactly_its_burst_and_spares_the_neighbor() {
    let net = common::three_block_network();
    // The metered tenant gets a burst of 5 and a refill rate so slow it
    // contributes nothing on the test's time scale: admission must come
    // out to *exactly* 5 no matter how the 8 submitters race. The free
    // tenant carries no bucket at all.
    let config = ServeConfig::default()
        .with_max_batch(8)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_tenant("metered", TenantConfig::default().with_rate(1e-9, 5.0))
        .with_tenant("free", TenantConfig::default());
    let engine = Arc::new(ServeEngine::start_with_executor(
        net.clone(),
        config,
        Box::new(PacedExecutor {
            batch_time: Duration::from_millis(1),
        }),
    ));
    let accepted = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for client in 0..8u64 {
            let engine = Arc::clone(&engine);
            let net = net.clone();
            let accepted = Arc::clone(&accepted);
            let shed = Arc::clone(&shed);
            scope.spawn(move || {
                for round in 0..10u64 {
                    match engine.submit_for_tenant(
                        "metered",
                        TensorData::random(net.input_shape, client * 31 + round),
                    ) {
                        Ok(handle) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            handle.wait_outcome().expect("accepted requests complete");
                        }
                        Err(ServeError::Rejected(Rejected::Shed)) => {
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
            });
        }
    });
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        5,
        "the bucket must admit exactly its burst under racing submitters"
    );
    assert_eq!(shed.load(Ordering::SeqCst), 75, "everything else is shed");

    // The neighbor's admission is untouched by the metered tenant burning
    // through its quota.
    let free_handles: Vec<_> = (0..10)
        .map(|i| {
            engine
                .submit_for_tenant("free", TensorData::random(net.input_shape, i))
                .expect("an unmetered tenant is never rate-limited")
        })
        .collect();
    for handle in free_handles {
        handle
            .wait_outcome()
            .expect("free-tenant requests complete");
    }

    let snapshot = engine.metrics();
    let metered = tenant_snapshot(&snapshot, "metered");
    assert_eq!(metered.completed, 5);
    assert_eq!(
        metered.shed, 75,
        "the per-tenant shed counter matches client truth"
    );
    let free = tenant_snapshot(&snapshot, "free");
    assert_eq!(free.completed, 10);
    assert_eq!(free.shed, 0, "the over-quota tenant is the one shed");
    assert_eq!(
        snapshot.shed, 75,
        "the engine-wide counter aggregates the per-tenant ones"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("scope joined"))
        .shutdown();
}

// -------------------------------------------- numerics across the tenants

#[test]
fn tenant_responses_stay_bit_identical_to_solo_execution() {
    let net = common::three_block_network();
    // Real CPU backend: interleaved traffic from two named tenants plus
    // anonymous submits, every response checked against solo references.
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1, 4])
        .with_background_reoptimize(false)
        .with_tenant("alpha", TenantConfig::default().with_weight(2))
        .with_tenant("beta", TenantConfig::default());
    let engine = ServeEngine::start(net.clone(), config);
    let references: Vec<Vec<TensorData>> = (0..4)
        .map(|seed| {
            let input = TensorData::random(net.input_shape, seed);
            execute_network(&net, std::slice::from_ref(&input))
        })
        .collect();
    for round in 0..4u64 {
        let submits: Vec<(Option<&str>, u64)> = vec![
            (Some("alpha"), round % 4),
            (Some("beta"), (round + 1) % 4),
            (None, (round + 2) % 4),
        ];
        let handles: Vec<_> = submits
            .iter()
            .map(|&(tenant, seed)| {
                let input = TensorData::random(net.input_shape, seed);
                let handle = match tenant {
                    Some(name) => engine.submit_for_tenant(name, input),
                    None => engine.submit(input),
                };
                (handle.expect("no quotas configured"), seed)
            })
            .collect();
        for (handle, seed) in handles {
            let response = handle.wait_outcome().expect("no deadline configured");
            for (lease, reference) in response.outputs.iter().zip(&references[seed as usize]) {
                assert_eq!(
                    lease, reference,
                    "a tenant's response diverged from solo execution \
                     (round {round}, seed {seed})"
                );
            }
        }
    }
    let snapshot = engine.metrics();
    assert_eq!(tenant_snapshot(&snapshot, "alpha").completed, 4);
    assert_eq!(tenant_snapshot(&snapshot, "beta").completed, 4);
    assert_eq!(
        tenant_snapshot(&snapshot, "default").completed,
        4,
        "anonymous submits land on the default tenant"
    );
    assert_eq!(snapshot.completed, 12);
    engine.shutdown();
}

// ----------------------------------------------------- labelled exposition

#[test]
fn prometheus_export_carries_labelled_tenant_series_and_validates() {
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_tenant("alpha", TenantConfig::default())
        .with_tenant("metered", TenantConfig::default().with_rate(1e-9, 1.0));
    let engine = ServeEngine::start(net.clone(), config);
    for seed in 0..3 {
        engine
            .submit_for_tenant("alpha", TensorData::random(net.input_shape, seed))
            .unwrap()
            .wait_outcome()
            .expect("alpha is unmetered");
    }
    // One offer fits the burst, the second exhausts it.
    engine
        .submit_for_tenant("metered", TensorData::random(net.input_shape, 9))
        .unwrap()
        .wait_outcome()
        .expect("the first offer fits the burst");
    match engine.submit_for_tenant("metered", TensorData::random(net.input_shape, 10)) {
        Err(ServeError::Rejected(Rejected::Shed)) => {}
        other => panic!("expected a typed shed rejection, got {other:?}"),
    }

    let text = engine.prometheus_text();
    assert!(
        text.contains(r#"ios_tenant_requests_completed_total{tenant="alpha"} 3"#),
        "labelled completed counter missing:\n{text}"
    );
    assert!(
        text.contains(r#"ios_tenant_requests_shed_total{tenant="metered"} 1"#),
        "labelled shed counter missing:\n{text}"
    );
    assert!(
        text.contains(r#"ios_tenant_queue_wait_us_sum{tenant="alpha"}"#),
        "labelled queue-wait histogram missing:\n{text}"
    );
    let series = ios_telemetry::prometheus::validate(&text)
        .expect("the tenant-labelled exposition must round-trip the validator");
    assert!(series > 0, "the exposition is non-empty");
    engine.shutdown();
}
