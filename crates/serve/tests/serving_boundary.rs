//! End-to-end serving invariants: responses bit-identical to solo
//! `execute_graph`-style runs, schedule-cache counters advancing, and a
//! fully allocation-free steady-state serving boundary — request in,
//! response lease dropped, every pooled buffer back home.

use ios_backend::{execute_network, TensorData};
use ios_serve::{
    CostModelKind, CpuReferenceExecutor, ResponseHandle, ResponseLease, ServeConfig, ServeEngine,
};
use std::time::{Duration, Instant};

/// A two-block network with mergeable branches so the served schedules can
/// exercise both concurrent and operator-merge stages.
fn serve_network() -> ios_ir::Network {
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, PoolParams, TensorShape};
    let input = TensorShape::new(1, 8, 10, 10);
    let mut b = GraphBuilder::new("boundary_b0", input);
    let x = b.input(0);
    let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let c = b.conv2d("c", x, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
    let p = b.pool("p", x, PoolParams::max((2, 2), (1, 1), (0, 0)));
    let cat = b.concat("cat", &[a, c]);
    let block0 = Block::new(b.build(vec![cat, p]));

    let shapes = block0.graph.output_shapes();
    let mut b = GraphBuilder::with_inputs("boundary_b1", shapes);
    let x0 = b.input(0);
    let x1 = b.input(1);
    let d = b.conv2d("d", x0, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let e = b.conv2d("e", x1, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
    let block1 = Block::new(b.build(vec![d, e]));
    Network::new("boundary_net", input, vec![block0, block1])
}

/// Dynamic batching must not perturb numerics: every response of a
/// coalesced batch is bit-identical to running its sample alone through
/// the sequential reference executor.
#[test]
fn batched_responses_are_bit_identical_to_solo_runs() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(4)
            .with_workers(1)
            .with_max_wait(Duration::from_millis(30)),
    );
    let samples: Vec<TensorData> = (0..8)
        .map(|i| TensorData::random(net.input_shape, 400 + i))
        .collect();
    let handles: Vec<_> = samples
        .iter()
        .map(|s| engine.submit(s.clone()).unwrap())
        .collect();
    let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();

    for (sample, response) in samples.iter().zip(&responses) {
        let reference = execute_network(&net, std::slice::from_ref(sample));
        assert_eq!(response.outputs.len(), reference.len());
        for (leased, expected) in response.outputs.iter().zip(&reference) {
            assert_eq!(
                leased, expected,
                "served output must be bit-identical to the solo reference run"
            );
        }
    }
    assert!(
        responses.iter().any(|r| r.batch_size > 1),
        "load this deep must coalesce"
    );
    engine.shutdown();
}

/// Repeat traffic at a pre-warmed batch size must be served from the
/// schedule cache — the hit counter advances, nothing is re-optimized.
#[test]
fn schedule_cache_hits_advance_under_repeat_traffic() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(2)
            .with_workers(1)
            .with_prewarm_batches(vec![1])
            .with_background_reoptimize(false)
            .with_max_wait(Duration::from_millis(1)),
    );
    for i in 0..4 {
        let _ = engine
            .infer(TensorData::random(net.input_shape, 900 + i))
            .unwrap();
    }
    let stats = engine.metrics().cache;
    assert!(
        stats.hits >= 4,
        "every lone request hits the pre-warmed batch-1 schedule (hits = {})",
        stats.hits
    );
    assert_eq!(stats.misses, 0, "pre-warmed traffic never misses");
    engine.shutdown();
}

/// The full serving boundary is allocation-free in steady state: after a
/// warm-up request, neither the engine's io pool (stacked inputs + leased
/// responses) nor the backend's scratch pool (op loop + stacked outputs)
/// allocates fresh buffers, as long as clients drop their leases. A single
/// dispatch worker and a single sample worker make the pools' take/recycle
/// sequences deterministic.
#[test]
fn steady_state_serving_boundary_is_allocation_free() {
    let net = serve_network();
    let engine = ServeEngine::start_with_executor(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(1)
            .with_workers(1)
            .with_prewarm_batches(vec![1])
            .with_background_reoptimize(false)
            .with_max_wait(Duration::from_millis(1)),
        Box::new(CpuReferenceExecutor::with_max_workers(1)),
    );

    // Warm-up: fills both pools and the merged-weight cache.
    for i in 0..3 {
        let response = engine
            .infer(TensorData::random(net.input_shape, 70 + i))
            .unwrap();
        assert_eq!(response.outputs.len(), 2);
        // Leases drop here, returning their buffers to the io pool.
    }
    let (io_fresh, _) = engine.io_pool_stats();
    let (exec_fresh, _) = engine
        .executor_pool_stats()
        .expect("the CPU backend reports pool stats");
    assert!(io_fresh > 0, "warm-up fills the io pool");
    assert!(exec_fresh > 0, "warm-up fills the executor pool");

    let reference = engine
        .infer(TensorData::random(net.input_shape, 7))
        .unwrap();
    let expected: Vec<TensorData> = reference
        .outputs
        .iter()
        .map(|lease| lease.tensor().clone())
        .collect();
    drop(reference);

    for round in 0..5 {
        let response = engine
            .infer(TensorData::random(net.input_shape, 7))
            .unwrap();
        for (leased, want) in response.outputs.iter().zip(&expected) {
            assert_eq!(leased, want, "round {round}: steady state is deterministic");
        }
        drop(response);
        let (io_now, io_reuses) = engine.io_pool_stats();
        let (exec_now, exec_reuses) = engine.executor_pool_stats().unwrap();
        assert_eq!(
            io_now, io_fresh,
            "round {round}: the serving boundary must not allocate fresh io buffers"
        );
        assert_eq!(
            exec_now, exec_fresh,
            "round {round}: the backend must not allocate fresh scratch buffers"
        );
        assert!(io_reuses > 0);
        assert!(exec_reuses > 0);
    }
    engine.shutdown();
}

/// Profile-guided serving: an engine whose scheduler *measures* candidate
/// stages on the CPU backend (instead of simulating a GPU) serves
/// responses bit-identical to the sequential reference, and its background
/// re-optimizer inserts a profiled schedule for an uncached batch size
/// (observed through the cache's background-insert counter).
#[test]
fn cpu_profiled_engine_serves_bit_identically_and_reoptimizes_in_background() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_cost_model(CostModelKind::CpuProfiled)
            .with_max_batch(4)
            .with_workers(1)
            .with_prewarm_batches(vec![4])
            .with_background_reoptimize(true)
            .with_max_wait(Duration::from_millis(1)),
    );

    // A lone request: batch 1 has no exact schedule, so it is served by
    // the pre-warmed (profiled) batch-4 schedule and kicks off background
    // re-optimization — which profiles on the CPU backend too.
    let sample = TensorData::random(net.input_shape, 2024);
    let response = engine.infer(sample.clone()).unwrap();
    let reference = execute_network(&net, std::slice::from_ref(&sample));
    assert_eq!(response.outputs.len(), reference.len());
    for (leased, expected) in response.outputs.iter().zip(&reference) {
        assert_eq!(
            leased, expected,
            "profiled-schedule output must be bit-identical to the reference"
        );
    }

    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.metrics().cache.background_inserts == 0 {
        assert!(
            Instant::now() < deadline,
            "background re-optimization against the profiled model never completed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        engine.metrics().cache.background_inserts >= 1,
        "the re-optimizer must insert a profiled schedule"
    );

    // Serving with the freshly profiled exact schedule is still exact.
    let again = engine.infer(sample.clone()).unwrap();
    for (leased, expected) in again.outputs.iter().zip(&reference) {
        assert_eq!(leased, expected);
    }
    engine.shutdown();
}

/// A detached lease keeps its tensor alive independently of the engine,
/// and cloning a response detaches the copies.
#[test]
fn leases_can_be_detached_and_cloned() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(1)
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1)),
    );
    let response = engine
        .infer(TensorData::random(net.input_shape, 123))
        .unwrap();
    let cloned = response.clone();
    let mut tensors: Vec<TensorData> = Vec::new();
    for lease in response.outputs {
        tensors.push(lease.into_tensor());
    }
    engine.shutdown();
    // Both the detached tensors and the cloned response outlive the engine.
    for (owned, leased) in tensors.iter().zip(&cloned.outputs) {
        assert_eq!(leased, owned);
        assert!(owned.shape.num_elements() > 0);
    }
}

/// Clone-detach semantics are drop-order independent: dropping the pooled
/// original before or after its detached clone leaves the clone intact,
/// and a still-pooled lease survives the engine itself (its buffer returns
/// to the pool the lease holds alive, whenever the client lets go).
#[test]
fn lease_clones_survive_any_drop_order_and_leases_outlive_the_engine() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(1)
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1)),
    );
    let sample = TensorData::random(net.input_shape, 321);
    let reference = execute_network(&net, std::slice::from_ref(&sample));

    // Original dropped first: the buffer returns to the pool while the
    // detached clone keeps its own copy.
    let mut response = engine.infer(sample.clone()).unwrap();
    let original: ResponseLease = response.outputs.remove(0);
    let clone = original.clone();
    drop(original);
    assert_eq!(clone, reference[0]);

    // Clone dropped first: the pooled original stays readable.
    let mut response = engine.infer(sample.clone()).unwrap();
    let original: ResponseLease = response.outputs.remove(0);
    let clone = original.clone();
    drop(clone);
    assert_eq!(original, reference[0]);

    // A pooled (non-detached) lease outlives the engine: the lease's Arc
    // keeps the io pool alive, and dropping it afterwards is safe.
    let mut survivor = engine.infer(sample).unwrap();
    let held: ResponseLease = survivor.outputs.remove(0);
    drop(survivor);
    engine.shutdown();
    assert_eq!(held, reference[0]);
    drop(held);
}

/// Mixed clone/drop traffic keeps the serving-boundary pool counters flat:
/// detached clones are plain heap tensors (they never draw from or return
/// to the io pool), so a steady-state loop that clones some responses and
/// drops originals and clones in varying order must not allocate fresh io
/// buffers once warmed.
#[test]
fn pool_counters_stay_flat_across_mixed_clone_drop_sequences() {
    let net = serve_network();
    let engine = ServeEngine::start_with_executor(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(1)
            .with_workers(1)
            .with_prewarm_batches(vec![1])
            .with_background_reoptimize(false)
            .with_max_wait(Duration::from_millis(1)),
        Box::new(CpuReferenceExecutor::with_max_workers(1)),
    );
    // Warm the pools (and detach one clone so the clone path itself is
    // warm before counters are snapshotted).
    for i in 0..3 {
        let response = engine
            .infer(TensorData::random(net.input_shape, 60 + i))
            .unwrap();
        let _warm_clone = response.outputs[0].clone();
    }
    let (io_fresh, _) = engine.io_pool_stats();

    let mut detached: Vec<ResponseLease> = Vec::new();
    for round in 0..6 {
        let mut response = engine
            .infer(TensorData::random(net.input_shape, 60))
            .unwrap();
        match round % 3 {
            // Keep a detached clone, drop the pooled original immediately.
            0 => {
                let clone = response.outputs[0].clone();
                drop(response);
                detached.push(clone);
            }
            // Drop the clone first, then the original.
            1 => {
                let clone = response.outputs[1].clone();
                drop(clone);
                drop(response);
            }
            // Detach by ownership: the tensor leaves the pool for good —
            // but `into_tensor` must not *allocate* io buffers either.
            _ => {
                let owned = response.outputs.remove(0).into_tensor();
                assert!(owned.shape.num_elements() > 0);
                drop(response);
                // The permanently detached buffer is replaced by the next
                // round's take; that take may allocate fresh exactly once.
            }
        }
        let (io_now, _) = engine.io_pool_stats();
        // Rounds 0/1 recycle every pooled buffer; round 2 removes one
        // buffer from the pool permanently, so the *following* round may
        // allocate one replacement. Bound the drift accordingly: by round
        // r, at most ceil(r/3) permanent detachments have happened.
        let detachments = (round / 3 + 1) as u64;
        assert!(
            io_now <= io_fresh + detachments,
            "round {round}: io fresh allocations {io_now} exceed warmed {io_fresh} \
             plus {detachments} permanent detachment(s)"
        );
    }
    // The detached clones are still readable after all that churn.
    for lease in &detached {
        assert!(lease.shape.num_elements() > 0);
    }
    engine.shutdown();
}

/// An int8 engine serves responses byte-identical to the flat quantized
/// reference path, and its Prometheus exposition reports the quantized
/// weight-cache footprint — smaller than the f32 engine's — in a
/// `prometheus::validate`-clean document.
#[test]
fn int8_engine_serves_the_quantized_path_and_reports_its_footprint() {
    use ios_backend::{execute_network_with_weights, NetworkWeights, WeightPrecision};

    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(2)
            .with_workers(1)
            .with_precision(WeightPrecision::Int8)
            .with_max_wait(Duration::from_millis(1)),
    );
    let quant_weights = NetworkWeights::precompute_as(&net, WeightPrecision::Int8);
    for i in 0..3 {
        let sample = TensorData::random(net.input_shape, 700 + i);
        let response = engine.infer(sample.clone()).unwrap();
        let reference = execute_network_with_weights(&net, &quant_weights, &[sample]);
        assert_eq!(response.outputs.len(), reference.len());
        for (leased, expected) in response.outputs.iter().zip(&reference) {
            assert_eq!(
                leased, expected,
                "int8 serving must be byte-identical to the flat quantized reference"
            );
        }
    }

    let text = engine.prometheus_text();
    let samples = ios_telemetry::prometheus::validate(&text).expect("well-formed exposition");
    assert!(samples > 0);
    assert!(text.contains("ios_weight_cache_f32_bytes"));
    assert!(text.contains("ios_weight_cache_int8_bytes"));
    // The selected-microkernel info gauge reports the dispatch module's
    // active ISA for both numeric paths, constant-1 style.
    let isa = ios_backend::simd::active_isa().name();
    assert!(
        text.contains(&format!("ios_simd_kernel{{path=\"f32\",isa=\"{isa}\"}} 1")),
        "missing f32 simd kernel info gauge in:\n{text}"
    );
    assert!(text.contains(&format!("ios_simd_kernel{{path=\"int8\",isa=\"{isa}\"}} 1")));
    let quant_fp = quant_weights.footprint();
    assert!(
        quant_fp.int8_bytes > 0,
        "int8 engine holds quantized panels"
    );
    let f32_fp = NetworkWeights::precompute(&net).footprint();
    assert!(
        quant_fp.total() < f32_fp.total(),
        "quantization must shrink the weight cache ({} -> {})",
        f32_fp.total(),
        quant_fp.total()
    );
    engine.shutdown();
}
