//! End-to-end serving invariants: responses bit-identical to solo
//! `execute_graph`-style runs, schedule-cache counters advancing, and a
//! fully allocation-free steady-state serving boundary — request in,
//! response lease dropped, every pooled buffer back home.

use ios_backend::{execute_network, TensorData};
use ios_serve::{CpuReferenceExecutor, ResponseHandle, ServeConfig, ServeEngine};
use std::time::Duration;

/// A two-block network with mergeable branches so the served schedules can
/// exercise both concurrent and operator-merge stages.
fn serve_network() -> ios_ir::Network {
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, PoolParams, TensorShape};
    let input = TensorShape::new(1, 8, 10, 10);
    let mut b = GraphBuilder::new("boundary_b0", input);
    let x = b.input(0);
    let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let c = b.conv2d("c", x, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
    let p = b.pool("p", x, PoolParams::max((2, 2), (1, 1), (0, 0)));
    let cat = b.concat("cat", &[a, c]);
    let block0 = Block::new(b.build(vec![cat, p]));

    let shapes = block0.graph.output_shapes();
    let mut b = GraphBuilder::with_inputs("boundary_b1", shapes);
    let x0 = b.input(0);
    let x1 = b.input(1);
    let d = b.conv2d("d", x0, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let e = b.conv2d("e", x1, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
    let block1 = Block::new(b.build(vec![d, e]));
    Network::new("boundary_net", input, vec![block0, block1])
}

/// Dynamic batching must not perturb numerics: every response of a
/// coalesced batch is bit-identical to running its sample alone through
/// the sequential reference executor.
#[test]
fn batched_responses_are_bit_identical_to_solo_runs() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(4)
            .with_workers(1)
            .with_max_wait(Duration::from_millis(30)),
    );
    let samples: Vec<TensorData> = (0..8)
        .map(|i| TensorData::random(net.input_shape, 400 + i))
        .collect();
    let handles: Vec<_> = samples
        .iter()
        .map(|s| engine.submit(s.clone()).unwrap())
        .collect();
    let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();

    for (sample, response) in samples.iter().zip(&responses) {
        let reference = execute_network(&net, std::slice::from_ref(sample));
        assert_eq!(response.outputs.len(), reference.len());
        for (leased, expected) in response.outputs.iter().zip(&reference) {
            assert_eq!(
                leased, expected,
                "served output must be bit-identical to the solo reference run"
            );
        }
    }
    assert!(
        responses.iter().any(|r| r.batch_size > 1),
        "load this deep must coalesce"
    );
    engine.shutdown();
}

/// Repeat traffic at a pre-warmed batch size must be served from the
/// schedule cache — the hit counter advances, nothing is re-optimized.
#[test]
fn schedule_cache_hits_advance_under_repeat_traffic() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(2)
            .with_workers(1)
            .with_prewarm_batches(vec![1])
            .with_background_reoptimize(false)
            .with_max_wait(Duration::from_millis(1)),
    );
    for i in 0..4 {
        let _ = engine
            .infer(TensorData::random(net.input_shape, 900 + i))
            .unwrap();
    }
    let stats = engine.metrics().cache;
    assert!(
        stats.hits >= 4,
        "every lone request hits the pre-warmed batch-1 schedule (hits = {})",
        stats.hits
    );
    assert_eq!(stats.misses, 0, "pre-warmed traffic never misses");
    engine.shutdown();
}

/// The full serving boundary is allocation-free in steady state: after a
/// warm-up request, neither the engine's io pool (stacked inputs + leased
/// responses) nor the backend's scratch pool (op loop + stacked outputs)
/// allocates fresh buffers, as long as clients drop their leases. A single
/// dispatch worker and a single sample worker make the pools' take/recycle
/// sequences deterministic.
#[test]
fn steady_state_serving_boundary_is_allocation_free() {
    let net = serve_network();
    let engine = ServeEngine::start_with_executor(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(1)
            .with_workers(1)
            .with_prewarm_batches(vec![1])
            .with_background_reoptimize(false)
            .with_max_wait(Duration::from_millis(1)),
        Box::new(CpuReferenceExecutor::with_max_workers(1)),
    );

    // Warm-up: fills both pools and the merged-weight cache.
    for i in 0..3 {
        let response = engine
            .infer(TensorData::random(net.input_shape, 70 + i))
            .unwrap();
        assert_eq!(response.outputs.len(), 2);
        // Leases drop here, returning their buffers to the io pool.
    }
    let (io_fresh, _) = engine.io_pool_stats();
    let (exec_fresh, _) = engine
        .executor_pool_stats()
        .expect("the CPU backend reports pool stats");
    assert!(io_fresh > 0, "warm-up fills the io pool");
    assert!(exec_fresh > 0, "warm-up fills the executor pool");

    let reference = engine
        .infer(TensorData::random(net.input_shape, 7))
        .unwrap();
    let expected: Vec<TensorData> = reference
        .outputs
        .iter()
        .map(|lease| lease.tensor().clone())
        .collect();
    drop(reference);

    for round in 0..5 {
        let response = engine
            .infer(TensorData::random(net.input_shape, 7))
            .unwrap();
        for (leased, want) in response.outputs.iter().zip(&expected) {
            assert_eq!(leased, want, "round {round}: steady state is deterministic");
        }
        drop(response);
        let (io_now, io_reuses) = engine.io_pool_stats();
        let (exec_now, exec_reuses) = engine.executor_pool_stats().unwrap();
        assert_eq!(
            io_now, io_fresh,
            "round {round}: the serving boundary must not allocate fresh io buffers"
        );
        assert_eq!(
            exec_now, exec_fresh,
            "round {round}: the backend must not allocate fresh scratch buffers"
        );
        assert!(io_reuses > 0);
        assert!(exec_reuses > 0);
    }
    engine.shutdown();
}

/// A detached lease keeps its tensor alive independently of the engine,
/// and cloning a response detaches the copies.
#[test]
fn leases_can_be_detached_and_cloned() {
    let net = serve_network();
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(1)
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1)),
    );
    let response = engine
        .infer(TensorData::random(net.input_shape, 123))
        .unwrap();
    let cloned = response.clone();
    let mut tensors: Vec<TensorData> = Vec::new();
    for lease in response.outputs {
        tensors.push(lease.into_tensor());
    }
    engine.shutdown();
    // Both the detached tensors and the cloned response outlive the engine.
    for (owned, leased) in tensors.iter().zip(&cloned.outputs) {
        assert_eq!(leased, owned);
        assert!(owned.shape.num_elements() > 0);
    }
}
