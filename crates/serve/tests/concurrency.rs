//! Concurrency tests for the serving engine, pinning the invariants that
//! only show up under racing clients, mid-flight schedule swaps and
//! shutdown with work still queued:
//!
//! * responses stay **bit-identical** to solo reference executions while
//!   the background re-optimizer swaps specialized schedules under the
//!   running engine — on the flat batched path and through the cross-block
//!   pipeline (whose in-flight samples carry their schedule);
//! * schedule-cache and pool counters stay consistent under racing
//!   submit/drop (a repeated stress loop — every batch's resolve is
//!   exactly one exact-cache lookup, so `hits + misses == batches` must
//!   hold whatever the interleaving);
//! * the dynamic batcher's edge cases at engine level: exact max-batch
//!   boundary dispatch, and shutdown with requests still queued — no
//!   hang, every request answered, response leases returned to the pool.

use ios_backend::{execute_network, TensorData};
use ios_serve::{PipelineMode, ResponseHandle, ServeConfig, ServeEngine};
use std::time::{Duration, Instant};

mod common {
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};

    /// A three-block chain with a branchy head — big enough to pipeline
    /// and to get distinct specialized schedules per batch size, small
    /// enough for a stress loop in CI.
    pub fn three_block_network() -> Network {
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("conc_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("conc_b1", block0.graph.output_shapes());
        let x = b.input(0);
        let d = b.conv2d("d", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let e = b.conv2d("e", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat1", &[d, e]);
        let block1 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("conc_b2", block1.graph.output_shapes());
        let x = b.input(0);
        let f = b.conv2d("f", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let block2 = Block::new(b.build(vec![f]));
        Network::new("conc_net", input, vec![block0, block1, block2])
    }
}

/// The solo reference outputs for a seeded input — what every concurrent
/// response must match bit for bit.
fn reference_outputs(net: &ios_ir::Network, seed: u64) -> Vec<TensorData> {
    let input = TensorData::random(net.input_shape, seed);
    execute_network(net, std::slice::from_ref(&input))
}

/// Stress the engine from `clients` threads × `rounds` seeded requests
/// each, asserting every response against its solo reference. Returns the
/// total number of requests issued.
fn stress_bit_identity(
    engine: &ServeEngine,
    net: &ios_ir::Network,
    clients: u64,
    rounds: u64,
) -> u64 {
    let references: Vec<Vec<TensorData>> = (0..8).map(|s| reference_outputs(net, s)).collect();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let references = &references;
            scope.spawn(move || {
                for round in 0..rounds {
                    let seed = (client * 31 + round) % 8;
                    let input = TensorData::random(net.input_shape, seed);
                    let response = engine.submit(input).unwrap().wait();
                    let expected = &references[seed as usize];
                    assert_eq!(response.outputs.len(), expected.len());
                    for (lease, reference) in response.outputs.iter().zip(expected) {
                        assert_eq!(
                            lease, reference,
                            "client {client} round {round}: response diverged from solo \
                             execution (batch {}, source {:?}, pipelined {})",
                            response.batch_size, response.schedule_source, response.pipelined
                        );
                    }
                }
            });
        }
    });
    clients * rounds
}

/// Waits (bounded) until the background re-optimizer has inserted at least
/// one schedule — proof that schedules were swapped under the engine.
/// Bursts of three concurrent requests coalesce into batch sizes that have
/// no exact cached schedule (only batch 1 and the full batch are
/// pre-warmed), so each burst can trigger a background re-optimization.
fn await_background_insert(engine: &ServeEngine, net: &ios_ir::Network) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.metrics().cache.background_inserts == 0 {
        assert!(
            Instant::now() < deadline,
            "background re-optimization never landed"
        );
        let handles: Vec<_> = (0..3)
            .map(|s| {
                engine
                    .submit(TensorData::random(net.input_shape, s))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            let _ = handle.wait();
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn responses_stay_bit_identical_while_schedules_swap_mid_flight() {
    let net = common::three_block_network();
    // Pre-warm only the full batch: every smaller coalesced batch is
    // served by the nearest schedule while the background re-optimizer
    // races to insert the exact one — schedules swap under live traffic.
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(2)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![4])
        .with_background_reoptimize(true)
        .with_pipeline(PipelineMode::Auto);
    let engine = ServeEngine::start(net.clone(), config);
    stress_bit_identity(&engine, &net, 4, 24);
    await_background_insert(&engine, &net);
    // Keep serving after the swaps landed: still bit-identical.
    stress_bit_identity(&engine, &net, 2, 8);
    let metrics = engine.metrics();
    assert!(metrics.cache.background_inserts >= 1);
    assert_eq!(metrics.queue_depth, 0);
    engine.shutdown();
}

#[test]
fn pipelined_responses_stay_bit_identical_while_schedules_swap_mid_flight() {
    // Same race, but every batch is forced through the cross-block
    // pipeline: in-flight samples carry the schedule they entered with,
    // so a mid-flight swap must never mix schedules within a sample.
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(2)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![4])
        .with_background_reoptimize(true)
        .with_pipeline(PipelineMode::Forced(2));
    let engine = ServeEngine::start(net.clone(), config);
    assert!(engine.pipeline_plan().is_some(), "forced mode must plan");
    stress_bit_identity(&engine, &net, 4, 24);
    await_background_insert(&engine, &net);
    stress_bit_identity(&engine, &net, 2, 8);
    let metrics = engine.metrics();
    assert!(metrics.cache.background_inserts >= 1);
    assert!(
        metrics.pipelined_batches == metrics.batches,
        "forced mode routes every batch through the pipeline \
         ({}/{} pipelined)",
        metrics.pipelined_batches,
        metrics.batches
    );
    engine.shutdown();
}

#[test]
fn cache_and_pool_counters_stay_consistent_under_racing_submit_and_drop() {
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(2)
        .with_max_wait(Duration::from_millis(1))
        .with_background_reoptimize(true)
        .with_pipeline(PipelineMode::Auto);
    let engine = ServeEngine::start(net.clone(), config);

    // Racing clients; every third handle is dropped without waiting (the
    // engine still executes the request — the response send just fails and
    // its leases return to the pool on the spot).
    let total = 6 * 20u64;
    std::thread::scope(|scope| {
        for client in 0..6u64 {
            let engine = &engine;
            let net = &net;
            scope.spawn(move || {
                for round in 0..20u64 {
                    let input = TensorData::random(net.input_shape, client ^ round);
                    let handle = engine.submit(input).unwrap();
                    if (client + round) % 3 == 0 {
                        drop(handle);
                    } else {
                        let response = handle.wait();
                        assert!(!response.outputs.is_empty());
                        drop(response);
                    }
                }
            });
        }
    });

    // Drain fully (workers may still be finishing the last batches), then
    // check the counters add up regardless of the interleaving.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.metrics().completed < total {
        assert!(
            Instant::now() < deadline,
            "engine never drained: {} / {total} completed",
            engine.metrics().completed
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let metrics = engine.metrics();
    assert_eq!(
        metrics.completed, total,
        "every submitted request executes, dropped handle or not"
    );
    assert_eq!(
        metrics.cache.hits + metrics.cache.misses,
        metrics.batches,
        "each batch resolves its schedule with exactly one exact-cache lookup"
    );
    assert!(metrics.cache.nearest_served <= metrics.cache.misses);
    assert!(
        metrics.cache.entries >= 2,
        "pre-warmed entries remain cached"
    );
    assert_eq!(metrics.queue_depth, 0);

    // The pool is steady after the chaos: identical repeat waves allocate
    // nothing fresh at the serving boundary or in the executor.
    let warm = |seed: u64| {
        let response = engine
            .submit(TensorData::random(net.input_shape, seed))
            .unwrap()
            .wait();
        drop(response);
    };
    warm(1);
    let (io_fresh, _) = engine.io_pool_stats();
    let (exec_fresh, _) = engine.executor_pool_stats().expect("cpu backend pools");
    for seed in 0..10 {
        warm(seed);
    }
    let (io_now, _) = engine.io_pool_stats();
    let (exec_now, _) = engine.executor_pool_stats().expect("cpu backend pools");
    assert_eq!(io_now, io_fresh, "serving-boundary pool must stay steady");
    assert_eq!(exec_now, exec_fresh, "executor pool must stay steady");
    engine.shutdown();
}

#[test]
fn shutdown_with_requests_still_queued_answers_them_and_returns_leases() {
    let net = common::three_block_network();
    // One worker, deadlines far away: requests sit in the queue until
    // shutdown flushes them.
    let config = ServeConfig::default()
        .with_max_batch(5)
        .with_workers(1)
        .with_max_wait(Duration::from_secs(60))
        .with_prewarm_batches(vec![3, 5])
        .with_background_reoptimize(false);
    let engine = ServeEngine::start(net.clone(), config);
    let references: Vec<Vec<TensorData>> = (0..5).map(|s| reference_outputs(&net, s)).collect();

    // Wave 1: exactly max_batch queued → dispatches immediately as one
    // full batch (the engine-level exact-boundary case).
    let handles: Vec<_> = (0..5)
        .map(|s| {
            engine
                .submit(TensorData::random(net.input_shape, s))
                .unwrap()
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();
    for (seed, response) in responses.iter().enumerate() {
        assert_eq!(response.batch_size, 5, "exact boundary dispatches full");
        for (lease, reference) in response.outputs.iter().zip(&references[seed]) {
            assert_eq!(lease, reference);
        }
    }
    drop(responses);

    // Wave 2: three requests below the boundary, deadline an hour away —
    // they are still queued when shutdown begins. Shutdown must flush
    // them (no hang) and answer every handle; the leases those responses
    // hold outlive the engine and return to its pool on drop (the
    // counter-level proof is `shutdown_wave2_reuses_leases`).
    let handles: Vec<_> = (0..3)
        .map(|s| {
            engine
                .submit(TensorData::random(net.input_shape, s))
                .unwrap()
        })
        .collect();
    let shutdown_started = Instant::now();
    engine.shutdown();
    assert!(
        shutdown_started.elapsed() < Duration::from_secs(30),
        "shutdown must flush the queue, not wait out the 60 s deadline"
    );
    for (seed, handle) in handles.into_iter().enumerate() {
        let response = handle.wait();
        assert_eq!(response.batch_size, 3, "the queued trio ships as one batch");
        for (lease, reference) in response.outputs.iter().zip(&references[seed]) {
            assert_eq!(lease, reference);
        }
    }
}

#[test]
fn shutdown_wave2_reuses_leases() {
    // The counter variant of the lease-return check: wave 1 fills the io
    // pool, its responses drop (leases return), wave 2 of the same shape
    // must then be allocation-free at the serving boundary — measured
    // *before* shutdown so the engine is still alive to report counters.
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(5)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(5))
        .with_prewarm_batches(vec![5])
        .with_background_reoptimize(false);
    let engine = ServeEngine::start(net.clone(), config);
    let wave = |count: usize| {
        let handles: Vec<_> = (0..count)
            .map(|s| {
                engine
                    .submit(TensorData::random(net.input_shape, s as u64))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            drop(handle.wait());
        }
    };
    wave(5);
    let (io_fresh, _) = engine.io_pool_stats();
    wave(5);
    wave(5);
    let (io_now, io_reuses) = engine.io_pool_stats();
    assert_eq!(
        io_now, io_fresh,
        "repeat waves must reuse returned lease buffers"
    );
    assert!(io_reuses > 0);
    engine.shutdown();
}
