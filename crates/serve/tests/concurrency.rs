//! Concurrency tests for the serving engine, pinning the invariants that
//! only show up under racing clients, mid-flight schedule swaps and
//! shutdown with work still queued:
//!
//! * responses stay **bit-identical** to solo reference executions while
//!   the background re-optimizer swaps specialized schedules under the
//!   running engine — on the flat batched path and through the cross-block
//!   pipeline (whose in-flight samples carry their schedule);
//! * schedule-cache and pool counters stay consistent under racing
//!   submit/drop (a repeated stress loop — every batch's resolve is
//!   exactly one exact-cache lookup, so `hits + misses == batches` must
//!   hold whatever the interleaving);
//! * the dynamic batcher's edge cases at engine level: exact max-batch
//!   boundary dispatch, and shutdown with requests still queued — no
//!   hang, every request answered, response leases returned to the pool;
//! * the span tracer's records stay **well-nested per thread** while
//!   batches stream through the forced cross-block pipeline — the
//!   structural invariant a Chrome trace of a live engine depends on.

use ios_backend::{execute_network, TensorData};
use ios_serve::{PipelineMode, ResponseHandle, ServeConfig, ServeEngine};
use ios_telemetry::TraceKind;
use std::time::{Duration, Instant};

mod common {
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};

    /// A three-block chain with a branchy head — big enough to pipeline
    /// and to get distinct specialized schedules per batch size, small
    /// enough for a stress loop in CI.
    pub fn three_block_network() -> Network {
        let input = TensorShape::new(1, 4, 6, 6);
        let mut b = GraphBuilder::new("conc_b0", input);
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(6, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let block0 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("conc_b1", block0.graph.output_shapes());
        let x = b.input(0);
        let d = b.conv2d("d", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
        let e = b.conv2d("e", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat1", &[d, e]);
        let block1 = Block::new(b.build(vec![cat]));
        let mut b = GraphBuilder::with_inputs("conc_b2", block1.graph.output_shapes());
        let x = b.input(0);
        let f = b.conv2d("f", x, Conv2dParams::relu(4, (1, 1), (1, 1), (0, 0)));
        let block2 = Block::new(b.build(vec![f]));
        Network::new("conc_net", input, vec![block0, block1, block2])
    }
}

/// The solo reference outputs for a seeded input — what every concurrent
/// response must match bit for bit.
fn reference_outputs(net: &ios_ir::Network, seed: u64) -> Vec<TensorData> {
    let input = TensorData::random(net.input_shape, seed);
    execute_network(net, std::slice::from_ref(&input))
}

/// Stress the engine from `clients` threads × `rounds` seeded requests
/// each, asserting every response against its solo reference. Returns the
/// total number of requests issued.
fn stress_bit_identity(
    engine: &ServeEngine,
    net: &ios_ir::Network,
    clients: u64,
    rounds: u64,
) -> u64 {
    let references: Vec<Vec<TensorData>> = (0..8).map(|s| reference_outputs(net, s)).collect();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let references = &references;
            scope.spawn(move || {
                for round in 0..rounds {
                    let seed = (client * 31 + round) % 8;
                    let input = TensorData::random(net.input_shape, seed);
                    let response = engine.submit(input).unwrap().wait();
                    let expected = &references[seed as usize];
                    assert_eq!(response.outputs.len(), expected.len());
                    for (lease, reference) in response.outputs.iter().zip(expected) {
                        assert_eq!(
                            lease, reference,
                            "client {client} round {round}: response diverged from solo \
                             execution (batch {}, source {:?}, pipelined {})",
                            response.batch_size, response.schedule_source, response.pipelined
                        );
                    }
                }
            });
        }
    });
    clients * rounds
}

/// Waits (bounded) until the background re-optimizer has inserted at least
/// one schedule — proof that schedules were swapped under the engine.
/// Bursts of three concurrent requests coalesce into batch sizes that have
/// no exact cached schedule (only batch 1 and the full batch are
/// pre-warmed), so each burst can trigger a background re-optimization.
fn await_background_insert(engine: &ServeEngine, net: &ios_ir::Network) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.metrics().cache.background_inserts == 0 {
        assert!(
            Instant::now() < deadline,
            "background re-optimization never landed"
        );
        let handles: Vec<_> = (0..3)
            .map(|s| {
                engine
                    .submit(TensorData::random(net.input_shape, s))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            let _ = handle.wait();
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn responses_stay_bit_identical_while_schedules_swap_mid_flight() {
    let net = common::three_block_network();
    // Pre-warm only the full batch: every smaller coalesced batch is
    // served by the nearest schedule while the background re-optimizer
    // races to insert the exact one — schedules swap under live traffic.
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(2)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![4])
        .with_background_reoptimize(true)
        .with_pipeline(PipelineMode::Auto);
    let engine = ServeEngine::start(net.clone(), config);
    stress_bit_identity(&engine, &net, 4, 24);
    await_background_insert(&engine, &net);
    // Keep serving after the swaps landed: still bit-identical.
    stress_bit_identity(&engine, &net, 2, 8);
    let metrics = engine.metrics();
    assert!(metrics.cache.background_inserts >= 1);
    assert_eq!(metrics.queue_depth, 0);
    engine.shutdown();
}

#[test]
fn pipelined_responses_stay_bit_identical_while_schedules_swap_mid_flight() {
    // Same race, but every batch is forced through the cross-block
    // pipeline: in-flight samples carry the schedule they entered with,
    // so a mid-flight swap must never mix schedules within a sample.
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(2)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![4])
        .with_background_reoptimize(true)
        .with_pipeline(PipelineMode::Forced(2));
    let engine = ServeEngine::start(net.clone(), config);
    assert!(engine.pipeline_plan().is_some(), "forced mode must plan");
    stress_bit_identity(&engine, &net, 4, 24);
    await_background_insert(&engine, &net);
    stress_bit_identity(&engine, &net, 2, 8);
    let metrics = engine.metrics();
    assert!(metrics.cache.background_inserts >= 1);
    assert!(
        metrics.pipelined_batches == metrics.batches,
        "forced mode routes every batch through the pipeline \
         ({}/{} pipelined)",
        metrics.pipelined_batches,
        metrics.batches
    );
    engine.shutdown();
}

#[test]
fn cache_and_pool_counters_stay_consistent_under_racing_submit_and_drop() {
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(2)
        .with_max_wait(Duration::from_millis(1))
        .with_background_reoptimize(true)
        .with_pipeline(PipelineMode::Auto);
    let engine = ServeEngine::start(net.clone(), config);

    // Racing clients; every third handle is dropped without waiting (the
    // engine still executes the request — the response send just fails and
    // its leases return to the pool on the spot).
    let total = 6 * 20u64;
    std::thread::scope(|scope| {
        for client in 0..6u64 {
            let engine = &engine;
            let net = &net;
            scope.spawn(move || {
                for round in 0..20u64 {
                    let input = TensorData::random(net.input_shape, client ^ round);
                    let handle = engine.submit(input).unwrap();
                    if (client + round) % 3 == 0 {
                        drop(handle);
                    } else {
                        let response = handle.wait();
                        assert!(!response.outputs.is_empty());
                        drop(response);
                    }
                }
            });
        }
    });

    // Drain fully (workers may still be finishing the last batches), then
    // check the counters add up regardless of the interleaving.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.metrics().completed < total {
        assert!(
            Instant::now() < deadline,
            "engine never drained: {} / {total} completed",
            engine.metrics().completed
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let metrics = engine.metrics();
    assert_eq!(
        metrics.completed, total,
        "every submitted request executes, dropped handle or not"
    );
    assert_eq!(
        metrics.cache.hits + metrics.cache.misses,
        metrics.batches,
        "each batch resolves its schedule with exactly one exact-cache lookup"
    );
    assert!(metrics.cache.nearest_served <= metrics.cache.misses);
    assert!(
        metrics.cache.entries >= 2,
        "pre-warmed entries remain cached"
    );
    assert_eq!(metrics.queue_depth, 0);

    // The pool is steady after the chaos: identical repeat waves allocate
    // nothing fresh at the serving boundary or in the executor.
    let warm = |seed: u64| {
        let response = engine
            .submit(TensorData::random(net.input_shape, seed))
            .unwrap()
            .wait();
        drop(response);
    };
    warm(1);
    let (io_fresh, _) = engine.io_pool_stats();
    let (exec_fresh, _) = engine.executor_pool_stats().expect("cpu backend pools");
    for seed in 0..10 {
        warm(seed);
    }
    let (io_now, _) = engine.io_pool_stats();
    let (exec_now, _) = engine.executor_pool_stats().expect("cpu backend pools");
    assert_eq!(io_now, io_fresh, "serving-boundary pool must stay steady");
    assert_eq!(exec_now, exec_fresh, "executor pool must stay steady");
    engine.shutdown();
}

#[test]
fn shutdown_with_requests_still_queued_answers_them_and_returns_leases() {
    let net = common::three_block_network();
    // One worker, deadlines far away: requests sit in the queue until
    // shutdown flushes them.
    let config = ServeConfig::default()
        .with_max_batch(5)
        .with_workers(1)
        .with_max_wait(Duration::from_secs(60))
        .with_prewarm_batches(vec![3, 5])
        .with_background_reoptimize(false);
    let engine = ServeEngine::start(net.clone(), config);
    let references: Vec<Vec<TensorData>> = (0..5).map(|s| reference_outputs(&net, s)).collect();

    // Wave 1: exactly max_batch queued → dispatches immediately as one
    // full batch (the engine-level exact-boundary case).
    let handles: Vec<_> = (0..5)
        .map(|s| {
            engine
                .submit(TensorData::random(net.input_shape, s))
                .unwrap()
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(ResponseHandle::wait).collect();
    for (seed, response) in responses.iter().enumerate() {
        assert_eq!(response.batch_size, 5, "exact boundary dispatches full");
        for (lease, reference) in response.outputs.iter().zip(&references[seed]) {
            assert_eq!(lease, reference);
        }
    }
    drop(responses);

    // Wave 2: three requests below the boundary, deadline an hour away —
    // they are still queued when shutdown begins. Shutdown must flush
    // them (no hang) and answer every handle; the leases those responses
    // hold outlive the engine and return to its pool on drop (the
    // counter-level proof is `shutdown_wave2_reuses_leases`).
    let handles: Vec<_> = (0..3)
        .map(|s| {
            engine
                .submit(TensorData::random(net.input_shape, s))
                .unwrap()
        })
        .collect();
    let shutdown_started = Instant::now();
    engine.shutdown();
    assert!(
        shutdown_started.elapsed() < Duration::from_secs(30),
        "shutdown must flush the queue, not wait out the 60 s deadline"
    );
    for (seed, handle) in handles.into_iter().enumerate() {
        let response = handle.wait();
        assert_eq!(response.batch_size, 3, "the queued trio ships as one batch");
        for (lease, reference) in response.outputs.iter().zip(&references[seed]) {
            assert_eq!(lease, reference);
        }
    }
}

#[test]
fn pipeline_spans_stay_well_nested_within_every_thread() {
    // Serve through the forced pipeline with the process-global tracer
    // on, then check the structural invariants of the captured trace.
    //
    // The tracer is process-global and other tests in this binary may be
    // serving concurrently; that is the point, not a problem — the
    // invariants below are universal (they hold for every engine's
    // threads), and extra traffic only makes them harder to satisfy by
    // accident.
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_pipeline(PipelineMode::Forced(2));
    let engine = ServeEngine::start(net.clone(), config);
    let tracer = ios_telemetry::tracer();
    let dropped_before = tracer.dropped();
    tracer.set_enabled(true);
    // A marker from this thread reveals our tracer tid, which in turn
    // identifies *our* submissions among any concurrent test's records.
    tracer.instant("test.marker", "test", 0);
    let handles: Vec<_> = (0..16)
        .map(|s| {
            engine
                .submit(TensorData::random(net.input_shape, s))
                .unwrap()
        })
        .collect();
    for handle in handles {
        assert!(handle.wait().pipelined, "forced mode pipelines every batch");
    }
    // Shut down before snapshotting: span guards record on drop, so the
    // last batch's spans only land once the workers have quiesced.
    engine.shutdown();
    tracer.set_enabled(false);
    let records = tracer.records();
    let dropped = tracer.dropped() - dropped_before;
    tracer.clear();

    // Every lane of the instrumentation shows up: serving, pipeline
    // segments, executor stages and the request lifecycle.
    for name in [
        "batch",
        "batch.execute",
        "batcher.next_batch",
        "pipeline.busy",
        "pipeline.forward",
        "request.enqueue",
        "request.queue_wait",
        "request.respond",
    ] {
        assert!(
            records.iter().any(|r| r.name == name),
            "expected at least one `{name}` record in the trace"
        );
    }
    assert!(
        records
            .iter()
            .any(|r| r.name == "stage.concurrent" || r.name == "stage.merge"),
        "executor stages must be traced"
    );

    // Batch-id correlation: every one of *our* requests' queue-wait spans
    // names the batch that dispatched it, and that batch's span is in the
    // trace. Scoped to our own submissions (found via the marker's tid)
    // because a concurrently-running test's engine may be mid-batch when
    // we snapshot; and only checkable when the ring dropped nothing.
    if dropped == 0 {
        let our_tid = records
            .iter()
            .find(|r| r.name == "test.marker")
            .expect("marker record survives (nothing dropped)")
            .tid;
        let our_requests: std::collections::HashSet<u64> = records
            .iter()
            .filter(|r| r.name == "request.enqueue" && r.tid == our_tid)
            .map(|r| r.id)
            .collect();
        assert_eq!(our_requests.len(), 16, "one enqueue instant per request");
        let batch_ids: std::collections::HashSet<u64> = records
            .iter()
            .filter(|r| r.name == "batch")
            .map(|r| r.id)
            .collect();
        for r in records
            .iter()
            .filter(|r| r.name == "request.queue_wait" && our_requests.contains(&r.id))
        {
            assert!(
                batch_ids.contains(&r.arg),
                "queue-wait span names unknown batch {}",
                r.arg
            );
        }
    }

    // The structural invariant: within one thread, timed spans form a
    // laminar family — any two are disjoint or nested, never partially
    // overlapping. Request-lane spans are excluded by design: queue waits
    // are back-dated onto the worker thread that dispatched the batch, so
    // they legitimately straddle its batch spans.
    let mut by_tid: std::collections::HashMap<u64, Vec<(u64, u64)>> =
        std::collections::HashMap::new();
    for r in &records {
        if r.kind == TraceKind::Span && r.cat != "request" {
            by_tid
                .entry(r.tid)
                .or_default()
                .push((r.start_ns, r.start_ns + r.dur_ns));
        }
    }
    for (tid, mut spans) in by_tid {
        // Parents first: by start ascending, longest first on ties.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut open: Vec<u64> = Vec::new(); // stack of enclosing span ends
        for (start, end) in spans {
            while open.last().is_some_and(|&top| top <= start) {
                open.pop();
            }
            if let Some(&top) = open.last() {
                assert!(
                    end <= top,
                    "thread {tid}: span [{start}, {end}) partially overlaps \
                     an enclosing span ending at {top}"
                );
            }
            open.push(end);
        }
    }
}

#[test]
fn shutdown_wave2_reuses_leases() {
    // The counter variant of the lease-return check: wave 1 fills the io
    // pool, its responses drop (leases return), wave 2 of the same shape
    // must then be allocation-free at the serving boundary — measured
    // *before* shutdown so the engine is still alive to report counters.
    let net = common::three_block_network();
    let config = ServeConfig::default()
        .with_max_batch(5)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(5))
        .with_prewarm_batches(vec![5])
        .with_background_reoptimize(false);
    let engine = ServeEngine::start(net.clone(), config);
    let wave = |count: usize| {
        let handles: Vec<_> = (0..count)
            .map(|s| {
                engine
                    .submit(TensorData::random(net.input_shape, s as u64))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            drop(handle.wait());
        }
    };
    wave(5);
    let (io_fresh, _) = engine.io_pool_stats();
    wave(5);
    wave(5);
    let (io_now, io_reuses) = engine.io_pool_stats();
    assert_eq!(
        io_now, io_fresh,
        "repeat waves must reuse returned lease buffers"
    );
    assert!(io_reuses > 0);
    engine.shutdown();
}
