//! Operator merge (the second parallelization strategy of Section 3).
//!
//! Convolutions that consume the same input tensor, have the same stride and
//! produce the same spatial output can be stacked into one larger
//! convolution: smaller kernels are zero-padded to the largest kernel size
//! and the output channels are concatenated, followed by a split operator
//! that recovers the original outputs. Besides exposing more intra-operator
//! parallelism, the merged kernel reads the shared input only once — the
//! effect Figure 10 highlights for large batch sizes — at the cost of the
//! extra FLOPs introduced by kernel padding (a 3×1 and a 1×3 kernel both
//! become 3×3).

use ios_ir::{Activation, Conv2dParams, Graph, OpId, OpKind, OpSet, TensorShape, Value};
use serde::{Deserialize, Serialize};

/// Description of a merged convolution covering several original operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedConv {
    /// The original operators, in ascending id order; the merged output is
    /// their channel-wise concatenation in this order.
    pub parts: Vec<OpId>,
    /// The shared input value all merged operators read.
    pub input: Value,
    /// Shape of the shared input.
    pub input_shape: TensorShape,
    /// Parameters of the merged convolution (padded kernel, summed output
    /// channels).
    pub params: Conv2dParams,
    /// Output channels contributed by each part (the sections of the split
    /// operator that follows the merged convolution).
    pub split_sections: Vec<usize>,
}

impl MergedConv {
    /// Total floating point work of the merged kernel (including the padded
    /// kernel positions that compute zeros).
    #[must_use]
    pub fn flops(&self) -> u64 {
        let (oh, ow) = self.input_shape.conv_output_hw(
            self.params.kernel,
            self.params.stride,
            self.params.padding,
        );
        let out_elems = (self.input_shape.batch * self.params.out_channels * oh * ow) as u64;
        let k = (self.input_shape.channels / self.params.groups)
            * self.params.kernel.0
            * self.params.kernel.1;
        2 * out_elems * k as u64
            + if self.params.activation.is_some() {
                out_elems
            } else {
                0
            }
    }

    /// Bytes moved by the split operator that restores the original outputs
    /// (read + write of the merged output tensor).
    #[must_use]
    pub fn split_bytes(&self) -> u64 {
        let (oh, ow) = self.input_shape.conv_output_hw(
            self.params.kernel,
            self.params.stride,
            self.params.padding,
        );
        let elems = self.input_shape.batch * self.params.out_channels * oh * ow;
        2 * (elems * 4) as u64
    }
}

/// Attempts to merge the operators of `ops` into a single convolution.
///
/// Returns `None` when the stage is not eligible: fewer than two operators,
/// any non-convolution operator, mismatched inputs, strides, groups or
/// activations, or kernels whose zero-padding would shift their alignment
/// (the size difference must be even in both dimensions).
#[must_use]
pub fn try_merge(graph: &Graph, ops: OpSet) -> Option<MergedConv> {
    if ops.len() < 2 {
        return None;
    }
    let mut parts: Vec<OpId> = ops.iter().collect();
    parts.sort_unstable();

    let mut shared_input: Option<Value> = None;
    let mut stride = None;
    let mut groups = None;
    let mut activation: Option<Activation> = None;
    let mut max_kernel = (1usize, 1usize);
    let mut sections = Vec::with_capacity(parts.len());
    let mut out_hw: Option<(usize, usize)> = None;

    for &op_id in &parts {
        let op = graph.op(op_id);
        let params = match &op.kind {
            OpKind::Conv2d(p) => p,
            _ => return None,
        };
        if op.inputs.len() != 1 {
            return None;
        }
        let input = op.inputs[0];
        match shared_input {
            None => shared_input = Some(input),
            Some(existing) if existing == input => {}
            Some(_) => return None,
        }
        match stride {
            None => stride = Some(params.stride),
            Some(s) if s == params.stride => {}
            Some(_) => return None,
        }
        match groups {
            None => groups = Some(params.groups),
            Some(g) if g == params.groups => {}
            Some(_) => return None,
        }
        if params.groups != 1 {
            // Stacking grouped convolutions would interleave channel groups;
            // keep the rule conservative as the paper only merges dense convs.
            return None;
        }
        match activation {
            None => activation = Some(params.activation),
            Some(a) if a == params.activation => {}
            Some(_) => return None,
        }
        match out_hw {
            None => out_hw = Some((op.output_shape.height, op.output_shape.width)),
            Some(hw) if hw == (op.output_shape.height, op.output_shape.width) => {}
            Some(_) => return None,
        }
        max_kernel = (
            max_kernel.0.max(params.kernel.0),
            max_kernel.1.max(params.kernel.1),
        );
        sections.push(params.out_channels);
    }

    // Kernel padding must preserve alignment: the padding added on each side
    // of a smaller kernel is (max - k) / 2, so the difference must be even.
    for &op_id in &parts {
        let op = graph.op(op_id);
        if let OpKind::Conv2d(p) = &op.kind {
            if !(max_kernel.0 - p.kernel.0).is_multiple_of(2)
                || !(max_kernel.1 - p.kernel.1).is_multiple_of(2)
            {
                return None;
            }
        }
    }

    let input = shared_input.expect("at least two parts");
    let input_shape = graph.value_shape(input);
    let stride = stride.expect("set");
    let out_hw = out_hw.expect("set");
    // The merged convolution must itself produce the common output size with
    // "same"-style padding of the padded kernel.
    let padding = (max_kernel.0 / 2, max_kernel.1 / 2);
    let computed = input_shape.conv_output_hw(max_kernel, stride, padding);
    if computed != out_hw {
        return None;
    }

    let params = Conv2dParams {
        out_channels: sections.iter().sum(),
        kernel: max_kernel,
        stride,
        padding,
        groups: 1,
        activation: activation.expect("set"),
    };
    Some(MergedConv {
        parts,
        input,
        input_shape,
        params,
        split_sections: sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{GraphBuilder, PoolParams};

    /// Builds the Figure 3 style graph: conv a (128×3×3) and conv b (256×3×3)
    /// reading the same input, plus a conv with a different kernel and a pool.
    fn graph() -> Graph {
        let mut b = GraphBuilder::new("merge_test", TensorShape::new(1, 64, 14, 14));
        let x = b.input(0);
        let _a = b.conv2d("a", x, Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)));
        let _b = b.conv2d("b", x, Conv2dParams::relu(256, (3, 3), (1, 1), (1, 1)));
        let _c = b.conv2d("c", x, Conv2dParams::relu(64, (1, 1), (1, 1), (0, 0)));
        let _p = b.pool("p", x, PoolParams::avg((3, 3), (1, 1), (1, 1)));
        let a = Value::Op(OpId(0));
        let bb = Value::Op(OpId(1));
        let _down = b.conv2d("down", a, Conv2dParams::relu(64, (3, 3), (2, 2), (1, 1)));
        let cat = b.concat("cat", &[a, bb]);
        b.build(vec![cat])
    }

    fn set(ids: &[usize]) -> OpSet {
        ids.iter().map(|&i| OpId(i)).collect()
    }

    #[test]
    fn merge_same_kernel_convs() {
        // Figure 3's example: 128 + 256 3×3 kernels stack into a 384-channel conv.
        let g = graph();
        let m = try_merge(&g, set(&[0, 1])).expect("mergeable");
        assert_eq!(m.params.out_channels, 384);
        assert_eq!(m.params.kernel, (3, 3));
        assert_eq!(m.split_sections, vec![128, 256]);
        assert_eq!(m.parts, vec![OpId(0), OpId(1)]);
        assert!(m.flops() > 0);
        assert!(m.split_bytes() > 0);
    }

    #[test]
    fn merge_pads_smaller_kernels() {
        // 3×3 and 1×1 (both odd, same output size) can merge; the merged
        // kernel is 3×3 and the padded 1×1 adds FLOPs.
        let g = graph();
        let m = try_merge(&g, set(&[0, 2])).expect("mergeable");
        assert_eq!(m.params.kernel, (3, 3));
        assert_eq!(m.params.out_channels, 128 + 64);
        // Padded FLOPs exceed the sum of the original FLOPs.
        let original: u64 = [0, 2].iter().map(|&i| g.op_flops(OpId(i))).sum();
        assert!(m.flops() > original);
    }

    #[test]
    fn merge_rejects_non_convolutions() {
        let g = graph();
        assert!(
            try_merge(&g, set(&[0, 3])).is_none(),
            "conv + pool must not merge"
        );
    }

    #[test]
    fn merge_rejects_different_inputs() {
        let g = graph();
        // op 4 ("down") reads op 0's output, not the graph input.
        assert!(try_merge(&g, set(&[1, 4])).is_none());
    }

    #[test]
    fn merge_rejects_different_strides_and_output_sizes() {
        let mut b = GraphBuilder::new("strides", TensorShape::new(1, 32, 16, 16));
        let x = b.input(0);
        let _s1 = b.conv2d("s1", x, Conv2dParams::relu(32, (3, 3), (1, 1), (1, 1)));
        let _s2 = b.conv2d("s2", x, Conv2dParams::relu(32, (3, 3), (2, 2), (1, 1)));
        let g = b.build(vec![Value::Op(OpId(0)), Value::Op(OpId(1))]);
        assert!(try_merge(&g, set(&[0, 1])).is_none());
    }

    #[test]
    fn merge_rejects_single_operator_and_empty() {
        let g = graph();
        assert!(try_merge(&g, set(&[0])).is_none());
        assert!(try_merge(&g, OpSet::empty()).is_none());
    }

    #[test]
    fn merge_rejects_misaligned_kernels() {
        // A 2×2 kernel cannot be centred inside a 3×3 one (and cannot even
        // produce the same output resolution), so it never merges with odd
        // kernels.
        let mut b = GraphBuilder::new("asym", TensorShape::new(1, 32, 16, 16));
        let x = b.input(0);
        let _f = b.conv2d("f", x, Conv2dParams::relu(32, (3, 3), (1, 1), (1, 1)));
        let _h = b.conv2d("h", x, Conv2dParams::relu(32, (2, 2), (1, 1), (0, 0)));
        let graph = b.build(vec![Value::Op(OpId(0)), Value::Op(OpId(1))]);
        assert!(try_merge(&graph, set(&[0, 1])).is_none());
    }

    #[test]
    fn figure10_one_by_three_and_three_by_one_merge() {
        // With matching "same" padding both 3×1 and 1×3 produce the input
        // resolution and merge into a padded 3×3 convolution.
        let mut b = GraphBuilder::new("fig10", TensorShape::new(32, 384, 8, 8));
        let x = b.input(0);
        let _f = b.conv2d("f", x, Conv2dParams::relu(384, (3, 1), (1, 1), (1, 0)));
        let _g = b.conv2d("g", x, Conv2dParams::relu(384, (1, 3), (1, 1), (0, 1)));
        let graph = b.build(vec![Value::Op(OpId(0)), Value::Op(OpId(1))]);
        let m = try_merge(&graph, OpSet::full(2)).expect("mergeable");
        assert_eq!(m.params.kernel, (3, 3));
        assert_eq!(m.params.out_channels, 768);
        // The padded kernels triple the work of each branch (3 vs 9 taps per
        // kernel position): merged FLOPs ≈ 3× the original sum.
        let original: u64 = (0..2).map(|i| graph.op_flops(OpId(i))).sum();
        let ratio = m.flops() as f64 / original as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn mixed_activation_rejected() {
        let mut b = GraphBuilder::new("act", TensorShape::new(1, 32, 16, 16));
        let x = b.input(0);
        let _r = b.conv2d("r", x, Conv2dParams::relu(32, (3, 3), (1, 1), (1, 1)));
        let _p = b.conv2d("p", x, Conv2dParams::plain(32, (3, 3), (1, 1), (1, 1)));
        let g = b.build(vec![Value::Op(OpId(0)), Value::Op(OpId(1))]);
        assert!(try_merge(&g, OpSet::full(2)).is_none());
    }
}
