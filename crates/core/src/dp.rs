//! The IOS dynamic-programming scheduler (Algorithm 1 of the paper).
//!
//! `cost[S]` — the latency of an optimal schedule for the operator subset
//! `S` — satisfies
//!
//! ```text
//! cost[S] = min over endings S′ of S ( cost[S − S′] + stage_latency[S′] )
//! ```
//!
//! where `stage_latency[S′]` is the measured latency of `S′` under the better
//! of the two parallelization strategies. The recursion is memoized on `S`
//! (an [`OpSet`] bitset), endings are enumerated subject to the pruning
//! strategy `P(r, s)`, and the optimal schedule is reconstructed from the
//! recorded `choice[S]`.

use crate::cost_model::CostModel;
use crate::merge::try_merge;
use crate::schedule::{ParallelizationStrategy, Schedule, Stage};
use crate::variants::SchedulerConfig;
use ios_ir::{EndingEnumerator, Graph, OpId, OpSet};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

/// The decision recorded for a state: the last stage's operators, strategy,
/// groups and measured latency.
#[derive(Debug, Clone)]
struct Choice {
    stage_ops: OpSet,
    strategy: ParallelizationStrategy,
    groups: Vec<Vec<OpId>>,
    latency_us: f64,
}

/// Result of scheduling one graph.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The schedule found by IOS.
    pub schedule: Schedule,
    /// Predicted latency of the schedule (sum of measured stage latencies).
    pub latency_us: f64,
    /// Number of `(S, S′)` transitions explored — the quantity bounded by the
    /// theorem of Section 4.2 and reported in Table 1.
    pub transitions: u64,
    /// Number of distinct dynamic-programming states visited.
    pub states: u64,
    /// Number of stage-latency measurements requested from the cost model.
    pub measurements: u64,
    /// Number of `(S, S′)` transitions whose stage was served from the
    /// per-run stage memo instead of re-deriving groups and re-measuring:
    /// `GenerateStage(S′)` depends only on the ending `S′`, not on the
    /// state `S`, so each distinct ending is generated once.
    pub stage_memo_hits: u64,
    /// Wall-clock time spent searching, in seconds.
    pub search_seconds: f64,
}

/// The IOS scheduler for a single graph.
pub struct Scheduler<'a, C: CostModel> {
    graph: &'a Graph,
    cost_model: &'a C,
    config: SchedulerConfig,
    enumerator: EndingEnumerator,
    cost: HashMap<OpSet, f64>,
    choice: HashMap<OpSet, Choice>,
    /// `GenerateStage` results memoized by the ending `S′`: the same ending
    /// is reachable from many states, but its groups and measured latency
    /// do not depend on the state it is subtracted from. `Rc` keeps memo
    /// hits allocation-free (the groups are only deep-cloned when a stage
    /// actually wins a state's minimization).
    stage_memo: HashMap<OpSet, Option<Rc<GeneratedStage>>>,
    stage_memo_hits: u64,
    transitions: u64,
}

/// The outcome of `GenerateStage(S′)`: measured latency, winning strategy
/// and execution groups.
type GeneratedStage = (f64, ParallelizationStrategy, Vec<Vec<OpId>>);

impl<'a, C: CostModel> Scheduler<'a, C> {
    /// Creates a scheduler for `graph` using `cost_model` to measure stages.
    #[must_use]
    pub fn new(graph: &'a Graph, cost_model: &'a C, config: SchedulerConfig) -> Self {
        Scheduler {
            graph,
            cost_model,
            config,
            enumerator: EndingEnumerator::new(graph),
            cost: HashMap::new(),
            choice: HashMap::new(),
            stage_memo: HashMap::new(),
            stage_memo_hits: 0,
            transitions: 0,
        }
    }

    /// Runs the dynamic program and returns the best schedule found.
    ///
    /// This is `InterOperatorScheduler` of Algorithm 1: solve the recursion
    /// for the full operator set, then walk `choice[·]` backwards to
    /// assemble the stages.
    #[must_use]
    pub fn run(mut self) -> ScheduleResult {
        let start = Instant::now();
        let measurements_before = self.cost_model.measurement_count();
        let all = self.graph.all_ops();
        let total_latency = {
            let mut span = ios_telemetry::tracer().span("dp.solve", "optimize");
            span.set_arg(all.len() as u64);
            self.solve(all)
        };

        // Reconstruct the schedule from the recorded choices (L6-11).
        let mut stages_rev: Vec<Stage> = Vec::new();
        let mut state = all;
        while !state.is_empty() {
            let choice = self
                .choice
                .get(&state)
                .expect("solved state has a choice")
                .clone();
            stages_rev.push(Stage {
                ops: choice.stage_ops,
                strategy: choice.strategy,
                groups: choice.groups,
                measured_latency_us: choice.latency_us,
            });
            state = state.difference(choice.stage_ops);
        }
        stages_rev.reverse();
        let schedule = Schedule::new(self.graph.name(), stages_rev);

        ScheduleResult {
            schedule,
            latency_us: total_latency,
            transitions: self.transitions,
            states: self.cost.len() as u64,
            measurements: self.cost_model.measurement_count() - measurements_before,
            stage_memo_hits: self.stage_memo_hits,
            search_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// `Scheduler(S)` of Algorithm 1: minimal latency over all schedules of
    /// the operator subset `S`, memoized.
    fn solve(&mut self, state: OpSet) -> f64 {
        if state.is_empty() {
            return 0.0;
        }
        if let Some(&cached) = self.cost.get(&state) {
            return cached;
        }
        let endings = self
            .enumerator
            .endings(state, self.config.pruning.max_stage_ops());
        let mut best = f64::INFINITY;
        let mut best_choice: Option<Choice> = None;
        for ending in endings {
            if !self.config.pruning.admits(self.graph, ending) {
                continue;
            }
            self.transitions += 1;
            let stage = match self.stage_memo.get(&ending) {
                Some(cached) => {
                    self.stage_memo_hits += 1;
                    cached.clone()
                }
                None => {
                    // Memo misses are where the cost model actually runs, so
                    // they dominate search time — a trace shows each one.
                    let mut span = ios_telemetry::tracer().span("dp.stage_gen", "optimize");
                    span.set_arg(ending.len() as u64);
                    let generated = self.generate_stage(ending).map(Rc::new);
                    self.stage_memo.insert(ending, generated.clone());
                    generated
                }
            };
            let Some(stage) = stage else {
                continue;
            };
            let (latency, strategy, ref groups) = *stage;
            let rest = self.solve(state.difference(ending));
            let total = rest + latency;
            if total < best {
                best = total;
                best_choice = Some(Choice {
                    stage_ops: ending,
                    strategy,
                    groups: groups.clone(),
                    latency_us: latency,
                });
            }
        }
        let choice = best_choice.expect("every non-empty state has at least one ending");
        self.cost.insert(state, best);
        self.choice.insert(state, choice);
        best
    }

    /// `GenerateStage(S′)` of Algorithm 1: pick the better parallelization
    /// strategy for the candidate stage and return its measured latency.
    ///
    /// Returns `None` when the variant forbids every applicable strategy
    /// (e.g. IOS-Merge on a multi-operator stage that cannot merge).
    fn generate_stage(&self, stage_ops: OpSet) -> Option<GeneratedStage> {
        let groups: Vec<Vec<OpId>> = self
            .graph
            .groups_of(stage_ops)
            .into_iter()
            .map(|g| self.graph.sequential_order_of(g))
            .collect();

        // Concurrent execution is always applicable; under the IOS-Merge
        // variant it is only allowed for single-operator stages (which makes
        // IOS-Merge degenerate to the sequential schedule when nothing can
        // merge, as observed for RandWire and NasNet in Figure 6).
        let parallel_allowed = self.config.variant.allows_parallel() || stage_ops.len() == 1;
        let concurrent = if parallel_allowed {
            Some(self.cost_model.concurrent_latency(self.graph, &groups))
        } else {
            None
        };

        let merged = if self.config.variant.allows_merge() && stage_ops.len() > 1 {
            try_merge(self.graph, stage_ops)
                .map(|m| (self.cost_model.merge_latency(self.graph, &m), m))
        } else {
            None
        };

        match (concurrent, merged) {
            (Some(c), Some((m, merged_conv))) => {
                if m < c {
                    Some((
                        m,
                        ParallelizationStrategy::OperatorMerge,
                        vec![merged_conv.parts],
                    ))
                } else {
                    Some((c, ParallelizationStrategy::ConcurrentExecution, groups))
                }
            }
            (Some(c), None) => Some((c, ParallelizationStrategy::ConcurrentExecution, groups)),
            (None, Some((m, merged_conv))) => Some((
                m,
                ParallelizationStrategy::OperatorMerge,
                vec![merged_conv.parts],
            )),
            (None, None) => None,
        }
    }
}

/// Convenience wrapper: schedules a graph with the given cost model and
/// configuration.
#[must_use]
pub fn schedule_graph<C: CostModel>(
    graph: &Graph,
    cost_model: &C,
    config: &SchedulerConfig,
) -> ScheduleResult {
    Scheduler::new(graph, cost_model, *config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::testing::UnitCostModel;
    use crate::cost_model::SimCostModel;
    use crate::variants::IosVariant;
    use ios_ir::{Conv2dParams, GraphBuilder, PruningLimits, TensorShape};
    use ios_sim::{DeviceKind, Simulator};

    /// Figure 5's graph: a → b, c independent.
    fn fig5() -> Graph {
        let mut b = GraphBuilder::new("fig5", TensorShape::new(1, 64, 14, 14));
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)));
        let bb = b.conv2d("b", a, Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(64, (1, 1), (1, 1), (0, 0)));
        b.build(vec![bb, c])
    }

    /// A wide block with four independent convolutions (Figure 2 shape).
    fn wide_block() -> Graph {
        let mut b = GraphBuilder::new("wide", TensorShape::new(1, 384, 15, 15));
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)));
        let bb = b.conv2d("b", x, Conv2dParams::relu(768, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)));
        let d = b.conv2d("d", x, Conv2dParams::relu(768, (3, 3), (1, 1), (1, 1)));
        let cat = b.concat("cat", &[a, bb, c, d]);
        b.build(vec![cat])
    }

    #[test]
    fn figure5_example_explores_the_expected_state_space() {
        // With the unit cost model (each op 10 µs, a stage costs the largest
        // group's serial time plus 1 µs overhead), the best schedule for
        // a→b, c puts everything in one stage with groups {a, b} and {c}:
        // max(20, 10) + 1 = 21 µs. The critical path alone is 20 µs, so no
        // schedule can do better.
        let g = fig5();
        let cost = UnitCostModel::default();
        let result = schedule_graph(
            &g,
            &cost,
            &SchedulerConfig::for_variant(IosVariant::Parallel),
        );
        assert!(result.schedule.validate(&g).is_ok());
        assert_eq!(result.schedule.num_stages(), 1);
        assert!(
            (result.latency_us - 21.0).abs() < 1e-9,
            "latency = {}",
            result.latency_us
        );
        // Figure 5 (2) shows 6 states including ∅ (we do not memoize ∅) and
        // 12 transitions.
        assert_eq!(result.states, 5);
        assert_eq!(result.transitions, 12);
    }

    #[test]
    fn optimal_latency_never_worse_than_baselines() {
        let g = wide_block();
        let sim = Simulator::new(DeviceKind::TeslaV100);
        let cost = SimCostModel::new(sim);
        let config = SchedulerConfig::paper_default();
        let ios = schedule_graph(&g, &cost, &config);
        assert!(ios.schedule.validate(&g).is_ok());

        let seq = crate::baselines::sequential_schedule(&g, &cost);
        let greedy = crate::baselines::greedy_schedule(&g, &cost);
        assert!(ios.latency_us <= seq.total_measured_latency_us() + 1e-6);
        assert!(ios.latency_us <= greedy.total_measured_latency_us() + 1e-6);
        // On a wide under-utilizing block the improvement must be material
        // (Figure 2 reports ~1.45× over sequential).
        assert!(
            seq.total_measured_latency_us() / ios.latency_us > 1.2,
            "speedup = {}",
            seq.total_measured_latency_us() / ios.latency_us
        );
    }

    #[test]
    fn merge_variant_uses_operator_merge_on_shared_input_convs() {
        let g = wide_block();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let result = schedule_graph(&g, &cost, &SchedulerConfig::for_variant(IosVariant::Merge));
        assert!(result.schedule.validate(&g).is_ok());
        let used_merge = result
            .schedule
            .stages
            .iter()
            .any(|s| s.strategy == ParallelizationStrategy::OperatorMerge);
        assert!(
            used_merge,
            "IOS-Merge should merge the shared-input convolutions"
        );
    }

    #[test]
    fn parallel_variant_never_merges() {
        let g = wide_block();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let result = schedule_graph(
            &g,
            &cost,
            &SchedulerConfig::for_variant(IosVariant::Parallel),
        );
        assert!(result
            .schedule
            .stages
            .iter()
            .all(|s| s.strategy == ParallelizationStrategy::ConcurrentExecution));
    }

    #[test]
    fn both_variant_is_at_least_as_good_as_each_single_variant() {
        let g = wide_block();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let both = schedule_graph(&g, &cost, &SchedulerConfig::for_variant(IosVariant::Both));
        let merge = schedule_graph(&g, &cost, &SchedulerConfig::for_variant(IosVariant::Merge));
        let parallel = schedule_graph(
            &g,
            &cost,
            &SchedulerConfig::for_variant(IosVariant::Parallel),
        );
        assert!(both.latency_us <= merge.latency_us + 1e-6);
        assert!(both.latency_us <= parallel.latency_us + 1e-6);
    }

    #[test]
    fn tighter_pruning_reduces_transitions_but_may_cost_latency() {
        let g = wide_block();
        let cost = UnitCostModel::default();
        let loose = schedule_graph(&g, &cost, &SchedulerConfig::default().with_pruning(3, 8));
        let tight = schedule_graph(&g, &cost, &SchedulerConfig::default().with_pruning(1, 1));
        assert!(tight.transitions < loose.transitions);
        assert!(tight.latency_us >= loose.latency_us - 1e-9);
        // r = 1, s = 1 forces one operator per stage → the sequential schedule.
        assert_eq!(tight.schedule.num_stages(), g.len());
    }

    #[test]
    fn chain_graph_schedules_sequentially() {
        let mut b = GraphBuilder::new("chain", TensorShape::new(1, 32, 8, 8));
        let mut v = b.input(0);
        for i in 0..5 {
            v = b.conv2d(
                format!("c{i}"),
                v,
                Conv2dParams::relu(32, (3, 3), (1, 1), (1, 1)),
            );
        }
        let g = b.build(vec![v]);
        let cost = UnitCostModel::default();
        let result = schedule_graph(&g, &cost, &SchedulerConfig::paper_default());
        assert!(result.schedule.validate(&g).is_ok());
        // A chain offers no concurrency: every stage is a single group, and
        // the unit cost model makes grouping consecutive operators into one
        // stage save the per-stage overhead, so the scheduler packs the
        // chain into ⌈5 / r⌉ = 2 stages under the default pruning (r = 3).
        assert!(result.schedule.stages.iter().all(|s| s.num_groups() == 1));
        assert_eq!(result.schedule.num_stages(), 2);
        assert!((result.latency_us - 52.0).abs() < 1e-9);
    }

    #[test]
    fn unpruned_search_matches_pruned_on_small_graphs() {
        // On a graph this small the pruned and unpruned searches must find
        // the same optimum (pruning only removes large stages).
        let g = fig5();
        let cost = UnitCostModel::default();
        let pruned = schedule_graph(&g, &cost, &SchedulerConfig::paper_default());
        let mut unpruned_cfg = SchedulerConfig::paper_default();
        unpruned_cfg.pruning = PruningLimits::unpruned();
        let unpruned = schedule_graph(&g, &cost, &unpruned_cfg);
        assert!((pruned.latency_us - unpruned.latency_us).abs() < 1e-9);
    }

    #[test]
    fn scheduler_reports_search_statistics() {
        let g = wide_block();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let result = schedule_graph(&g, &cost, &SchedulerConfig::paper_default());
        assert!(result.transitions >= result.states);
        assert!(result.measurements > 0);
        assert!(result.search_seconds >= 0.0);
    }

    #[test]
    fn stage_memo_deduplicates_repeat_endings() {
        // The wide block reaches the same single-operator endings from many
        // states; each must be generated (and measured) only once.
        let g = wide_block();
        let cost = UnitCostModel::default();
        let result = schedule_graph(&g, &cost, &SchedulerConfig::paper_default());
        assert!(
            result.stage_memo_hits > 0,
            "repeat endings must hit the stage memo"
        );
        assert!(result.stage_memo_hits < result.transitions);
        // Every transition either hit the memo or generated a fresh entry,
        // and fresh entries are bounded by the distinct-ending count.
        let distinct = result.transitions - result.stage_memo_hits;
        assert!(distinct >= result.schedule.num_stages() as u64);
    }
}
