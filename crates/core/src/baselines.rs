//! The two baseline schedules of Section 6.1.
//!
//! * The **sequential schedule** executes the operators one by one in a
//!   topological order — what cuDNN-based frameworks do by default.
//! * The **greedy schedule** (Tang et al., 2018) repeatedly puts every
//!   operator whose predecessors have completed into the next stage and runs
//!   them all concurrently, which packs early stages and starves late ones
//!   (Figure 2's second schedule).

use crate::cost_model::CostModel;
use crate::schedule::{ParallelizationStrategy, Schedule, Stage};
use ios_ir::{Graph, OpSet};

/// Builds the sequential schedule: one operator per stage, topological order.
#[must_use]
pub fn sequential_schedule<C: CostModel>(graph: &Graph, cost_model: &C) -> Schedule {
    let stages = graph
        .topological_order()
        .into_iter()
        .map(|op| {
            let groups = vec![vec![op]];
            let latency = cost_model.concurrent_latency(graph, &groups);
            Stage {
                ops: OpSet::singleton(op),
                strategy: ParallelizationStrategy::ConcurrentExecution,
                groups,
                measured_latency_us: latency,
            }
        })
        .collect();
    Schedule::new(graph.name(), stages)
}

/// Builds the greedy schedule: each stage contains every operator whose
/// predecessors have all been scheduled in earlier stages; operators of a
/// stage are grouped into connected components and executed concurrently.
#[must_use]
pub fn greedy_schedule<C: CostModel>(graph: &Graph, cost_model: &C) -> Schedule {
    let preds = graph.predecessor_sets();
    let mut scheduled = OpSet::empty();
    let all = graph.all_ops();
    let mut stages = Vec::new();
    while scheduled != all {
        let ready: OpSet = all
            .difference(scheduled)
            .iter()
            .filter(|op| preds[op.index()].is_subset(scheduled))
            .collect();
        assert!(
            !ready.is_empty(),
            "dependency cycle while building the greedy schedule"
        );
        let groups: Vec<Vec<ios_ir::OpId>> = graph
            .groups_of(ready)
            .into_iter()
            .map(|g| graph.sequential_order_of(g))
            .collect();
        let latency = cost_model.concurrent_latency(graph, &groups);
        stages.push(Stage {
            ops: ready,
            strategy: ParallelizationStrategy::ConcurrentExecution,
            groups,
            measured_latency_us: latency,
        });
        scheduled = scheduled.union(ready);
    }
    Schedule::new(graph.name(), stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::testing::UnitCostModel;
    use ios_ir::{Conv2dParams, GraphBuilder, OpId, TensorShape};

    /// Figure 2's situation: conv b depends on a preceding conv, the other
    /// three are ready immediately.
    fn staggered_graph() -> Graph {
        let mut b = GraphBuilder::new("staggered", TensorShape::new(1, 64, 14, 14));
        let x = b.input(0);
        let pre = b.conv2d("pre", x, Conv2dParams::relu(64, (1, 1), (1, 1), (0, 0)));
        let a = b.conv2d("a", x, Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)));
        let bb = b.conv2d("b", pre, Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)));
        let cat = b.concat("cat", &[a, bb, c]);
        b.build(vec![cat])
    }

    #[test]
    fn sequential_schedule_is_one_op_per_stage() {
        let g = staggered_graph();
        let cost = UnitCostModel::default();
        let s = sequential_schedule(&g, &cost);
        assert_eq!(s.num_stages(), g.len());
        assert!(s.validate(&g).is_ok());
        assert!(s.stages.iter().all(|st| st.len() == 1));
        // 5 ops × (10 + 1) µs with the unit cost model.
        assert!((s.total_measured_latency_us() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_schedule_packs_ready_operators() {
        let g = staggered_graph();
        let cost = UnitCostModel::default();
        let s = greedy_schedule(&g, &cost);
        assert!(s.validate(&g).is_ok());
        // Stage 1: pre, a, c (all ready). Stage 2: b. Stage 3: cat.
        assert_eq!(s.num_stages(), 3);
        assert_eq!(s.stages[0].len(), 3);
        assert!(s.stages[0].ops.contains(OpId(0)));
        assert!(s.stages[0].ops.contains(OpId(1)));
        assert!(s.stages[0].ops.contains(OpId(3)));
        assert_eq!(s.stages[1].len(), 1);
        assert_eq!(s.stages[2].len(), 1);
    }

    #[test]
    fn greedy_is_faster_than_sequential_under_unit_costs() {
        let g = staggered_graph();
        let cost = UnitCostModel::default();
        let seq = sequential_schedule(&g, &cost);
        let greedy = greedy_schedule(&g, &cost);
        assert!(greedy.total_measured_latency_us() < seq.total_measured_latency_us());
    }

    #[test]
    fn baselines_handle_single_operator_graphs() {
        let mut b = GraphBuilder::new("single", TensorShape::new(1, 8, 8, 8));
        let x = b.input(0);
        let c = b.conv2d("only", x, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
        let g = b.build(vec![c]);
        let cost = UnitCostModel::default();
        assert_eq!(sequential_schedule(&g, &cost).num_stages(), 1);
        assert_eq!(greedy_schedule(&g, &cost).num_stages(), 1);
    }
}
