//! Schedule and stage types.
//!
//! A schedule `Q = {(S₁, T₁), …, (S_k, T_k)}` partitions the operators of a
//! graph into stages executed sequentially; each stage is executed with one
//! of the two parallelization strategies of Section 3.

use ios_ir::{Graph, OpId, OpSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The parallelization strategy of a stage (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelizationStrategy {
    /// Operators are partitioned into groups; groups run concurrently on
    /// separate streams, operators inside a group run sequentially.
    ConcurrentExecution,
    /// All operators of the stage are merged into one larger operator
    /// followed by a split.
    OperatorMerge,
}

impl fmt::Display for ParallelizationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelizationStrategy::ConcurrentExecution => write!(f, "concurrent execution"),
            ParallelizationStrategy::OperatorMerge => write!(f, "operator merge"),
        }
    }
}

/// One stage of a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The operators of the stage.
    pub ops: OpSet,
    /// The parallelization strategy chosen for the stage.
    pub strategy: ParallelizationStrategy,
    /// The execution groups: for concurrent execution these are the
    /// connected components of the stage (each executed sequentially in the
    /// stored order); for operator merge there is a single group listing the
    /// merged operators.
    pub groups: Vec<Vec<OpId>>,
    /// The stage latency measured by the cost model when the stage was
    /// chosen, in µs.
    pub measured_latency_us: f64,
}

impl Stage {
    /// Number of operators in the stage.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the stage contains no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of concurrent groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

/// A complete schedule for one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Name of the graph this schedule belongs to.
    pub graph_name: String,
    /// Stages in execution order.
    pub stages: Vec<Stage>,
}

impl Schedule {
    /// Creates a schedule from its stages.
    #[must_use]
    pub fn new(graph_name: impl Into<String>, stages: Vec<Stage>) -> Self {
        Schedule {
            graph_name: graph_name.into(),
            stages,
        }
    }

    /// Number of stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Sum of the measured latencies of all stages, in µs.
    #[must_use]
    pub fn total_measured_latency_us(&self) -> f64 {
        self.stages.iter().map(|s| s.measured_latency_us).sum()
    }

    /// The stage sets in order (useful for Graphviz rendering).
    #[must_use]
    pub fn stage_sets(&self) -> Vec<OpSet> {
        self.stages.iter().map(|s| s.ops).collect()
    }

    /// Index of the stage containing each operator.
    #[must_use]
    pub fn stage_of(&self, op: OpId) -> Option<usize> {
        self.stages.iter().position(|s| s.ops.contains(op))
    }

    /// Validates that the schedule is feasible for `graph`:
    ///
    /// * every operator appears in exactly one stage;
    /// * for every dependency edge `(u, v)`, `u` is scheduled no later than
    ///   `v`, and if they share a stage they share a group with `u` ordered
    ///   before `v`;
    /// * the groups of each stage partition the stage's operators.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        let mut seen = OpSet::empty();
        for (si, stage) in self.stages.iter().enumerate() {
            let mut group_union = OpSet::empty();
            for group in &stage.groups {
                for op in group {
                    if !stage.ops.contains(*op) {
                        return Err(format!(
                            "stage {si}: group operator {op} not in the stage set"
                        ));
                    }
                    if group_union.contains(*op) {
                        return Err(format!("stage {si}: operator {op} appears in two groups"));
                    }
                    group_union.insert(*op);
                }
            }
            if group_union != stage.ops {
                return Err(format!("stage {si}: groups do not cover the stage"));
            }
            if !seen.is_disjoint(stage.ops) {
                return Err(format!("stage {si}: operators scheduled twice"));
            }
            seen = seen.union(stage.ops);
        }
        if seen != graph.all_ops() {
            return Err(format!(
                "schedule covers {} operators, graph has {}",
                seen.len(),
                graph.len()
            ));
        }
        // Dependency order.
        for op in graph.ops() {
            let v_stage = self.stage_of(op.id).expect("covered");
            for pred in graph.predecessors(op.id) {
                let u_stage = self.stage_of(pred).expect("covered");
                if u_stage > v_stage {
                    return Err(format!(
                        "operator {} (stage {v_stage}) depends on {} scheduled later (stage {u_stage})",
                        op.name,
                        graph.op(pred).name
                    ));
                }
                if u_stage == v_stage {
                    let stage = &self.stages[v_stage];
                    let same_group = stage.groups.iter().find(|g| g.contains(&op.id));
                    match same_group {
                        Some(g) if g.contains(&pred) => {
                            let pu = g.iter().position(|x| *x == pred).expect("present");
                            let pv = g.iter().position(|x| *x == op.id).expect("present");
                            if pu > pv {
                                return Err(format!(
                                    "stage {v_stage}: {} ordered before its dependency {}",
                                    op.name,
                                    graph.op(pred).name
                                ));
                            }
                        }
                        _ if stage.strategy == ParallelizationStrategy::OperatorMerge => {
                            // Merged operators are computed simultaneously from
                            // the shared input; dependencies inside a merged
                            // stage are impossible by the merge eligibility
                            // rule, so reaching this arm means the stage is
                            // malformed.
                            return Err(format!(
                                "stage {v_stage}: merged stage contains dependent operators {} → {}",
                                graph.op(pred).name,
                                op.name
                            ));
                        }
                        _ => {
                            return Err(format!(
                                "stage {v_stage}: dependent operators {} → {} are in different groups",
                                graph.op(pred).name,
                                op.name
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the schedule as a compact human-readable table.
    #[must_use]
    pub fn render(&self, graph: &Graph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "schedule for `{}` ({} stages):",
            self.graph_name,
            self.num_stages()
        );
        for (i, stage) in self.stages.iter().enumerate() {
            let groups: Vec<String> = stage
                .groups
                .iter()
                .map(|g| {
                    let names: Vec<&str> = g.iter().map(|op| graph.op(*op).name.as_str()).collect();
                    format!("{{{}}}", names.join(", "))
                })
                .collect();
            let _ = writeln!(
                out,
                "  stage {}: [{}] via {} ({:.1} µs)",
                i + 1,
                groups.join(" | "),
                stage.strategy,
                stage.measured_latency_us
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{Conv2dParams, GraphBuilder, TensorShape};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("diamond", TensorShape::new(1, 16, 8, 8));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        let x = b.conv2d("x", a, Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)));
        let y = b.conv2d("y", a, Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)));
        let d = b.concat("d", &[x, y]);
        b.build(vec![d])
    }

    fn stage(ops: &[usize], groups: &[&[usize]], strategy: ParallelizationStrategy) -> Stage {
        Stage {
            ops: ops.iter().map(|&i| OpId(i)).collect(),
            strategy,
            groups: groups
                .iter()
                .map(|g| g.iter().map(|&i| OpId(i)).collect())
                .collect(),
            measured_latency_us: 1.0,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let g = diamond();
        let s = Schedule::new(
            "diamond",
            vec![
                stage(&[0], &[&[0]], ParallelizationStrategy::ConcurrentExecution),
                stage(
                    &[1, 2],
                    &[&[1], &[2]],
                    ParallelizationStrategy::ConcurrentExecution,
                ),
                stage(&[3], &[&[3]], ParallelizationStrategy::ConcurrentExecution),
            ],
        );
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.num_stages(), 3);
        assert_eq!(s.stage_of(OpId(2)), Some(1));
        assert!((s.total_measured_latency_us() - 3.0).abs() < 1e-12);
        let rendered = s.render(&g);
        assert!(rendered.contains("stage 2"));
        assert!(rendered.contains("concurrent execution"));
    }

    #[test]
    fn missing_operator_fails() {
        let g = diamond();
        let s = Schedule::new(
            "diamond",
            vec![stage(
                &[0, 1, 2],
                &[&[0, 1, 2]],
                ParallelizationStrategy::ConcurrentExecution,
            )],
        );
        assert!(s.validate(&g).unwrap_err().contains("covers 3 operators"));
    }

    #[test]
    fn dependency_violation_fails() {
        let g = diamond();
        let s = Schedule::new(
            "diamond",
            vec![
                stage(
                    &[1, 2],
                    &[&[1], &[2]],
                    ParallelizationStrategy::ConcurrentExecution,
                ),
                stage(&[0], &[&[0]], ParallelizationStrategy::ConcurrentExecution),
                stage(&[3], &[&[3]], ParallelizationStrategy::ConcurrentExecution),
            ],
        );
        assert!(s.validate(&g).unwrap_err().contains("scheduled later"));
    }

    #[test]
    fn same_stage_dependency_requires_group_order() {
        let g = diamond();
        // a and x in the same stage, same group, correct order: fine.
        let ok = Schedule::new(
            "diamond",
            vec![
                stage(
                    &[0, 1],
                    &[&[0, 1]],
                    ParallelizationStrategy::ConcurrentExecution,
                ),
                stage(&[2], &[&[2]], ParallelizationStrategy::ConcurrentExecution),
                stage(&[3], &[&[3]], ParallelizationStrategy::ConcurrentExecution),
            ],
        );
        assert!(ok.validate(&g).is_ok());
        // Reversed order inside the group: rejected.
        let bad = Schedule::new(
            "diamond",
            vec![
                stage(
                    &[0, 1],
                    &[&[1, 0]],
                    ParallelizationStrategy::ConcurrentExecution,
                ),
                stage(&[2], &[&[2]], ParallelizationStrategy::ConcurrentExecution),
                stage(&[3], &[&[3]], ParallelizationStrategy::ConcurrentExecution),
            ],
        );
        assert!(bad.validate(&g).unwrap_err().contains("ordered before"));
        // Different groups in the same stage: rejected.
        let split = Schedule::new(
            "diamond",
            vec![
                stage(
                    &[0, 1],
                    &[&[0], &[1]],
                    ParallelizationStrategy::ConcurrentExecution,
                ),
                stage(&[2], &[&[2]], ParallelizationStrategy::ConcurrentExecution),
                stage(&[3], &[&[3]], ParallelizationStrategy::ConcurrentExecution),
            ],
        );
        assert!(split.validate(&g).unwrap_err().contains("different groups"));
    }

    #[test]
    fn duplicated_or_uncovered_group_ops_fail() {
        let g = diamond();
        let dup = Schedule::new(
            "diamond",
            vec![
                stage(&[0], &[&[0]], ParallelizationStrategy::ConcurrentExecution),
                stage(
                    &[1, 2],
                    &[&[1, 2], &[2]],
                    ParallelizationStrategy::ConcurrentExecution,
                ),
                stage(&[3], &[&[3]], ParallelizationStrategy::ConcurrentExecution),
            ],
        );
        assert!(dup.validate(&g).unwrap_err().contains("two groups"));
        let uncovered = Schedule::new(
            "diamond",
            vec![
                stage(&[0], &[&[0]], ParallelizationStrategy::ConcurrentExecution),
                stage(
                    &[1, 2],
                    &[&[1]],
                    ParallelizationStrategy::ConcurrentExecution,
                ),
                stage(&[3], &[&[3]], ParallelizationStrategy::ConcurrentExecution),
            ],
        );
        assert!(uncovered.validate(&g).unwrap_err().contains("do not cover"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = Schedule::new(
            "x",
            vec![stage(&[0], &[&[0]], ParallelizationStrategy::OperatorMerge)],
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(
            ParallelizationStrategy::ConcurrentExecution.to_string(),
            "concurrent execution"
        );
        assert_eq!(
            ParallelizationStrategy::OperatorMerge.to_string(),
            "operator merge"
        );
    }
}
