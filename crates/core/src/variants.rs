//! Scheduler configuration and the IOS variants compared in Figure 6.

use ios_ir::PruningLimits;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which parallelization strategies the scheduler may use — the IOS-Merge,
/// IOS-Parallel and IOS-Both variants of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IosVariant {
    /// Only the "operator merge" strategy (multi-operator stages must merge).
    Merge,
    /// Only the "concurrent execution" strategy.
    Parallel,
    /// Both strategies; the better one is chosen per stage (the default and
    /// what the paper simply calls "IOS").
    #[default]
    Both,
}

impl IosVariant {
    /// True if the concurrent-execution strategy may be used for
    /// multi-operator stages.
    #[must_use]
    pub fn allows_parallel(self) -> bool {
        matches!(self, IosVariant::Parallel | IosVariant::Both)
    }

    /// True if the operator-merge strategy may be used.
    #[must_use]
    pub fn allows_merge(self) -> bool {
        matches!(self, IosVariant::Merge | IosVariant::Both)
    }
}

impl fmt::Display for IosVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IosVariant::Merge => write!(f, "IOS-Merge"),
            IosVariant::Parallel => write!(f, "IOS-Parallel"),
            IosVariant::Both => write!(f, "IOS-Both"),
        }
    }
}

/// Full configuration of one scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Which parallelization strategies are enabled.
    pub variant: IosVariant,
    /// The pruning strategy `P(r, s)` bounding the explored endings
    /// (Section 4.3). The paper's default is `r = 3`, `s = 8`.
    #[serde(with = "pruning_serde")]
    pub pruning: PruningLimits,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            variant: IosVariant::Both,
            pruning: PruningLimits::paper_default(),
        }
    }
}

impl SchedulerConfig {
    /// The paper's default configuration (IOS-Both, r = 3, s = 8).
    #[must_use]
    pub fn paper_default() -> Self {
        SchedulerConfig::default()
    }

    /// Configuration for a specific variant with the default pruning.
    #[must_use]
    pub fn for_variant(variant: IosVariant) -> Self {
        SchedulerConfig {
            variant,
            ..SchedulerConfig::default()
        }
    }

    /// Configuration with explicit pruning parameters `r` (max operators per
    /// group) and `s` (max groups per stage) — the Figure 9 sweep.
    #[must_use]
    pub fn with_pruning(mut self, r: usize, s: usize) -> Self {
        self.pruning = PruningLimits::new(r, s);
        self
    }
}

/// Serde adapter for [`PruningLimits`] (defined in `ios-ir`, which keeps its
/// types serde-free for the scheduler-facing fields).
mod pruning_serde {
    use ios_ir::PruningLimits;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    struct Limits {
        max_group_size: usize,
        max_groups: usize,
    }

    pub fn serialize<S: Serializer>(p: &PruningLimits, s: S) -> Result<S::Ok, S::Error> {
        Limits {
            max_group_size: p.max_group_size,
            max_groups: p.max_groups,
        }
        .serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<PruningLimits, D::Error> {
        let l = Limits::deserialize(d)?;
        Ok(PruningLimits::new(l.max_group_size, l.max_groups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_capabilities() {
        assert!(IosVariant::Both.allows_merge() && IosVariant::Both.allows_parallel());
        assert!(IosVariant::Merge.allows_merge() && !IosVariant::Merge.allows_parallel());
        assert!(!IosVariant::Parallel.allows_merge() && IosVariant::Parallel.allows_parallel());
        assert_eq!(IosVariant::default(), IosVariant::Both);
        assert_eq!(IosVariant::Both.to_string(), "IOS-Both");
    }

    #[test]
    fn config_builders() {
        let c = SchedulerConfig::paper_default();
        assert_eq!(c.pruning.max_group_size, 3);
        assert_eq!(c.pruning.max_groups, 8);
        let c = SchedulerConfig::for_variant(IosVariant::Parallel).with_pruning(1, 8);
        assert_eq!(c.variant, IosVariant::Parallel);
        assert_eq!(c.pruning.max_group_size, 1);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = SchedulerConfig::paper_default().with_pruning(2, 3);
        let json = serde_json::to_string(&c).unwrap();
        let back: SchedulerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pruning.max_group_size, 2);
        assert_eq!(back.pruning.max_groups, 3);
        assert_eq!(back.variant, IosVariant::Both);
    }
}
