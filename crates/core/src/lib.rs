//! # ios-core — the Inter-Operator Scheduler
//!
//! This crate implements the paper's contribution: given a CNN computation
//! graph and a way to measure the latency of a candidate stage, find the
//! schedule (partition of the operators into stages, each executed with
//! either *concurrent execution* or *operator merge*) that minimizes
//! end-to-end latency, using the ending-based dynamic program of
//! Algorithm 1.
//!
//! The main entry points are:
//!
//! * [`Scheduler`] / [`schedule_graph`] — optimize a single block
//!   ([`dp`]).
//! * [`optimize_network`] — optimize every block of a network and assemble
//!   the per-block schedules ([`optimizer`]).
//! * [`sequential_schedule`] / [`greedy_schedule`] — the two baseline
//!   schedules of Section 6.1 ([`baselines`]).
//! * [`SimCostModel`] — the cost model backed by the `ios-sim` GPU
//!   simulator, playing the role of the paper's on-device profiler
//!   ([`cost_model`]).
//! * [`StageProfiler`] / [`ProfiledCostModel`] — the real profiling loop:
//!   any substrate that can execute a candidate stage becomes a measuring
//!   cost model (warmup + median-of-N repeats, cached per stage); the CPU
//!   backend's `CpuStageProfiler` plugs in here ([`cost_model`]).
//! * [`specialize`] — the batch-size / device specialization study of
//!   Table 3.
//! * [`stats`] — schedule-space statistics (Table 1).
//!
//! # Example
//!
//! ```
//! use ios_core::{schedule_graph, SchedulerConfig, SimCostModel};
//! use ios_sim::{DeviceKind, Simulator};
//!
//! // A small two-branch block.
//! let graph = ios_models::figure2_block(1).blocks[0].graph.clone();
//! let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
//! let result = schedule_graph(&graph, &cost, &SchedulerConfig::default());
//! assert!(result.schedule.validate(&graph).is_ok());
//! assert!(result.latency_us > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod cost_model;
pub mod dp;
pub mod merge;
pub mod optimizer;
pub mod pipeline;
pub mod schedule;
pub mod specialize;
pub mod stats;
pub mod variants;

pub use baselines::{greedy_schedule, sequential_schedule};
pub use cost_model::{
    graph_fingerprint, CachingCostModel, CostModel, ProfiledCostModel, SimCostModel, StageProfiler,
};
pub use dp::{schedule_graph, ScheduleResult, Scheduler};
pub use ios_ir::PruningLimits;
pub use merge::{try_merge, MergedConv};
pub use optimizer::{
    evaluate_network, greedy_network_schedule, network_block_costs, optimize_network,
    sequential_network_schedule, NetworkSchedule, OptimizeReport,
};
pub use pipeline::{plan_pipeline, PipelinePlan};
pub use schedule::{ParallelizationStrategy, Schedule, Stage};
pub use specialize::{
    cross_evaluate, specialization_violations, ExecutionContext, SpecializationCell,
};
pub use stats::{block_statistics, BlockStats};
pub use variants::{IosVariant, SchedulerConfig};
