//! Schedule-space statistics (Table 1 of the paper).
//!
//! For the largest block of each benchmark network, the paper reports the
//! number of operators `n`, the DAG width `d`, the transition upper bound
//! `C(n/d + 2, 2)^d`, the real number of `(S, S′)` transitions and the total
//! number of feasible schedules. This module computes all of these without
//! running the latency-aware dynamic program: transition and schedule counts
//! only depend on the graph structure.

use ios_ir::{dag_width, transition_upper_bound, EndingEnumerator, Graph, OpSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The Table 1 row for one block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Name of the block's graph.
    pub name: String,
    /// Number of operators `n`.
    pub n: usize,
    /// DAG width `d`.
    pub width: usize,
    /// The upper bound `∏ C(cᵢ + 2, 2)` on the number of transitions.
    pub transition_bound: f64,
    /// The real number of `(S, S′)` pairs explored by an unpruned search.
    pub transitions: u64,
    /// The total number of feasible schedules (can be astronomically large,
    /// e.g. 9.2 × 10²² for RandWire, hence a float).
    pub num_schedules: f64,
}

/// Computes the Table 1 statistics for a graph.
///
/// `max_stage_ops` bounds the size of an ending, mirroring a pruning
/// strategy; pass `usize::MAX` for the unpruned counts reported in the paper.
#[must_use]
pub fn block_statistics(graph: &Graph, max_stage_ops: usize) -> BlockStats {
    let enumerator = EndingEnumerator::new(graph);
    let mut schedule_counts: HashMap<OpSet, f64> = HashMap::new();
    let mut transitions = 0u64;
    let all = graph.all_ops();
    let num_schedules = count_schedules(
        &enumerator,
        all,
        max_stage_ops,
        &mut schedule_counts,
        &mut transitions,
    );
    BlockStats {
        name: graph.name().to_string(),
        n: graph.len(),
        width: dag_width(graph),
        transition_bound: transition_upper_bound(graph),
        transitions,
        num_schedules,
    }
}

fn count_schedules(
    enumerator: &EndingEnumerator,
    state: OpSet,
    max_stage_ops: usize,
    memo: &mut HashMap<OpSet, f64>,
    transitions: &mut u64,
) -> f64 {
    if state.is_empty() {
        return 1.0;
    }
    if let Some(&cached) = memo.get(&state) {
        return cached;
    }
    let mut total = 0.0;
    for ending in enumerator.endings(state, max_stage_ops) {
        *transitions += 1;
        total += count_schedules(
            enumerator,
            state.difference(ending),
            max_stage_ops,
            memo,
            transitions,
        );
    }
    memo.insert(state, total);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{Conv2dParams, GraphBuilder, TensorShape};

    fn conv() -> Conv2dParams {
        Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0))
    }

    /// A chain of `n` operators has exactly 2^(n-1) schedules (each gap is
    /// either a stage boundary or not) … except that for a chain every stage
    /// must be a contiguous run, so the count is the number of compositions
    /// of n, which is 2^(n-1).
    #[test]
    fn chain_schedule_count_is_compositions() {
        for n in 1..=6usize {
            let mut b = GraphBuilder::new("chain", TensorShape::new(1, 8, 8, 8));
            let mut v = b.input(0);
            for i in 0..n {
                v = b.conv2d(format!("c{i}"), v, conv());
            }
            let g = b.build(vec![v]);
            let stats = block_statistics(&g, usize::MAX);
            assert_eq!(stats.n, n);
            assert_eq!(stats.width, 1);
            assert_eq!(stats.num_schedules, 2f64.powi(n as i32 - 1), "n = {n}");
        }
    }

    /// Two independent operators: schedules are {a}{b}, {b}{a}, {a,b} → 3.
    /// (Figure 5 uses exactly this structure for the {a, c} sub-state.)
    #[test]
    fn two_independent_ops_have_three_schedules() {
        let mut b = GraphBuilder::new("pair", TensorShape::new(1, 8, 8, 8));
        let x = b.input(0);
        let a = b.conv2d("a", x, conv());
        let c = b.conv2d("c", x, conv());
        let g = b.build(vec![a, c]);
        let stats = block_statistics(&g, usize::MAX);
        assert_eq!(stats.num_schedules, 3.0);
        assert_eq!(stats.width, 2);
        // Transitions: state {a,c}: endings {a},{c},{a,c} (3); states {a},{c}: 1 each → 5.
        assert_eq!(stats.transitions, 5);
        // SqueezeNet-like scale check: the bound must dominate the real count.
        assert!(stats.transition_bound >= stats.transitions as f64);
    }

    /// The Figure 5 graph (a → b, c independent) has the schedule count one
    /// can enumerate by hand: 8.
    #[test]
    fn figure5_schedule_count() {
        let mut b = GraphBuilder::new("fig5", TensorShape::new(1, 8, 8, 8));
        let x = b.input(0);
        let a = b.conv2d("a", x, conv());
        let _bb = b.conv2d("b", a, conv());
        let _c = b.conv2d("c", x, conv());
        let g = b.build(vec![]);
        let stats = block_statistics(&g, usize::MAX);
        // Enumerate by hand: stage partitions of {a,b,c} respecting a→b.
        // 1 stage: {a,b,c}
        // 2 stages: {a}{b,c}, {a,b}{c}, {a,c}{b}, {c}{a,b}, {b? no}…
        //   valid: ({a},{b,c}), ({a,b},{c}), ({a,c},{b}), ({c},{a,b}) = 4
        // 3 stages: orderings of singleton stages with a before b:
        //   abc, acb, cab = 3
        // total = 8.
        assert_eq!(stats.num_schedules, 8.0);
        assert_eq!(stats.transitions, 12);
        assert_eq!(stats.width, 2);
    }

    #[test]
    fn pruning_reduces_transitions_and_schedules() {
        let mut b = GraphBuilder::new("wide", TensorShape::new(1, 8, 8, 8));
        let x = b.input(0);
        let outs: Vec<_> = (0..5)
            .map(|i| b.conv2d(format!("c{i}"), x, conv()))
            .collect();
        let g = b.build(outs);
        let unpruned = block_statistics(&g, usize::MAX);
        let pruned = block_statistics(&g, 2);
        assert!(pruned.transitions < unpruned.transitions);
        assert!(pruned.num_schedules < unpruned.num_schedules);
        assert_eq!(pruned.n, unpruned.n);
    }

    #[test]
    fn bound_is_tight_for_chain_families() {
        // Figure 13: d chains of c operators reach the bound exactly.
        let net = ios_models::worst_case_chains(3, 3, 1);
        let g = &net.blocks[0].graph;
        let stats = block_statistics(g, usize::MAX);
        assert_eq!(stats.transition_bound, 10f64.powi(3));
        // The bound counts (S, S′) pairs including empty endings; the search
        // only explores non-empty endings, so the real count is the bound
        // minus one per state: 10³ − 4³ = 936.
        assert_eq!(stats.transitions, 936);
        assert!((stats.transitions as f64) <= stats.transition_bound);
        assert!((stats.transitions as f64) > 0.9 * stats.transition_bound);
    }
}
